//! Criterion benches for the consistency checkers over large histories.
//!
//! Gated behind the off-by-default `criterion-benches` feature so the
//! default build stays hermetic; enabling it requires re-adding
//! `criterion` as a dev-dependency (see Cargo.toml).

#[cfg(feature = "criterion-benches")]
mod criterion_suite {
    use criterion::{criterion_group, BenchmarkId, Criterion};
    use safereg_checker::CheckSummary;
    use safereg_common::history::History;
    use safereg_common::ids::{ReaderId, WriterId};
    use safereg_common::msg::OpId;
    use safereg_common::tag::Tag;
    use safereg_common::value::Value;

    /// Builds a well-formed history with `writes` sequential writes and
    /// `reads` fresh reads interleaved.
    fn build_history(writes: usize, reads: usize) -> History {
        let mut h = History::new();
        let mut t = 0u64;
        let mut latest = (Tag::ZERO, Value::initial());
        for i in 0..writes.max(reads) {
            if i < writes {
                let tag = Tag::new((i + 1) as u64, WriterId(0));
                let value = Value::from(format!("value-{i}").into_bytes());
                let w = h.begin_write(OpId::new(WriterId(0), (i + 1) as u64), value.clone(), t);
                h.complete_write(w, tag, t + 10);
                latest = (tag, value);
                t += 20;
            }
            if i < reads {
                let r = h.begin_read(OpId::new(ReaderId(0), (i + 1) as u64), t);
                h.complete_read(r, latest.1.clone(), latest.0, t + 10);
                t += 20;
            }
        }
        h
    }

    fn bench_checkers(c: &mut Criterion) {
        let mut group = c.benchmark_group("checker/check_all");
        for ops in [100usize, 1000] {
            let history = build_history(ops / 2, ops / 2);
            group.bench_with_input(BenchmarkId::from_parameter(ops), &ops, |b, _| {
                b.iter(|| {
                    let summary = CheckSummary::check_all(&history);
                    assert!(summary.is_safe());
                })
            });
        }
        group.finish();
    }

    criterion_group!(benches, bench_checkers);
}

#[cfg(feature = "criterion-benches")]
fn main() {
    criterion_suite::benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}

#[cfg(not(feature = "criterion-benches"))]
fn main() {
    eprintln!(
        "benches are gated: rebuild with --features criterion-benches \
         (requires the criterion crate; see DESIGN.md)"
    );
}
