//! Criterion benches for the wire codec (message framing costs that the
//! bandwidth experiments account).
//!
//! Gated behind the off-by-default `criterion-benches` feature so the
//! default build stays hermetic; enabling it requires re-adding
//! `criterion` as a dev-dependency (see Cargo.toml).

#[cfg(feature = "criterion-benches")]
mod criterion_suite {
    use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
    use safereg_common::codec::Wire;
    use safereg_common::ids::{ReaderId, ServerId, WriterId};
    use safereg_common::msg::{ClientToServer, Envelope, OpId, Payload};
    use safereg_common::tag::Tag;
    use safereg_common::value::Value;

    fn put_envelope(size: usize) -> Envelope {
        Envelope::to_server(
            safereg_common::ids::ClientId::Writer(WriterId(1)),
            ServerId(0),
            ClientToServer::PutData {
                op: OpId::new(WriterId(1), 7),
                tag: Tag::new(42, WriterId(1)),
                payload: Payload::Full(Value::from(vec![0xF0; size])),
            },
        )
    }

    fn bench_codec(c: &mut Criterion) {
        let mut group = c.benchmark_group("codec/envelope");
        for size in [128usize, 16 << 10] {
            let env = put_envelope(size);
            let bytes = env.to_bytes();
            group.throughput(Throughput::Bytes(bytes.len() as u64));
            group.bench_with_input(BenchmarkId::new("encode", size), &size, |b, _| {
                b.iter(|| env.to_bytes())
            });
            group.bench_with_input(BenchmarkId::new("decode", size), &size, |b, _| {
                b.iter(|| Envelope::from_bytes(&bytes).unwrap())
            });
        }
        group.finish();

        // The small read-path message (dominates read-heavy workloads).
        let query = ClientToServer::QueryData {
            op: OpId::new(ReaderId(0), 1),
        };
        c.bench_function("codec/query-data", |b| b.iter(|| query.to_bytes()));
    }

    criterion_group!(benches, bench_codec);
}

#[cfg(feature = "criterion-benches")]
fn main() {
    criterion_suite::benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}

#[cfg(not(feature = "criterion-benches"))]
fn main() {
    eprintln!(
        "benches are gated: rebuild with --features criterion-benches \
         (requires the criterion crate; see DESIGN.md)"
    );
}
