//! Criterion benches for the channel-authentication substrate.
//!
//! Gated behind the off-by-default `criterion-benches` feature so the
//! default build stays hermetic; enabling it requires re-adding
//! `criterion` as a dev-dependency (see Cargo.toml).

#[cfg(feature = "criterion-benches")]
mod criterion_suite {
    use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
    use safereg_common::ids::{NodeId, ReaderId, ServerId};
    use safereg_crypto::auth::AuthCodec;
    use safereg_crypto::hmac::HmacSha256;
    use safereg_crypto::keychain::KeyChain;
    use safereg_crypto::sha256::Sha256;

    fn bench_sha256(c: &mut Criterion) {
        let mut group = c.benchmark_group("crypto/sha256");
        for size in [64usize, 1 << 10, 64 << 10] {
            let data = vec![0xABu8; size];
            group.throughput(Throughput::Bytes(size as u64));
            group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
                b.iter(|| Sha256::digest(&data))
            });
        }
        group.finish();
    }

    fn bench_hmac(c: &mut Criterion) {
        let mut group = c.benchmark_group("crypto/hmac");
        let key = b"bench key material";
        for size in [64usize, 4 << 10] {
            let data = vec![0x7Fu8; size];
            group.throughput(Throughput::Bytes(size as u64));
            group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
                b.iter(|| HmacSha256::mac(key, &data))
            });
        }
        group.finish();
    }

    fn bench_seal_open(c: &mut Criterion) {
        let chain = KeyChain::from_master_seed(b"bench");
        let codec =
            AuthCodec::new(chain.pair_key(NodeId::from(ServerId(0)), NodeId::from(ReaderId(0))));
        let payload = vec![0x42u8; 1024];
        let frame = codec.seal(&payload);
        c.bench_function("crypto/seal-1KiB", |b| b.iter(|| codec.seal(&payload)));
        c.bench_function("crypto/open-1KiB", |b| {
            b.iter(|| codec.open(&frame).unwrap())
        });
    }

    criterion_group!(benches, bench_sha256, bench_hmac, bench_seal_open);
}

#[cfg(feature = "criterion-benches")]
fn main() {
    criterion_suite::benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}

#[cfg(not(feature = "criterion-benches"))]
fn main() {
    eprintln!(
        "benches are gated: rebuild with --features criterion-benches \
         (requires the criterion crate; see DESIGN.md)"
    );
}
