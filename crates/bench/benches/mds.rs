//! Criterion benches for the MDS substrate (supports experiment E4).
//!
//! Measures encode/decode throughput of the `[n, k]` Reed–Solomon code over
//! the BCSR-relevant configurations: the minimal `k = 1` deployments and
//! over-provisioned deployments where the `n/k` savings actually pay.
//!
//! Gated behind the off-by-default `criterion-benches` feature so the
//! default build stays hermetic; enabling it requires re-adding
//! `criterion` as a dev-dependency (see Cargo.toml).

#[cfg(feature = "criterion-benches")]
mod criterion_suite {
    use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
    use safereg_common::value::Value;
    use safereg_mds::rs::ReedSolomon;
    use safereg_mds::stripe::{decode_elements, encode_value, ElementView};

    fn bench_encode(c: &mut Criterion) {
        let mut group = c.benchmark_group("mds/encode");
        for (n, k) in [(6usize, 1usize), (11, 6), (16, 11)] {
            for size in [1usize << 10, 64 << 10] {
                let code = ReedSolomon::new(n, k).unwrap();
                let value = Value::from(vec![0xA7u8; size]);
                group.throughput(Throughput::Bytes(size as u64));
                group.bench_with_input(
                    BenchmarkId::new(format!("n{n}k{k}"), size),
                    &size,
                    |b, _| b.iter(|| encode_value(&code, &value)),
                );
            }
        }
        group.finish();
    }

    fn bench_decode(c: &mut Criterion) {
        let mut group = c.benchmark_group("mds/decode");
        for (n, k, errors) in [(6usize, 1usize, 2usize), (11, 6, 2), (16, 11, 2)] {
            let size = 64usize << 10;
            let code = ReedSolomon::new(n, k).unwrap();
            let fresh = Value::from(vec![0x5Au8; size]);
            let stale = Value::from(vec![0xC3u8; size]);
            let fresh_elems = encode_value(&code, &fresh);
            let stale_elems = encode_value(&code, &stale);
            // One erasure + `errors` stale elements — a typical adversarial read.
            let views: Vec<ElementView<'_>> = (1..n)
                .map(|i| {
                    if i <= errors {
                        ElementView::of(&stale_elems[i])
                    } else {
                        ElementView::of(&fresh_elems[i])
                    }
                })
                .collect();
            group.throughput(Throughput::Bytes(size as u64));
            group.bench_function(BenchmarkId::new(format!("n{n}k{k}"), "1era+2err"), |b| {
                b.iter(|| decode_elements(&code, size, &views).unwrap())
            });
        }
        group.finish();
    }

    fn bench_clean_decode(c: &mut Criterion) {
        // The common case: no errors at all (syndromes all zero, early exit).
        let mut group = c.benchmark_group("mds/decode-clean");
        let (n, k) = (11usize, 6usize);
        let size = 64usize << 10;
        let code = ReedSolomon::new(n, k).unwrap();
        let value = Value::from(vec![0x11u8; size]);
        let elems = encode_value(&code, &value);
        let views: Vec<ElementView<'_>> = elems.iter().map(ElementView::of).collect();
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function("n11k6/clean", |b| {
            b.iter(|| decode_elements(&code, size, &views).unwrap())
        });
        group.finish();
    }

    criterion_group!(benches, bench_encode, bench_decode, bench_clean_decode);
}

#[cfg(feature = "criterion-benches")]
fn main() {
    criterion_suite::benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}

#[cfg(not(feature = "criterion-benches"))]
fn main() {
    eprintln!(
        "benches are gated: rebuild with --features criterion-benches \
         (requires the criterion crate; see DESIGN.md)"
    );
}
