//! Criterion benches for end-to-end protocol operations on the simulator
//! (supports experiments E2/E3/E8: relative operation costs per protocol).
//!
//! Each iteration runs a full deterministic simulation of one write
//! followed by one read, so the numbers include message construction,
//! serialization-length accounting and (for BCSR) encoding/decoding.
//!
//! Gated behind the off-by-default `criterion-benches` feature so the
//! default build stays hermetic; enabling it requires re-adding
//! `criterion` as a dev-dependency (see Cargo.toml).

#[cfg(feature = "criterion-benches")]
mod criterion_suite {
    use criterion::{criterion_group, BenchmarkId, Criterion};
    use safereg_common::config::QuorumConfig;
    use safereg_common::ids::{ReaderId, WriterId};
    use safereg_simnet::delay::FixedDelay;
    use safereg_simnet::driver::Plan;
    use safereg_simnet::sim::Sim;
    use safereg_simnet::workload::{Protocol, WorkloadSpec};

    fn one_write_one_read(protocol: Protocol, value_size: usize) {
        let cfg = QuorumConfig::new(protocol.min_n(1), 1).unwrap();
        let mut sim = Sim::new(cfg, 5, Box::new(FixedDelay { hop: 10 }));
        for sid in cfg.servers() {
            sim.add_server(protocol.correct_server(sid, cfg));
        }
        sim.add_client(
            protocol.writer(WriterId(0), cfg),
            vec![Plan::write_at(0, vec![0xEE; value_size])],
        );
        sim.add_client(
            protocol.reader(ReaderId(0), cfg),
            vec![Plan::read_at(1_000)],
        );
        let report = sim.run();
        assert_eq!(report.completed_ops, 2);
    }

    fn bench_write_read(c: &mut Criterion) {
        let mut group = c.benchmark_group("protocol/write+read");
        for protocol in [
            Protocol::Bsr,
            Protocol::BsrH,
            Protocol::Bsr2p,
            Protocol::Bcsr,
            Protocol::RbBaseline,
        ] {
            for size in [128usize, 16 << 10] {
                group.bench_with_input(
                    BenchmarkId::new(protocol.name(), size),
                    &size,
                    |b, &size| b.iter(|| one_write_one_read(protocol, size)),
                );
            }
        }
        group.finish();
    }

    fn bench_read_heavy_workload(c: &mut Criterion) {
        let mut group = c.benchmark_group("protocol/read-heavy-workload");
        group.sample_size(10);
        for protocol in [Protocol::Bsr, Protocol::RbBaseline] {
            group.bench_function(protocol.name(), |b| {
                b.iter(|| {
                    let spec = WorkloadSpec::read_heavy(protocol, 1, 990, 7);
                    let mut sim = spec.build();
                    sim.run()
                })
            });
        }
        group.finish();
    }

    criterion_group!(benches, bench_write_read, bench_read_heavy_workload);
}

#[cfg(feature = "criterion-benches")]
fn main() {
    criterion_suite::benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}

#[cfg(not(feature = "criterion-benches"))]
fn main() {
    eprintln!(
        "benches are gated: rebuild with --features criterion-benches \
         (requires the criterion crate; see DESIGN.md)"
    );
}
