//! Ablations of the design choices DESIGN.md calls out (A1–A4).
//!
//! Each ablation replaces one rule of the paper's algorithms with a
//! plausible alternative and demonstrates the failure mode the original
//! rule prevents.

use safereg_checker::CheckSummary;
use safereg_common::config::QuorumConfig;
use safereg_common::history::OpKind;
use safereg_common::ids::{ClientId, ReaderId, ServerId, WriterId};
use safereg_common::msg::{OpId, Payload, ServerToClient};
use safereg_common::tag::Tag;
use safereg_common::value::Value;
use safereg_core::bcsr::{BcsrReadOp, CodedReadStrategy};
use safereg_core::client::BsrWriter;
use safereg_core::op::ClientOp;
use safereg_core::read::BsrReadOp;
use safereg_core::server::{HistoryRetention, ServerNode};
use safereg_core::write::{TagSelection, WriteOp};
use safereg_mds::rs::ReedSolomon;
use safereg_mds::stripe::encode_value;
use safereg_simnet::behavior::StaleReplier;
use safereg_simnet::behavior::{Correct, Fabricator};
use safereg_simnet::delay::SpikeDelay;
use safereg_simnet::delay::{Delay, Matcher, MsgKind, Rule, Scripted};
use safereg_simnet::driver::{Action, ClientDriver, OpFactory, Plan};
use safereg_simnet::scenarios::HOP;
use safereg_simnet::sim::Sim;

fn held(matcher: Matcher) -> Rule {
    Rule {
        matcher,
        delay: Delay::held(),
    }
}

fn delayed(matcher: Matcher, ticks: u64) -> Rule {
    Rule {
        matcher,
        delay: Delay::after(ticks),
    }
}

// ---------------------------------------------------------------------------
// A1 — witness threshold
// ---------------------------------------------------------------------------

/// One row of the witness-threshold sweep.
#[derive(Debug, Clone)]
pub struct A1Row {
    /// Witness threshold used by the read (`f + 1 = 2` is the paper's).
    pub threshold: usize,
    /// What the read returned.
    pub returned: String,
    /// Safety verdict.
    pub safe: bool,
    /// Freshness verdict.
    pub fresh: bool,
}

struct ThresholdReader {
    id: ReaderId,
    cfg: QuorumConfig,
    seq: u64,
    threshold: usize,
}

impl OpFactory for ThresholdReader {
    fn client_id(&self) -> ClientId {
        ClientId::Reader(self.id)
    }

    fn begin(&mut self, action: &Action) -> Box<dyn ClientOp> {
        assert!(
            matches!(action, Action::Read),
            "threshold reader only reads"
        );
        self.seq += 1;
        Box::new(
            BsrReadOp::new(self.id, self.seq, self.cfg, (Tag::ZERO, Value::initial()))
                .with_witness_threshold(self.threshold),
        )
    }
}

/// A1: sweep the read's witness threshold around the paper's `f + 1`.
///
/// The schedule arranges exactly `f + 1` fresh witnesses among the
/// reader's `n − f` responses (one correct response held, one Byzantine
/// fabricator): threshold `f` accepts the fabricated pair, `f + 1` returns
/// the write, `f + 2` misses it and regresses to `v_0`.
pub fn a1_witness_threshold() -> Vec<A1Row> {
    let cfg = QuorumConfig::minimal_bsr(1).expect("n=5, f=1");
    (1..=3)
        .map(|threshold| {
            let write_op = OpId::new(WriterId(0), 1);
            let read_op = OpId::new(ReaderId(0), 1);
            let rules = vec![
                // The write never reaches s3.
                held(
                    Matcher::any()
                        .for_op(write_op)
                        .of_kind(MsgKind::PutData)
                        .to_node(ServerId(3)),
                ),
                // s2's read response is held, leaving fresh witnesses s0, s1.
                held(
                    Matcher::any()
                        .for_op(read_op)
                        .of_kind(MsgKind::Response)
                        .from_node(ServerId(2)),
                ),
            ];
            let mut sim = Sim::new(cfg, 71, Box::new(Scripted::over_fixed(rules, HOP)));
            for sid in cfg.servers() {
                if sid == ServerId(4) {
                    sim.add_server(Box::new(Fabricator::new(sid, 99)));
                } else {
                    sim.add_server(Box::new(Correct::new(ServerNode::new_replicated(sid, cfg))));
                }
            }
            sim.add_client(
                ClientDriver::BsrWriter(BsrWriter::new(WriterId(0), cfg)),
                vec![Plan::write_at(0, "fresh")],
            );
            sim.add_client(
                ClientDriver::Custom(Box::new(ThresholdReader {
                    id: ReaderId(0),
                    cfg,
                    seq: 0,
                    threshold,
                })),
                vec![Plan::read_at(1_000)],
            );
            sim.run_until(1_000_000);
            let summary = CheckSummary::check_all(sim.history());
            let returned = sim
                .history()
                .completed_reads()
                .next()
                .and_then(|r| match &r.kind {
                    OpKind::Read {
                        returned: Some(v), ..
                    } => Some(v.to_string()),
                    _ => None,
                })
                .unwrap_or_else(|| "<none>".into());
            A1Row {
                threshold,
                returned,
                safe: summary.is_safe(),
                fresh: summary.is_fresh(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// A2 — get-tag selection rule
// ---------------------------------------------------------------------------

/// One row of the tag-selection ablation.
#[derive(Debug, Clone)]
pub struct A2Row {
    /// Which selection rule the writer used.
    pub selection: &'static str,
    /// Tag number after three writes (should be 3 under the robust rule).
    pub final_tag_num: u64,
    /// Whether a single Byzantine server inflated the tag space.
    pub inflated: bool,
}

struct SelectingWriter {
    id: WriterId,
    cfg: QuorumConfig,
    seq: u64,
    selection: TagSelection,
}

impl OpFactory for SelectingWriter {
    fn client_id(&self) -> ClientId {
        ClientId::Writer(self.id)
    }

    fn begin(&mut self, action: &Action) -> Box<dyn ClientOp> {
        let value = match action {
            Action::Write(v) => v.clone(),
            Action::Read => panic!("selecting writer only writes"),
        };
        self.seq += 1;
        Box::new(
            WriteOp::replicated(self.id, self.seq, self.cfg, value)
                .with_tag_selection(self.selection),
        )
    }
}

/// A2: replace the `(f+1)`-th-highest tag selection with plain `max` and
/// let one Byzantine fabricator answer `get-tag` queries.
pub fn a2_tag_selection() -> Vec<A2Row> {
    [
        (TagSelection::Robust, "(f+1)-th highest"),
        (TagSelection::Max, "max"),
    ]
    .into_iter()
    .map(|(selection, name)| {
        let cfg = QuorumConfig::minimal_bsr(1).expect("n=5, f=1");
        let mut sim = Sim::new(
            cfg,
            73,
            Box::new(safereg_simnet::delay::FixedDelay { hop: HOP }),
        );
        for sid in cfg.servers() {
            // The fabricator sits at s0 so its forged get-tag response
            // is always among the first n - f the writer collects.
            if sid == ServerId(0) {
                sim.add_server(Box::new(Fabricator::new(sid, 7)));
            } else {
                sim.add_server(Box::new(Correct::new(ServerNode::new_replicated(sid, cfg))));
            }
        }
        sim.add_client(
            ClientDriver::Custom(Box::new(SelectingWriter {
                id: WriterId(0),
                cfg,
                seq: 0,
                selection,
            })),
            vec![
                Plan::write_at(0, "w1"),
                Plan::write_at(1_000, "w2"),
                Plan::write_at(2_000, "w3"),
            ],
        );
        sim.run();
        let final_tag_num = sim
            .history()
            .completed_writes()
            .filter_map(|w| match &w.kind {
                OpKind::Write { tag: Some(t), .. } => Some(t.num),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        A2Row {
            selection: name,
            final_tag_num,
            inflated: final_tag_num > 1_000,
        }
    })
    .collect()
}

// ---------------------------------------------------------------------------
// A3 — BCSR decode strategy
// ---------------------------------------------------------------------------

/// One row of the decode-strategy ablation.
#[derive(Debug, Clone)]
pub struct A3Row {
    /// Decode strategy.
    pub strategy: &'static str,
    /// Whether the fresh value was recovered.
    pub recovered: bool,
    /// What the read returned.
    pub returned: String,
}

/// A3: erasure-marking vs blind error decoding in the BCSR reader.
///
/// With `n = 16, f = 2, k = 6` the reader faces 2 missing servers, 4 stale
/// elements and 2 fresh-tag corruptions. Erasure-marking spends
/// `4 + 4 = 8 ≤ 10` of the budget (stale elements become cheap erasures);
/// blind decoding needs `2·6 + 2 = 14 > 10` and fails back to `v_0`.
pub fn a3_decode_strategy() -> Vec<A3Row> {
    let n = 16usize;
    let f = 2usize;
    let cfg = QuorumConfig::new(n, f).expect("valid config");
    let k = cfg.mds_k().expect("k = n - 5f");
    let code = ReedSolomon::new(n, k).expect("valid code");

    let fresh = Value::from("ablation-three fresh value!");
    let stale = Value::from("ablation-three STALE value.");
    let fresh_elems = encode_value(&code, &fresh);
    let stale_elems = encode_value(&code, &stale);
    let t_new = Tag::new(2, WriterId(0));
    let t_old = Tag::new(1, WriterId(0));

    [
        (CodedReadStrategy::ErasureMarking, "erasure-marking"),
        (CodedReadStrategy::BlindDecode, "blind-decode"),
    ]
    .into_iter()
    .map(|(strategy, name)| {
        let mut op = BcsrReadOp::new(ReaderId(0), 1, cfg, code.clone()).with_strategy(strategy);
        op.start();
        let id = op.op_id();
        // Servers 0–1 never respond (erasures). Servers 2–5 are stale.
        // Servers 6–7 are Byzantine: fresh tag, corrupted bytes.
        // Servers 8–15 are fresh (8 = k + 2 honest elements).
        for i in 2..16u16 {
            let (tag, elem) = if i < 6 {
                (t_old, stale_elems[i as usize].clone())
            } else if i < 8 {
                let mut corrupt = fresh_elems[i as usize].clone();
                corrupt.data =
                    safereg_common::buf::Bytes::from(vec![0x3C ^ i as u8; corrupt.data.len()]);
                (t_new, corrupt)
            } else {
                (t_new, fresh_elems[i as usize].clone())
            };
            op.on_message(
                ServerId(i),
                &ServerToClient::DataResp {
                    op: id,
                    tag,
                    payload: Payload::Coded(elem),
                },
            );
        }
        let out = op.output().expect("n - f = 14 responses delivered");
        let returned = out.read_value().expect("read outcome").clone();
        A3Row {
            strategy: name,
            recovered: returned == fresh,
            returned: returned.to_string(),
        }
    })
    .collect()
}

// ---------------------------------------------------------------------------
// A4 — history retention
// ---------------------------------------------------------------------------

/// One row of the retention ablation.
#[derive(Debug, Clone)]
pub struct A4Row {
    /// Server history-retention policy.
    pub retention: &'static str,
    /// What the BSR-H read returned.
    pub returned: String,
    /// Freshness verdict.
    pub fresh: bool,
}

/// A4: the paper-literal "store only if higher" retention (Fig. 3 line 5)
/// versus store-everything, under a tie-break schedule where concurrent
/// same-number tags make correct servers drop a completed write. BSR-H
/// loses the completed write under `MaxOnly` and keeps it under `All`.
pub fn a4_history_retention() -> Vec<A4Row> {
    [
        (HistoryRetention::MaxOnly, "max-only (Fig. 3 literal)"),
        (HistoryRetention::All, "all (default)"),
    ]
    .into_iter()
    .map(|(retention, name)| {
        let cfg = QuorumConfig::minimal_bsr(1).expect("n=5, f=1");
        // Five concurrent writers all derive tag (1, w_i); w1's put is
        // slightly delayed so servers s1..s4 see their own writer's
        // (1, w_i) first and — under MaxOnly — drop (1, w1).
        let mut rules = Vec::new();
        for i in 2..=5u16 {
            let target = ServerId(i - 1);
            for sid in cfg.servers() {
                if sid != target {
                    rules.push(held(
                        Matcher::any()
                            .for_op(OpId::new(WriterId(i), 1))
                            .of_kind(MsgKind::PutData)
                            .to_node(sid),
                    ));
                }
            }
        }
        for sid in [ServerId(1), ServerId(2), ServerId(3), ServerId(4)] {
            rules.push(delayed(
                Matcher::any()
                    .for_op(OpId::new(WriterId(1), 1))
                    .of_kind(MsgKind::PutData)
                    .to_node(sid),
                35,
            ));
        }
        let mut sim = Sim::new(cfg, 77, Box::new(Scripted::over_fixed(rules, HOP)));
        for sid in cfg.servers() {
            sim.add_server(Box::new(Correct::new(
                ServerNode::new_replicated(sid, cfg).with_retention(retention),
            )));
        }
        for i in 1..=5u16 {
            sim.add_client(
                ClientDriver::BsrWriter(BsrWriter::new(WriterId(i), cfg)),
                vec![Plan::write_at(0, format!("v{i}").into_bytes())],
            );
        }
        sim.add_client(
            ClientDriver::BsrHReader(safereg_core::client::BsrHReader::new(ReaderId(0), cfg)),
            vec![Plan::read_at(200)],
        );
        sim.run_until(1_000_000);
        let summary = CheckSummary::check_all(sim.history());
        let returned = sim
            .history()
            .completed_reads()
            .next()
            .and_then(|r| match &r.kind {
                OpKind::Read {
                    returned: Some(v), ..
                } => Some(v.to_string()),
                _ => None,
            })
            .unwrap_or_else(|| "<none>".into());
        A4Row {
            retention: name,
            returned,
            fresh: summary.is_fresh(),
        }
    })
    .collect()
}

// ---------------------------------------------------------------------------
// A5 — write fan-out (Lemma 7)
// ---------------------------------------------------------------------------

/// One row of the fan-out sweep.
#[derive(Debug, Clone)]
pub struct A5Row {
    /// Servers the put-data phase contacts.
    pub fanout: usize,
    /// Random schedules tried.
    pub trials: u64,
    /// Schedules that violated safety.
    pub violations: usize,
}

struct FanoutWriter {
    id: WriterId,
    cfg: QuorumConfig,
    seq: u64,
    fanout: usize,
}

impl OpFactory for FanoutWriter {
    fn client_id(&self) -> ClientId {
        ClientId::Writer(self.id)
    }

    fn begin(&mut self, action: &Action) -> Box<dyn ClientOp> {
        let value = match action {
            Action::Write(v) => v.clone(),
            Action::Read => panic!("fanout writer only writes"),
        };
        self.seq += 1;
        Box::new(WriteOp::replicated(self.id, self.seq, self.cfg, value).with_fanout(self.fanout))
    }
}

/// A5: restrict the write's `put-data` fan-out below the paper's "send to
/// all `n`" (Lemma 7 proves writes must communicate with at least `3f`
/// servers; this sweep shows how quickly safety decays below full fan-out
/// under purely random schedules with one stale-replying Byzantine server).
pub fn a5_write_fanout() -> Vec<A5Row> {
    let cfg = QuorumConfig::minimal_bsr(1).expect("n=5, f=1");
    let trials = 120u64;
    [3usize, 4, 5]
        .into_iter()
        .map(|fanout| {
            let mut violations = 0;
            for seed in 0..trials {
                let delays = SpikeDelay {
                    base: (1, 60),
                    spike_prob: 0.12,
                    spike: (800, 4_000),
                };
                let mut sim = Sim::new(cfg, seed, Box::new(delays));
                for sid in cfg.servers() {
                    if sid == ServerId(0) {
                        sim.add_server(Box::new(StaleReplier::new(
                            ServerNode::new_replicated(sid, cfg),
                            1,
                        )));
                    } else {
                        sim.add_server(Box::new(Correct::new(ServerNode::new_replicated(
                            sid, cfg,
                        ))));
                    }
                }
                sim.add_client(
                    ClientDriver::Custom(Box::new(FanoutWriter {
                        id: WriterId(1),
                        cfg,
                        seq: 0,
                        fanout,
                    })),
                    vec![
                        Plan::write_at(0, "v1"),
                        Plan {
                            start: safereg_simnet::driver::StartRule::AfterPrevious { think: 1 },
                            action: Action::Write(Value::from("v2")),
                        },
                    ],
                );
                let read_at = 200 + (seed.wrapping_mul(0x9E3779B97F4A7C15) % 2_000);
                sim.add_client(
                    ClientDriver::BsrReader(safereg_core::client::BsrReader::new(ReaderId(0), cfg)),
                    vec![Plan::read_at(read_at)],
                );
                sim.run();
                let summary = CheckSummary::check_all(sim.history());
                if !summary.is_safe() {
                    violations += 1;
                }
            }
            A5Row {
                fanout,
                trials,
                violations,
            }
        })
        .collect()
}
