//! Accountability harness: convict every injected Byzantine replica from
//! evidence alone, and never convict a correct one.
//!
//! The audit layer ([`safereg_kv::audit`]) claims three things:
//!
//! 1. **Completeness** — a replica that fabricates or equivocates is
//!    [`Verdict::Convicted`](safereg_kv::Verdict) from its own MAC-chained
//!    response links, with evidence that re-verifies offline.
//! 2. **Soundness** — wire corruption, drops, delays and truncation (the
//!    chaos proxy's whole repertoire) raise *suspicion* at most; the
//!    `kv.audit.false_accusations` counter stays at zero because a MAC
//!    failure is distinguishable from a signed contradiction.
//! 3. **Consequence** — a conviction quarantines the replica (read-only)
//!    and evicts it through the reconfiguration machinery, and the
//!    deployment keeps serving afterwards.
//!
//! This harness injects one Fabricator leg and one Equivocator leg into a
//! live TCP cluster, then runs a correct-but-corrupted chaos leg on a
//! second cluster, and checks all three claims. The Equivocator leg
//! deliberately registers the forged writer id as legitimate, so the
//! conviction *must* come from cross-reader equivocation pooling — the
//! hardest detection path — rather than the inadmissible-tag shortcut.

use std::time::Duration;

use safereg_common::codec::Wire;
use safereg_common::config::{BackoffPolicy, QuorumConfig, TransportConfig};
use safereg_common::ids::{ReaderId, ServerId, WriterId};
use safereg_core::behavior::ByzRole;
use safereg_kv::{AuditLog, Charge, Evidence, KvClient, KvMode, TcpKvCluster, TcpKvTransport};
use safereg_obs::names;
use safereg_transport::chaos::{FaultPlan, FaultSpec};

/// Knobs for one audit run.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Master seed: Byzantine forgery streams and the chaos schedule.
    pub seed: u64,
    /// Workload rounds per leg (each round is one put per fourth round
    /// plus a read from each of the two readers).
    pub ops: u64,
    /// Distinct keys the workload cycles through.
    pub keys: usize,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            seed: 0xA0D1_7EED,
            ops: 64,
            keys: 2,
        }
    }
}

/// One leg's outcome.
#[derive(Debug, Clone)]
pub struct LegStat {
    /// `"fabricator"`, `"equivocator"` or `"chaos-corruption"`.
    pub label: &'static str,
    /// The replica playing the injected role, if any.
    pub accused: Option<u16>,
    /// Workload rounds driven.
    pub rounds: u64,
    /// Operations completed.
    pub ops: u64,
    /// Operations abandoned (retry budget exhausted).
    pub failures: u64,
    /// `kv.audit.evidence` delta over the leg.
    pub evidence: u64,
    /// Final verdict on the accused (or `"clean"` for the chaos leg).
    pub verdict: String,
    /// Whether the accused ended the leg convicted (vacuously false for
    /// the chaos leg, which must convict nobody).
    pub convicted: bool,
}

/// Outcome of one audit run.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// The master seed.
    pub seed: u64,
    /// Fabricator, equivocator and chaos legs, in order.
    pub legs: Vec<LegStat>,
    /// `(server, charge)` pairs the main cluster's log convicted.
    pub convictions: Vec<(u16, String)>,
    /// Replicas the chaos-leg log convicted — 0 required (those replicas
    /// are all correct; only the network misbehaves).
    pub chaos_convictions: u64,
    /// `kv.audit.false_accusations` delta across the whole run — 0
    /// required.
    pub false_accusations: u64,
    /// Evidence records filed across the whole run.
    pub evidence_total: u64,
    /// An `inadmissible-tag` charge convicted the Fabricator.
    pub inadmissible_charge: bool,
    /// An `equivocation` charge convicted the Equivocator (its forged
    /// writer id was registered, closing the inadmissible-tag shortcut).
    pub equivocation_charge: bool,
    /// Every filed evidence record re-verified offline by the log.
    pub offline_reverify_ok: bool,
    /// Every evidence record survived a serialize → decode → re-verify
    /// round trip, as a third party would check it.
    pub offline_roundtrip_ok: bool,
    /// `kv.audit.quarantines` delta (one per convicted replica).
    pub quarantines: u64,
    /// `(evicted, replacement)` pairs from verdict enforcement.
    pub evicted: Vec<(u16, u16)>,
    /// Cluster epoch after the convicted replicas were replaced.
    pub epoch_after_eviction: u32,
    /// Operations completed against the post-eviction membership.
    pub post_eviction_ops: u64,
    /// Post-eviction operations abandoned — 0 required.
    pub post_eviction_failures: u64,
    /// Highest suspicion accumulated against a known-correct replica on
    /// the main log (informational: suspicion is not an accusation).
    pub suspicion_correct_max: u64,
}

impl AuditReport {
    /// The acceptance predicate `scripts/ci.sh` greps for: both injected
    /// roles convicted on the right charge, evidence re-verifies offline
    /// (including through serialization), nobody convicted under pure
    /// network faults, zero false accusations, and conviction led to
    /// quarantine + eviction with the cluster still serving.
    pub fn ok(&self) -> bool {
        let injected_convicted = self
            .legs
            .iter()
            .filter(|l| l.accused.is_some())
            .all(|l| l.convicted && l.ops > 0);
        let chaos_clean = self
            .legs
            .iter()
            .filter(|l| l.accused.is_none())
            .all(|l| !l.convicted && l.ops > 0);
        injected_convicted
            && chaos_clean
            && self.inadmissible_charge
            && self.equivocation_charge
            && self.chaos_convictions == 0
            && self.false_accusations == 0
            && self.offline_reverify_ok
            && self.offline_roundtrip_ok
            && self.evicted.len() == 2
            && self.quarantines >= 2
            && self.post_eviction_ops > 0
            && self.post_eviction_failures == 0
    }

    /// Line-oriented JSON for `BENCH_audit.json`.
    pub fn to_json(&self) -> String {
        let legs: Vec<String> = self
            .legs
            .iter()
            .map(|l| {
                format!(
                    concat!(
                        "{{\"label\":\"{}\",\"accused\":{},\"rounds\":{},\"ops\":{},",
                        "\"failures\":{},\"evidence\":{},\"verdict\":\"{}\",",
                        "\"convicted\":{}}}"
                    ),
                    l.label,
                    l.accused.map_or("null".into(), |s| s.to_string()),
                    l.rounds,
                    l.ops,
                    l.failures,
                    l.evidence,
                    l.verdict,
                    l.convicted
                )
            })
            .collect();
        let convictions: Vec<String> = self
            .convictions
            .iter()
            .map(|(s, c)| format!("{{\"server\":{s},\"charge\":\"{c}\"}}"))
            .collect();
        let evicted: Vec<String> = self
            .evicted
            .iter()
            .map(|(old, new)| format!("[{old},{new}]"))
            .collect();
        format!(
            concat!(
                "{{\"seed\":{},\"legs\":[{}],\"convictions\":[{}],",
                "\"chaos_convictions\":{},\"false_accusations\":{},",
                "\"evidence_total\":{},\"inadmissible_charge\":{},",
                "\"equivocation_charge\":{},\"offline_reverify_ok\":{},",
                "\"offline_roundtrip_ok\":{},\"quarantines\":{},",
                "\"evicted\":[{}],\"epoch_after_eviction\":{},",
                "\"post_eviction_ops\":{},\"post_eviction_failures\":{},",
                "\"suspicion_correct_max\":{},\"ok\":{}}}\n"
            ),
            self.seed,
            legs.join(","),
            convictions.join(","),
            self.chaos_convictions,
            self.false_accusations,
            self.evidence_total,
            self.inadmissible_charge,
            self.equivocation_charge,
            self.offline_reverify_ok,
            self.offline_roundtrip_ok,
            self.quarantines,
            evicted.join(","),
            self.epoch_after_eviction,
            self.post_eviction_ops,
            self.post_eviction_failures,
            self.suspicion_correct_max,
            self.ok()
        )
    }
}

/// Retries per logical operation — the chaos leg drops and corrupts a few
/// percent of frames, and the post-eviction phase crosses an epoch
/// adoption; each must still terminate.
const OP_RETRIES: usize = 8;

/// The replica that plays the Fabricator in leg 1.
const FABRICATOR: ServerId = ServerId(3);
/// The replica that plays the Equivocator in leg 2.
const EQUIVOCATOR: ServerId = ServerId(2);
/// The forged writer id [`safereg_core::behavior::Equivocator`] stamps
/// into its per-reader lies. Leg 2 registers it as legitimate so the
/// conviction must come from equivocation pooling, not tag admissibility.
const EQUIVOCATOR_FORGED_WRITER: WriterId = WriterId(8888);

/// Short-timeout transport policy: chaos drops must cost milliseconds,
/// not the default multi-second deadline.
fn audit_transport() -> TransportConfig {
    TransportConfig {
        connect_timeout: Duration::from_millis(250),
        op_deadline: Duration::from_secs(3),
        io_timeout: Duration::from_millis(50),
        retry_budget: 1,
        backoff: BackoffPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(200),
            jitter_permille: 200,
        },
        ..TransportConfig::aggressive()
    }
}

/// Two audited clients (one writing, both reading) over one shared log.
struct Workload {
    a: (KvClient, TcpKvTransport),
    b: (KvClient, TcpKvTransport),
    keys: Vec<Vec<u8>>,
    seq: u64,
    completed: u64,
    failures: u64,
}

impl Workload {
    /// One workload round: a put every fourth round, then one read from
    /// each reader *back to back on the same key* — consecutive same-key
    /// reads are what hands an equivocator two chances to tell one story.
    fn round(&mut self, i: u64) {
        let kidx = (i as usize) % self.keys.len();
        let key = self.keys[kidx].clone();
        if i.is_multiple_of(4) {
            self.seq += 1;
            let value = format!("audit:w{}", self.seq).into_bytes();
            self.one(|wl| wl.a.0.put(&mut wl.a.1, &key, value.clone()).map(|_| ()));
        }
        self.one(|wl| wl.a.0.get(&mut wl.a.1, &key).map(|_| ()));
        self.one(|wl| wl.b.0.get(&mut wl.b.1, &key).map(|_| ()));
    }

    /// Runs one operation with retries, counting completion or failure.
    fn one(&mut self, mut op: impl FnMut(&mut Self) -> Result<(), safereg_kv::KvError>) {
        for attempt in 0..OP_RETRIES {
            match op(self) {
                Ok(()) => {
                    self.completed += 1;
                    return;
                }
                Err(_) if attempt + 1 < OP_RETRIES => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => {}
            }
        }
        self.failures += 1;
    }
}

/// Builds the two audited clients for `cluster`, all feeding `audit`.
fn workload(cluster: &TcpKvCluster, audit: &std::sync::Arc<AuditLog>, keys: usize) -> Workload {
    let tconfig = audit_transport();
    let make = |w: u16, r: u16| {
        let mut client = KvClient::sharded(cluster.map().clone(), WriterId(w), ReaderId(r));
        client.set_policy(tconfig);
        let mut transport = cluster.transport_with(tconfig);
        transport.set_audit(audit.clone());
        (client, transport)
    };
    Workload {
        a: make(1, 1),
        b: make(2, 2),
        keys: (0..keys.max(1))
            .map(|k| format!("audit-k{k}").into_bytes())
            .collect(),
        seq: 0,
        completed: 0,
        failures: 0,
    }
}

/// Sets `role` on every register group `sid` serves.
fn set_role_everywhere(cluster: &TcpKvCluster, sid: ServerId, role: ByzRole, seed: u64) {
    for g in cluster.map().shards_of_server(sid) {
        cluster.set_shard_role(sid, g, role, seed ^ u64::from(g.0));
    }
}

/// Drives one leg of the workload and folds the outcome into a
/// [`LegStat`], judging `accused` against the log's verdict.
fn run_leg(
    wl: &mut Workload,
    audit: &AuditLog,
    label: &'static str,
    accused: Option<ServerId>,
    rounds: u64,
) -> LegStat {
    let reg = safereg_obs::global();
    let evidence0 = reg.counter(names::KV_AUDIT_EVIDENCE).get();
    let completed0 = wl.completed;
    let failures0 = wl.failures;
    for i in 0..rounds {
        wl.round(i);
    }
    let (verdict, convicted) = match accused {
        Some(sid) => match audit.verdict(sid) {
            safereg_kv::Verdict::Convicted(_) => {
                let charge = audit
                    .convictions()
                    .into_iter()
                    .find(|(s, _)| *s == sid)
                    .map(|(_, c)| c.to_string())
                    .unwrap_or_default();
                (format!("convicted({charge})"), true)
            }
            safereg_kv::Verdict::Suspect => ("suspect".into(), false),
            safereg_kv::Verdict::Clean => ("clean".into(), false),
        },
        // Chaos leg: the leg is "convicted" if *anyone* was — that is the
        // false-accusation failure mode the leg exists to rule out.
        None => {
            let n = audit.convictions().len();
            (format!("{n} convicted"), n > 0)
        }
    };
    LegStat {
        label,
        accused: accused.map(|s| s.0),
        rounds,
        ops: wl.completed - completed0,
        failures: wl.failures - failures0,
        evidence: reg.counter(names::KV_AUDIT_EVIDENCE).get() - evidence0,
        verdict,
        convicted,
    }
}

/// Serialize → decode → re-verify every evidence record, exactly as a
/// third party holding only the deployment seed and writer set would.
fn roundtrip_verifies(evidence: &[Evidence], cluster: &TcpKvCluster, audit: &AuditLog) -> bool {
    let writers = audit.registered_writers();
    evidence.iter().all(|e| {
        let bytes = e.to_bytes();
        match Evidence::from_bytes(&bytes) {
            Ok(decoded) => decoded == *e && decoded.verify(cluster.chain(), &writers),
            Err(_) => false,
        }
    })
}

/// Runs the audit scenario end to end.
///
/// # Panics
///
/// Panics when a cluster cannot be started — an environment failure, not
/// an audit outcome.
#[allow(clippy::too_many_lines)]
pub fn audit_run(cfg: &AuditConfig) -> AuditReport {
    let reg = safereg_obs::global();
    let fa0 = reg.counter(names::KV_AUDIT_FALSE_ACCUSATIONS).get();
    let quarantines0 = reg.counter(names::KV_AUDIT_QUARANTINES).get();
    let evidence0 = reg.counter(names::KV_AUDIT_EVIDENCE).get();

    let q = QuorumConfig::minimal_bsr(1).expect("n = 5, f = 1 is valid");
    let mut cluster = TcpKvCluster::builder(KvMode::Replicated, b"audit-harness")
        .quorum(q)
        .config(audit_transport())
        .start()
        .expect("start audit cluster");
    let audit = cluster.audit_log();
    audit.register_writers([WriterId(1), WriterId(2)]);
    // Ground truth for the false-accusation counter: replicas that stay
    // honest through both injected legs.
    audit.expect_correct([ServerId(0), ServerId(1), ServerId(4)]);
    let mut wl = workload(&cluster, &audit, cfg.keys);
    let mut legs = Vec::with_capacity(3);

    // Leg 1 — Fabricator: forged tags carry an unregistered writer id, so
    // every attested lie is a self-signed inadmissible-tag confession.
    set_role_everywhere(&cluster, FABRICATOR, ByzRole::Fabricator, cfg.seed);
    legs.push(run_leg(
        &mut wl,
        &audit,
        "fabricator",
        Some(FABRICATOR),
        cfg.ops,
    ));
    set_role_everywhere(&cluster, FABRICATOR, ByzRole::Correct, cfg.seed);

    // Leg 2 — Equivocator, with its forged writer id *registered*: the
    // inadmissible-tag shortcut is closed, so conviction must come from
    // two readers pooling contradictory authentic links at one tag.
    audit.register_writers([EQUIVOCATOR_FORGED_WRITER]);
    set_role_everywhere(&cluster, EQUIVOCATOR, ByzRole::Equivocator, cfg.seed);
    legs.push(run_leg(
        &mut wl,
        &audit,
        "equivocator",
        Some(EQUIVOCATOR),
        cfg.ops,
    ));
    set_role_everywhere(&cluster, EQUIVOCATOR, ByzRole::Correct, cfg.seed);

    // Offline checks on everything filed so far: the log's own reverify
    // pass, plus an explicit wire round trip per record.
    let evidence = audit.evidence();
    let offline_reverify_ok = audit.reverify().is_empty();
    let offline_roundtrip_ok = roundtrip_verifies(&evidence, &cluster, &audit);
    let inadmissible_charge = evidence
        .iter()
        .any(|e| e.charge == Charge::InadmissibleTag && e.accused == FABRICATOR);
    let equivocation_charge = evidence
        .iter()
        .any(|e| e.charge == Charge::Equivocation && e.accused == EQUIVOCATOR);

    // Consequence: quarantine + evict every convicted replica, then keep
    // the workload running against the successor membership.
    let evicted = cluster
        .enforce_verdicts(&audit)
        .expect("evict convicted replicas");
    let epoch_after_eviction = cluster.epoch();
    let post0 = (wl.completed, wl.failures);
    for i in 0..cfg.ops {
        wl.round(i);
    }
    let (post_eviction_ops, post_eviction_failures) =
        (wl.completed - post0.0, wl.failures - post0.1);

    let suspicion_correct_max = [ServerId(0), ServerId(1), ServerId(4)]
        .iter()
        .map(|s| audit.suspicion(*s))
        .max()
        .unwrap_or(0);

    // Leg 3 — a fresh, fully-correct cluster behind corrupting chaos
    // proxies: drops, delays, corruption and truncation on every link.
    // MAC failures must surface as suspicion, never conviction.
    let chaos_spec = FaultSpec {
        kill_permille: 3,
        truncate_permille: 8,
        corrupt_permille: 40,
        drop_permille: 20,
        delay_permille: 20,
        delay_micros: (50, 500),
        classes: None,
    };
    let chaos_cluster = TcpKvCluster::builder(KvMode::Replicated, b"audit-chaos")
        .quorum(q)
        .config(audit_transport())
        .chaos(FaultPlan::new(cfg.seed, chaos_spec))
        .start()
        .expect("start chaos cluster");
    let chaos_audit = chaos_cluster.audit_log();
    chaos_audit.register_writers([WriterId(1), WriterId(2)]);
    chaos_audit.expect_correct(q.servers());
    let mut chaos_wl = workload(&chaos_cluster, &chaos_audit, cfg.keys);
    legs.push(run_leg(
        &mut chaos_wl,
        &chaos_audit,
        "chaos-corruption",
        None,
        cfg.ops,
    ));
    let chaos_convictions = chaos_audit.convictions().len() as u64;

    AuditReport {
        seed: cfg.seed,
        legs,
        convictions: audit
            .convictions()
            .into_iter()
            .map(|(s, c)| (s.0, c.to_string()))
            .collect(),
        chaos_convictions,
        false_accusations: reg.counter(names::KV_AUDIT_FALSE_ACCUSATIONS).get() - fa0,
        evidence_total: reg.counter(names::KV_AUDIT_EVIDENCE).get() - evidence0,
        inadmissible_charge,
        equivocation_charge,
        offline_reverify_ok,
        offline_roundtrip_ok,
        quarantines: reg.counter(names::KV_AUDIT_QUARANTINES).get() - quarantines0,
        evicted: evicted.into_iter().map(|(a, b)| (a.0, b.0)).collect(),
        epoch_after_eviction,
        post_eviction_ops,
        post_eviction_failures,
        suspicion_correct_max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A down-scaled full run: both injected roles convicted on the right
    /// charges, the chaos leg convicts nobody, evidence survives the
    /// offline round trip, and eviction leaves a serving cluster.
    #[test]
    fn tiny_audit_convicts_and_acquits() {
        let cfg = AuditConfig {
            seed: 11,
            ops: 24,
            keys: 2,
        };
        let report = audit_run(&cfg);
        for l in &report.legs {
            eprintln!(
                "{}: {} ops, {} evidence, verdict {}",
                l.label, l.ops, l.evidence, l.verdict
            );
        }
        assert!(
            report.legs[0].convicted,
            "fabricator not convicted: {report:?}"
        );
        assert!(
            report.legs[1].convicted,
            "equivocator not convicted: {report:?}"
        );
        assert!(report.inadmissible_charge, "no inadmissible-tag evidence");
        assert!(report.equivocation_charge, "no equivocation evidence");
        assert_eq!(
            report.chaos_convictions, 0,
            "chaos convicted a correct replica"
        );
        assert_eq!(report.false_accusations, 0);
        assert!(report.offline_reverify_ok && report.offline_roundtrip_ok);
        assert_eq!(report.evicted.len(), 2, "conviction did not evict");
        assert!(report.post_eviction_ops > 0 && report.post_eviction_failures == 0);
        assert!(report.ok(), "{report:?}");
    }
}
