//! Regenerates every experiment in EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p safereg-bench --bin paper_harness            # everything
//! cargo run -p safereg-bench --bin paper_harness e1 e5 a2   # selected
//! ```

use safereg_bench::ablations;
use safereg_bench::audit as audit_harness;
use safereg_bench::chaos as chaos_scenario;
use safereg_bench::churn as churn_scenario;
use safereg_bench::experiments;
use safereg_bench::runtime as runtime_bench;
use safereg_bench::shard as shard_bench;
use safereg_bench::soak as soak_harness;
use safereg_bench::table;
use safereg_bench::trace as trace_bench;
use safereg_bench::wire as wire_bench;

/// The wire microbench counts heap allocations, so the harness runs under
/// the counting allocator (a pass-through over `System`).
#[global_allocator]
static COUNTING_ALLOC: wire_bench::CountingAlloc = wire_bench::CountingAlloc;

fn yes_no(b: bool) -> String {
    if b {
        "yes".into()
    } else {
        "NO".into()
    }
}

fn e1() {
    println!("== E1: resilience (paper: BSR n>=4f+1, BCSR n>=5f+1, RB n>=3f+1; all tight) ==");
    let rows: Vec<Vec<String>> = experiments::e1_resilience()
        .into_iter()
        .map(|r| {
            vec![
                r.protocol,
                r.n.to_string(),
                r.f.to_string(),
                r.verdict.into(),
                r.evidence,
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(&["protocol", "n", "f", "verdict", "evidence"], &rows)
    );
}

fn e2() {
    println!("== E2: round complexity (paper: BSR/BCSR reads 1 round, writes 2) ==");
    let rows: Vec<Vec<String>> = experiments::e2_rounds()
        .into_iter()
        .map(|r| {
            vec![
                r.protocol,
                format!(
                    "{}..{} (mean {:.2})",
                    r.read_rounds.0, r.read_rounds.1, r.read_rounds.2
                ),
                r.write_rounds.to_string(),
                yes_no(r.one_shot),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &["protocol", "read rounds", "write rounds", "one-shot"],
            &rows
        )
    );
}

fn e3() {
    println!("== E3: latency in hops (paper: RB writes pay ~1.5x BSR's write latency) ==");
    let rows: Vec<Vec<String>> = experiments::e3_latency()
        .into_iter()
        .map(|r| {
            vec![
                r.protocol,
                format!("{:.1}", r.write_hops),
                format!("{:.1}", r.read_hops),
                format!("{:.2}x", r.write_vs_bsr),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &["protocol", "write hops", "read hops", "write vs BSR"],
            &rows
        )
    );
}

fn e4() {
    println!("== E4: storage & write bandwidth, 16 KiB value, f=1 (paper: n vs n/k units) ==");
    let rows: Vec<Vec<String>> = experiments::e4_costs()
        .into_iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.k.to_string(),
                format!("{}", r.repl_storage),
                format!("{}", r.coded_storage),
                format!(
                    "{:.2}x",
                    r.repl_storage as f64 / r.coded_storage.max(1) as f64
                ),
                format!("{:.2}", r.n as f64 / r.theory_units),
                format!("{}", r.repl_write_bytes),
                format!("{}", r.coded_write_bytes),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "n",
                "k",
                "repl bytes",
                "coded bytes",
                "measured save",
                "theory k",
                "repl wire",
                "coded wire"
            ],
            &rows
        )
    );
}

fn replay_table(title: &str, rows: Vec<experiments::ReplayRow>) {
    println!("{title}");
    let rows: Vec<Vec<String>> = rows
        .into_iter()
        .map(|r| vec![r.name, yes_no(r.safe), yes_no(r.fresh), r.read_returned])
        .collect();
    println!(
        "{}",
        table::render(&["scenario", "safe", "fresh", "read returned"], &rows)
    );
}

fn e5() {
    replay_table(
        "== E5: Theorem 3 replay (paper: BSR is safe but NOT regular; the two fixes are) ==",
        experiments::e5_theorem3(),
    );
}

fn e6() {
    replay_table(
        "== E6: Theorem 5 replay (paper: one-shot replicated reads impossible at n = 4f) ==",
        experiments::e6_theorem5(),
    );
}

fn e7() {
    replay_table(
        "== E7: Theorem 6 replay (paper: one-shot coded reads impossible at n = 5f) ==",
        experiments::e7_theorem6(),
    );
}

fn e8() {
    println!("== E8: read-heavy workloads (paper motivation: TAO is ~99.8% reads) ==");
    let rows: Vec<Vec<String>> = experiments::e8_workloads()
        .into_iter()
        .map(|r| {
            vec![
                format!("{:.1}%", r.read_permille as f64 / 10.0),
                r.protocol,
                r.ops.to_string(),
                format!("{:.0}", r.read_latency),
                r.read_p99.to_string(),
                format!("{:.0}", r.write_latency),
                format!("{:.2}", r.throughput),
                format!("{:.0}", r.bytes_per_op),
                yes_no(r.safe),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "reads",
                "protocol",
                "ops",
                "read lat",
                "read p99",
                "write lat",
                "ops/ktick",
                "B/op",
                "safe"
            ],
            &rows
        )
    );
}

fn e9() {
    println!("== E9: liveness (paper Thm 1/4: live at <= f faults; starved beyond) ==");
    let rows: Vec<Vec<String>> = experiments::e9_liveness()
        .into_iter()
        .map(|r| {
            vec![
                r.protocol,
                r.silent.to_string(),
                format!("{}/{}", r.completed.0, r.completed.1),
                yes_no(r.as_expected),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(&["protocol", "silent", "completed", "as expected"], &rows)
    );
}

fn e10() {
    println!("== E10: write total order (paper Lemma 2) ==");
    let r = experiments::e10_write_order();
    let rows = vec![vec![
        r.runs.to_string(),
        r.writes.to_string(),
        r.duplicates.to_string(),
        r.inversions.to_string(),
    ]];
    println!(
        "{}",
        table::render(&["runs", "writes", "duplicate tags", "inversions"], &rows)
    );
}

fn e11() {
    println!("== E11: atomicity boundary (paper gives up atomicity for semi-fast ops) ==");
    let rows: Vec<Vec<String>> = experiments::e11_atomicity_boundary()
        .into_iter()
        .map(|r| {
            vec![
                r.protocol,
                yes_no(r.safe),
                yes_no(r.fresh),
                r.inversions.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(&["protocol", "safe", "fresh", "new/old inversions"], &rows)
    );
}

fn e12() {
    println!("== E12: regular-variant read bandwidth (1 KiB values; why SIII-C has two fixes) ==");
    let rows: Vec<Vec<String>> = experiments::e12_variant_bandwidth()
        .into_iter()
        .map(|r| {
            vec![
                r.history_len.to_string(),
                r.bsr_read_bytes.to_string(),
                r.bsrh_read_bytes.to_string(),
                r.bsrh_warm_read_bytes.to_string(),
                r.bsr2p_read_bytes.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "writes",
                "BSR read B",
                "BSR-H cold B",
                "BSR-H warm B",
                "BSR-2P read B"
            ],
            &rows
        )
    );
}

fn e13() {
    println!("== E13: semi-fast path accounting (paper SIII/SIV: reads are fast unless interfered with) ==");
    let rows: Vec<Vec<String>> = experiments::e13_fast_path()
        .into_iter()
        .map(|r| {
            vec![
                r.scenario.into(),
                r.protocol,
                r.fast.to_string(),
                r.slow.to_string(),
                r.ratio
                    .map_or_else(|| "-".into(), |x| format!("{:.1}%", x * 100.0)),
                r.validation_failures.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "scenario",
                "protocol",
                "fast reads",
                "slow reads",
                "fast ratio",
                "validation fails"
            ],
            &rows
        )
    );
}

fn metrics() {
    println!("== metrics: full registry dump of the contended E13 run (line-oriented JSON) ==");
    print!("{}", experiments::e13_metrics_dump());
}

fn a1() {
    println!("== A1: witness threshold (paper rule: f+1 = 2) ==");
    let rows: Vec<Vec<String>> = ablations::a1_witness_threshold()
        .into_iter()
        .map(|r| {
            vec![
                r.threshold.to_string(),
                r.returned,
                yes_no(r.safe),
                yes_no(r.fresh),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(&["threshold", "read returned", "safe", "fresh"], &rows)
    );
}

fn a2() {
    println!("== A2: get-tag selection (paper rule: (f+1)-th highest) ==");
    let rows: Vec<Vec<String>> = ablations::a2_tag_selection()
        .into_iter()
        .map(|r| {
            vec![
                r.selection.into(),
                r.final_tag_num.to_string(),
                yes_no(r.inflated),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(&["selection", "tag.num after 3 writes", "inflated"], &rows)
    );
}

fn a3() {
    println!("== A3: BCSR decode strategy (DESIGN.md: erasure-marking) ==");
    let rows: Vec<Vec<String>> = ablations::a3_decode_strategy()
        .into_iter()
        .map(|r| vec![r.strategy.into(), yes_no(r.recovered), r.returned])
        .collect();
    println!(
        "{}",
        table::render(
            &["strategy", "recovered fresh value", "read returned"],
            &rows
        )
    );
}

fn a4() {
    println!("== A4: history retention (Fig. 3 literal vs store-all) ==");
    let rows: Vec<Vec<String>> = ablations::a4_history_retention()
        .into_iter()
        .map(|r| vec![r.retention.into(), r.returned, yes_no(r.fresh)])
        .collect();
    println!(
        "{}",
        table::render(&["retention", "BSR-H read returned", "fresh"], &rows)
    );
}

fn a5() {
    println!("== A5: write fan-out (paper: put-data goes to all n; Lemma 7: >= 3f needed) ==");
    let rows: Vec<Vec<String>> = ablations::a5_write_fanout()
        .into_iter()
        .map(|r| {
            vec![
                r.fanout.to_string(),
                format!("{}/{}", r.violations, r.trials),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(&["fan-out m", "unsafe schedules"], &rows)
    );
}

fn chaos() {
    println!("== chaos: self-healing TCP under a seeded adversary (sever + blackhole <= f) ==");
    let r = chaos_scenario::chaos_run(0xC4A0_5EED);
    let rows = vec![vec![
        format!("{:#x}", r.seed),
        format!("{}/{}", r.ops_completed, r.ops_attempted),
        r.reconnects.to_string(),
        r.breaker_transitions.to_string(),
        r.op_retries.to_string(),
        r.faults_injected.to_string(),
        yes_no(r.safe && r.order_violations == 0),
        yes_no(r.schedule_reproducible),
    ]];
    println!(
        "{}",
        table::render(
            &[
                "seed",
                "ops",
                "reconnects",
                "breaker flips",
                "op retries",
                "faults",
                "safe",
                "seed-stable"
            ],
            &rows
        )
    );
    if r.self_healing_ok() {
        println!("chaos: self-healing ok");
    } else {
        println!("chaos: FAILED ({r:?})");
        std::process::exit(1);
    }
}

fn wire() {
    println!("== wire: zero-copy wire path, BCSR write fan-out at n=11, f=2 ==");
    let r = wire_bench::run();
    let rows = vec![vec![
        format!("{}", r.n),
        format!("{}", r.f),
        format!("{} B", r.value_bytes),
        format!("{:.1}", r.old_allocs_per_write),
        format!("{:.1}", r.new_allocs_per_write),
        format!("{:.2}x", r.alloc_ratio),
        format!("{}", r.relay_frames),
        r.relay_bytes_copied.to_string(),
    ]];
    println!(
        "{}",
        table::render(
            &[
                "n",
                "f",
                "value",
                "old allocs/write",
                "new allocs/write",
                "ratio",
                "relay frames",
                "relay B copied"
            ],
            &rows
        )
    );
    if let Err(e) = std::fs::write("BENCH_wire.json", r.to_json()) {
        eprintln!("wire: could not write BENCH_wire.json: {e}");
    }
    println!(
        "wire: alloc ratio = {:.2}x (>= 2x required); relay bytes copied = {} (0 required)",
        r.alloc_ratio, r.relay_bytes_copied
    );
    println!(
        "wire: batch flushes = {}, max frames/flush = {} (ceiling {})",
        r.batch_samples, r.batch_max_frames, r.batch_ceiling
    );
    if r.ok() {
        println!("wire: ok");
    } else {
        println!("wire: FAILED ({r:?})");
        std::process::exit(1);
    }
}

fn trace() {
    println!("== trace: causal op tracing (determinism, slow-read attribution, violation dumps, overhead) ==");
    let r = trace_bench::trace_run(0x7AC3_5EED);
    let rows = vec![vec![
        format!("{:#x}", r.seed),
        format!("{}/{}", yes_no(r.sim_deterministic), r.sim_span_lines),
        format!("{}/{}", r.ops_completed, r.ops_attempted),
        r.slow_reads.to_string(),
        r.unattributed_slow.to_string(),
        r.violations_found.to_string(),
        r.violation_tree_spans.to_string(),
        format!("{}‰", r.overhead_off_permille),
    ]];
    println!(
        "{}",
        table::render(
            &[
                "seed",
                "sim stable/lines",
                "ops",
                "slow reads",
                "unattributed",
                "violations",
                "tree spans",
                "off overhead"
            ],
            &rows
        )
    );
    // One line per nonzero cause: the CI smoke greps these as proof that
    // every slow read of the fault-injected run carried a concrete label.
    for c in r.causes.iter().filter(|c| c.count > 0) {
        println!("trace: slow cause {} = {}", c.cause, c.count);
    }
    for p in r.phases.iter().filter(|p| p.count > 0) {
        println!(
            "trace: phase {} count = {}, p99 = {} us",
            p.phase, p.count, p.p99_us
        );
    }
    println!("trace: sample span {}", r.sim_first_line);
    println!(
        "trace: sim determinism = {} ({} span lines, {} with sampling off)",
        yes_no(r.sim_deterministic),
        r.sim_span_lines,
        r.sim_unsampled_lines
    );
    println!(
        "trace: overhead off = {} permille (< 50 required); sampling on = {} permille \
         ({:.0} vs {:.0} ops/sec in-memory)",
        r.overhead_off_permille, r.overhead_on_permille, r.ops_per_sec_on, r.ops_per_sec_off
    );
    if let Err(e) = std::fs::write("BENCH_trace.json", r.to_json()) {
        eprintln!("trace: could not write BENCH_trace.json: {e}");
    }
    if r.ok() {
        println!("trace: ok");
    } else {
        println!("trace: FAILED ({r:?})");
        std::process::exit(1);
    }
}

fn shard() {
    println!(
        "== shard: {{1, 4, 16}} register groups x {{uniform, zipf}} keys on one n=5 fleet, \
         plus s=64 with m={} of a {}-server fleet (m<n) ==",
        shard_bench::WIDE_M,
        shard_bench::WIDE_FLEET
    );
    let r = shard_bench::run();
    let rows: Vec<Vec<String>> = r
        .cells
        .iter()
        .map(|c| {
            vec![
                c.shards.to_string(),
                c.skew.into(),
                c.ops.to_string(),
                format!("{:.0}", c.ops_per_sec),
                format!("{} us", c.p99_micros),
                format!("{}..{}", c.sockets_min, c.sockets_max),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &["shards", "skew", "ops", "ops/sec", "p99", "sockets"],
            &rows
        )
    );
    println!(
        "shard: hottest shard under zipf at s=16 was g{} ({} ops)",
        r.hot_shard, r.hot_shard_ops
    );
    println!(
        "shard: sockets per client = {} (exactly the fleet required — n={} for m=n cells, \
         {} for the s=64 m<n leg — never s*n); monotone scaling = {}",
        yes_no(r.sockets_ok()),
        r.n,
        shard_bench::WIDE_FLEET,
        yes_no(r.monotone_ok())
    );
    if let Err(e) = std::fs::write("BENCH_shard.json", r.to_json()) {
        eprintln!("shard: could not write BENCH_shard.json: {e}");
    }
    if r.ok() {
        println!("shard: ok");
    } else {
        println!("shard: FAILED ({r:?})");
        std::process::exit(1);
    }
}

/// Parses `churn` flags and runs the scenario; exits nonzero on failure.
///
/// ```text
/// paper_harness churn [--ops 200] [--seed 0xC1124E] [--shards 2] [--keys 3]
///                     [--continuous] [--events 6]
/// ```
fn churn(flags: &[String]) -> ! {
    let mut cfg = churn_scenario::ChurnConfig::default();
    let mut i = 0;
    while i < flags.len() {
        let flag = flags[i].as_str();
        // Boolean flags take no value; handle them before the pair logic.
        if flag == "--continuous" {
            cfg.continuous = true;
            i += 1;
            continue;
        }
        let Some(value) = flags.get(i + 1) else {
            eprintln!("churn: {flag} needs a value");
            std::process::exit(2);
        };
        let parse = |what: &str| {
            value.parse::<u64>().unwrap_or_else(|_| {
                eprintln!("churn: {what} must be a number, got {value}");
                std::process::exit(2);
            })
        };
        match flag {
            "--ops" => cfg.ops_per_phase = parse("--ops"),
            "--seed" => cfg.seed = parse("--seed"),
            "--shards" => cfg.shards = parse("--shards") as u16,
            "--keys" => cfg.keys = parse("--keys") as usize,
            "--events" => cfg.events = parse("--events"),
            _ => {
                eprintln!("churn: unknown flag {flag}");
                std::process::exit(2);
            }
        }
        i += 2;
    }

    if cfg.continuous {
        println!(
            "== churn: seeded arrival/departure process ({} events) under a live \
             Fabricator, {} ops/phase, seed {} ==",
            cfg.events, cfg.ops_per_phase, cfg.seed
        );
    } else {
        println!(
            "== churn: add/remove/replace under a live Fabricator, {} ops/phase, seed {} ==",
            cfg.ops_per_phase, cfg.seed
        );
    }
    let r = churn_scenario::churn_run(&cfg);
    let rows: Vec<Vec<String>> = r
        .phases
        .iter()
        .map(|p| {
            vec![
                p.label.clone(),
                p.epoch.to_string(),
                p.ops.to_string(),
                p.failures.to_string(),
                format!("{:.0}", p.ops_per_sec),
                format!("{} us", p.p99_micros),
                p.adoptions.to_string(),
                p.stale_frames.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "phase",
                "epoch",
                "ops",
                "failures",
                "ops/sec",
                "p99",
                "adoptions",
                "stale frames"
            ],
            &rows
        )
    );
    println!(
        "churn: {} steps applied ({} mode, {} expected), final epoch {}, \
         {} keys transferred, byz = {}",
        r.steps, r.mode, r.expected_steps, r.final_epoch, r.transfer_keys, r.byz_role
    );
    println!(
        "churn: {}/{} ops completed, {} failures (0 required), violations = {} (0 required)",
        r.ops_completed,
        r.ops_attempted,
        r.failures,
        r.violations.len()
    );
    for v in &r.violations {
        println!("  violation: {v}");
    }
    println!(
        "churn: coded joiner rebuilt logical slot {} from m - f slices, digest match = {}",
        r.coded_joiner_logical,
        yes_no(r.coded_digest_ok)
    );
    if r.reconfig_slow_reads > 0 {
        println!(
            "churn: slow cause reconfig_transfer = {}",
            r.reconfig_slow_reads
        );
    }
    if let Err(e) = std::fs::write("BENCH_churn.json", r.to_json()) {
        eprintln!("churn: could not write BENCH_churn.json: {e}");
    }
    if r.ok() {
        println!("churn: ok");
        std::process::exit(0);
    }
    println!("churn: FAILED (rerun with --seed {} to replay)", r.seed);
    std::process::exit(1);
}

/// Parses `audit` flags and runs the accountability harness; exits
/// nonzero on failure.
///
/// ```text
/// paper_harness audit [--ops 64] [--seed 0xA0D17EED] [--keys 2]
/// ```
fn audit(flags: &[String]) -> ! {
    let mut cfg = audit_harness::AuditConfig::default();
    let mut i = 0;
    while i < flags.len() {
        let flag = flags[i].as_str();
        let Some(value) = flags.get(i + 1) else {
            eprintln!("audit: {flag} needs a value");
            std::process::exit(2);
        };
        let parse = |what: &str| {
            value.parse::<u64>().unwrap_or_else(|_| {
                eprintln!("audit: {what} must be a number, got {value}");
                std::process::exit(2);
            })
        };
        match flag {
            "--ops" => cfg.ops = parse("--ops"),
            "--seed" => cfg.seed = parse("--seed"),
            "--keys" => cfg.keys = parse("--keys") as usize,
            _ => {
                eprintln!("audit: unknown flag {flag}");
                std::process::exit(2);
            }
        }
        i += 2;
    }

    println!(
        "== audit: convict injected Fabricator/Equivocator from chained evidence, \
         acquit correct replicas under corruption; {} rounds/leg, seed {} ==",
        cfg.ops, cfg.seed
    );
    let r = audit_harness::audit_run(&cfg);
    let rows: Vec<Vec<String>> = r
        .legs
        .iter()
        .map(|l| {
            vec![
                l.label.into(),
                l.accused.map_or("-".into(), |s| format!("s{s}")),
                l.ops.to_string(),
                l.failures.to_string(),
                l.evidence.to_string(),
                l.verdict.clone(),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &["leg", "accused", "ops", "failures", "evidence", "verdict"],
            &rows
        )
    );
    for (s, c) in &r.convictions {
        println!("audit: convicted s{s} of {c}");
    }
    println!(
        "audit: convictions = {} (every injected fault), false_accusations {} (0 required), \
         {} evidence records",
        r.convictions.len(),
        r.false_accusations,
        r.evidence_total
    );
    println!(
        "audit: offline re-verification = {}; wire round-trip re-verification = {}",
        yes_no(r.offline_reverify_ok),
        yes_no(r.offline_roundtrip_ok)
    );
    println!(
        "audit: {} quarantined; evicted {:?} (epoch {} after); \
         post-eviction ops = {} ({} failures)",
        r.quarantines,
        r.evicted,
        r.epoch_after_eviction,
        r.post_eviction_ops,
        r.post_eviction_failures
    );
    println!(
        "audit: chaos leg convicted {} correct replicas (0 required); \
         max suspicion on a correct replica = {}",
        r.chaos_convictions, r.suspicion_correct_max
    );
    if let Err(e) = std::fs::write("BENCH_audit.json", r.to_json()) {
        eprintln!("audit: could not write BENCH_audit.json: {e}");
    }
    // Full metrics dump: the CI smoke greps this for the audit counters
    // (`kv.audit.evidence`, `kv.audit.convictions`, ...).
    println!(
        "{}",
        safereg_obs::render_jsonl(&safereg_obs::global().snapshot())
    );
    if r.ok() {
        println!("audit: ok");
        std::process::exit(0);
    }
    println!("audit: FAILED (rerun with --seed {} to replay)", r.seed);
    std::process::exit(1);
}

/// Parses `soak` flags and runs the harness; exits nonzero on failure.
///
/// ```text
/// paper_harness soak --ops 20000 --byz f --seed 7 [--epochs 5]
///                    [--writers 4] [--readers 4] [--keys 4] [--shards 4]
///                    [--minutes 10] [--continuous]
/// ```
fn soak(flags: &[String]) -> ! {
    let mut cfg = soak_harness::SoakConfig::default();
    let mut i = 0;
    while i < flags.len() {
        let flag = flags[i].as_str();
        // Boolean flags take no value; handle them before the pair logic.
        if flag == "--continuous" {
            cfg.continuous = true;
            i += 1;
            continue;
        }
        let Some(value) = flags.get(i + 1) else {
            eprintln!("soak: {flag} needs a value");
            std::process::exit(2);
        };
        let parse = |what: &str| {
            value.parse::<u64>().unwrap_or_else(|_| {
                eprintln!("soak: {what} must be a number, got {value}");
                std::process::exit(2);
            })
        };
        match flag {
            "--ops" => cfg.ops = parse("--ops"),
            // `--byz f` pins the count to the deployment's resilience
            // bound; a number is clamped to `f` by the harness anyway.
            "--byz" if value == "f" => cfg.byz = usize::MAX,
            "--byz" => cfg.byz = parse("--byz") as usize,
            "--seed" => cfg.seed = parse("--seed"),
            "--epochs" => cfg.epochs = parse("--epochs") as usize,
            "--writers" => cfg.writers = parse("--writers") as usize,
            "--readers" => cfg.readers = parse("--readers") as usize,
            "--keys" => cfg.keys = parse("--keys") as usize,
            "--shards" => cfg.shards = parse("--shards") as u16,
            "--minutes" => cfg.minutes = parse("--minutes"),
            _ => {
                eprintln!("soak: unknown flag {flag}");
                std::process::exit(2);
            }
        }
        i += 2;
    }

    println!(
        "== soak: {} ops, {} writers + {} readers, {} epochs, seed {} ==",
        cfg.ops, cfg.writers, cfg.readers, cfg.epochs, cfg.seed
    );
    let r = soak_harness::soak_run(&cfg);
    let rows: Vec<Vec<String>> = r
        .epochs
        .iter()
        .map(|s| {
            vec![
                s.epoch.to_string(),
                s.byz
                    .iter()
                    .map(|(sid, label)| format!("{}={label}", sid.0))
                    .collect::<Vec<_>>()
                    .join(","),
                s.ops_completed.to_string(),
                s.failures.to_string(),
                format!("{} ms", s.millis),
                format!("{} KiB", s.rss_kib),
                s.evictions.to_string(),
                s.restarts.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "epoch",
                "byzantine",
                "ops",
                "failures",
                "wall",
                "rss",
                "evictions",
                "restarts"
            ],
            &rows
        )
    );
    println!(
        "soak: {}/{} ops completed, {} failures, {} reads checked, \
         peak window {} records, {} pruned",
        r.ops_completed, r.ops_attempted, r.failures, r.reads_checked, r.peak_window, r.pruned
    );
    // Sharded runs: one line per register group so smoke tests can grep
    // each shard's health without parsing the JSON report.
    for s in &r.shard_stats {
        println!(
            "soak: shard g{} ops = {}, fast_ratio = {:.3}",
            s.shard,
            s.ops,
            s.fast_ratio_permille as f64 / 1000.0
        );
    }
    if r.continuous {
        println!(
            "soak: continuous churn applied {} membership events",
            r.reconfig_events
        );
    }
    println!(
        "soak: violations = {} (0 required); rss bounded = {}; progressed = {}; \
         schedule reproducible = {}",
        r.violations.len(),
        yes_no(r.rss_bounded),
        yes_no(r.progressed),
        yes_no(r.schedule_reproducible)
    );
    for v in &r.violations {
        println!("  violation: {v}");
    }
    if let Err(e) = std::fs::write("BENCH_soak.json", r.to_json()) {
        eprintln!("soak: could not write BENCH_soak.json: {e}");
    }
    // Full metrics dump: the CI smoke greps this for the degradation
    // counters (`server.evictions`, `transport.batch.frames`).
    println!(
        "{}",
        safereg_obs::render_jsonl(&safereg_obs::global().snapshot())
    );
    if r.ok() {
        if r.shards > 1 {
            println!("shard: ok");
        }
        println!("soak: ok");
        std::process::exit(0);
    }
    println!("soak: FAILED (rerun with --seed {} to replay)", r.seed);
    std::process::exit(1);
}

/// Parses `runtime` flags and runs the saturation ladder; exits nonzero
/// on failure.
///
/// ```text
/// paper_harness runtime [--conns 1000,10000,50000] [--rate 2000]
///                       [--secs 6] [--reactors 2] [--quick]
/// ```
fn runtime(flags: &[String]) -> ! {
    let mut cfg = runtime_bench::RuntimeConfig::default();
    let mut i = 0;
    while i < flags.len() {
        let flag = flags[i].as_str();
        if flag == "--quick" {
            cfg = runtime_bench::RuntimeConfig::quick();
            i += 1;
            continue;
        }
        let Some(value) = flags.get(i + 1) else {
            eprintln!("runtime: {flag} needs a value");
            std::process::exit(2);
        };
        let parse = |what: &str| {
            value.parse::<u64>().unwrap_or_else(|_| {
                eprintln!("runtime: {what} must be a number, got {value}");
                std::process::exit(2);
            })
        };
        match flag {
            "--conns" => {
                cfg.rungs = value
                    .split(',')
                    .map(|v| {
                        v.parse::<usize>().unwrap_or_else(|_| {
                            eprintln!("runtime: --conns wants a comma list, got {value}");
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            "--rate" => cfg.rate = parse("--rate"),
            "--secs" => cfg.secs = parse("--secs"),
            "--reactors" => cfg.reactors = parse("--reactors") as usize,
            "--threaded-max" => cfg.threaded_max = parse("--threaded-max") as usize,
            _ => {
                eprintln!("runtime: unknown flag {flag}");
                std::process::exit(2);
            }
        }
        i += 2;
    }

    println!(
        "== runtime: latency under load, reactor vs thread-per-connection, rungs {:?} ==",
        cfg.rungs
    );
    let r = runtime_bench::runtime_run(&cfg);
    let rows: Vec<Vec<String>> = r
        .runs
        .iter()
        .map(|s| {
            vec![
                s.runtime.clone(),
                format!("{}/{}", s.achieved_conns, s.requested_conns),
                s.sent.to_string(),
                s.received.to_string(),
                format!("{:.0}", s.ops_per_sec),
                format!("{} us", s.p50_micros),
                format!("{} us", s.p99_micros),
                s.threads_peak.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "runtime",
                "conns (got/asked)",
                "sent",
                "received",
                "ops/sec",
                "p50",
                "p99",
                "threads"
            ],
            &rows
        )
    );
    for f in &r.failures {
        println!("runtime: check failed: {f}");
    }
    if let Err(e) = std::fs::write("BENCH_runtime.json", r.to_json()) {
        eprintln!("runtime: could not write BENCH_runtime.json: {e}");
    }
    // Full metrics dump: the CI smoke greps this for the reactor gauges
    // and counters (`reactor.threads`, `reactor.events`, ...).
    println!(
        "{}",
        safereg_obs::render_jsonl(&safereg_obs::global().snapshot())
    );
    if r.ok() {
        println!("runtime: ok");
        std::process::exit(0);
    }
    println!("runtime: FAILED");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The hidden load-generator child (spawned by `runtime`): not part of
    // the experiment list on purpose.
    if args.first().map(String::as_str) == Some("runtime-loadgen") {
        runtime_bench::loadgen_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("runtime") {
        runtime(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("soak") {
        soak(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("churn") {
        churn(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("audit") {
        audit(&args[1..]);
    }
    let all: Vec<(&str, fn())> = vec![
        ("e1", e1),
        ("e2", e2),
        ("e3", e3),
        ("e4", e4),
        ("e5", e5),
        ("e6", e6),
        ("e7", e7),
        ("e8", e8),
        ("e9", e9),
        ("e10", e10),
        ("e11", e11),
        ("e12", e12),
        ("e13", e13),
        ("chaos", chaos),
        ("wire", wire),
        ("shard", shard),
        ("trace", trace),
        ("metrics", metrics),
        ("a1", a1),
        ("a2", a2),
        ("a3", a3),
        ("a4", a4),
        ("a5", a5),
    ];
    let selected: Vec<&(&str, fn())> = if args.is_empty() {
        all.iter().collect()
    } else {
        all.iter()
            .filter(|(name, _)| args.iter().any(|a| a == name))
            .collect()
    };
    if selected.is_empty() {
        eprintln!(
            "unknown experiment; available: e1..e13, a1..a5, chaos, wire, shard, trace, \
             metrics, soak, churn, audit, runtime"
        );
        std::process::exit(2);
    }
    for (_, run) in selected {
        run();
        println!();
    }
}
