//! Self-healing chaos scenario: the real TCP stack under a seeded
//! adversary.
//!
//! A loopback register cluster is wrapped in
//! [`safereg_transport::chaos::ChaosNet`] proxies driven by a seeded
//! [`FaultPlan`] (frames dropped, delayed, corrupted, truncated,
//! connections killed), while the run also severs and blackholes up to
//! `f` servers mid-workload. The client's link supervisors, retry slices
//! and circuit breakers must mask all of it: every operation completes,
//! the recorded history passes the checker's safety predicates, and the
//! metrics dump shows the healing actually happened (nonzero reconnects
//! and breaker transitions). The same seed always yields the same fault
//! schedule — asserted via [`FaultPlan::fingerprint`].

use safereg_checker::CheckSummary;
use safereg_common::config::{QuorumConfig, TransportConfig};
use safereg_common::history::History;
use safereg_common::ids::{ReaderId, ServerId, WriterId};
use safereg_common::value::Value;
use safereg_core::client::{BsrReader, BsrWriter};
use safereg_core::op::ClientOp;
use safereg_obs::names;
use safereg_obs::trace::wall_micros;
use safereg_transport::chaos::{ChaosNet, Direction, FaultPlan, FaultSpec};
use safereg_transport::client::ClusterClient;
use safereg_transport::cluster::LocalCluster;

/// Outcome of one seeded chaos run.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The adversary seed.
    pub seed: u64,
    /// Operations attempted (writes + reads).
    pub ops_attempted: usize,
    /// Operations that completed (possibly after client-level retries).
    pub ops_completed: usize,
    /// Link reconnections performed by the supervisors during the run.
    pub reconnects: u64,
    /// Circuit-breaker state changes during the run.
    pub breaker_transitions: u64,
    /// In-operation envelope resends during the run.
    pub op_retries: u64,
    /// Frames the proxies forwarded untouched.
    pub frames_forwarded: u64,
    /// Frames the proxies faulted (dropped/delayed/corrupted/truncated)
    /// plus connections killed at a frame boundary.
    pub faults_injected: u64,
    /// Every completed op passed the checker's safety predicates.
    pub safe: bool,
    /// Write-order violations found by the checker.
    pub order_violations: usize,
    /// Rebuilding the plan from the same seed reproduced the identical
    /// fault schedule bytes.
    pub schedule_reproducible: bool,
}

impl ChaosReport {
    /// The acceptance predicate the CI smoke run greps for.
    pub fn self_healing_ok(&self) -> bool {
        self.ops_completed == self.ops_attempted
            && self.safe
            && self.order_violations == 0
            && self.reconnects > 0
            && self.breaker_transitions > 0
            && self.schedule_reproducible
    }
}

const FAULT_KINDS: [&str; 5] = ["dropped", "delayed", "corrupted", "truncated", "killed"];

fn chaos_fault_total() -> u64 {
    let reg = safereg_obs::global();
    FAULT_KINDS
        .iter()
        .map(|k| {
            reg.counter(&format!("{}.{k}", names::CHAOS_FAULT_PREFIX))
                .get()
        })
        .sum()
}

/// Runs the scenario: 24 alternating write/read operations against an
/// `n = 5, f = 1` BSR cluster behind mildly hostile chaos proxies, with
/// one server severed and one blackholed-and-restored mid-run (never more
/// than `f = 1` down at once).
///
/// # Panics
///
/// Panics when the cluster cannot be started or a client cannot connect —
/// environment failures, not scenario outcomes.
pub fn chaos_run(seed: u64) -> ChaosReport {
    let reg = safereg_obs::global();
    let reconnects_before = reg.counter(names::TRANSPORT_RECONNECTS).get();
    let transitions_before = reg.counter(names::TRANSPORT_BREAKER_TRANSITIONS).get();
    let retries_before = reg.counter(names::TRANSPORT_OP_RETRIES).get();
    let forwarded_before = reg.counter(names::CHAOS_FORWARDED).get();
    let faults_before = chaos_fault_total();

    let cfg = QuorumConfig::minimal_bsr(1).expect("n = 5, f = 1 is valid");
    let cluster = LocalCluster::start(cfg, b"chaos-bench").expect("start cluster");
    let plan = FaultPlan::new(seed, FaultSpec::mild());
    let net = ChaosNet::wrap(&cluster.addrs(), &plan).expect("start chaos proxies");

    let config = TransportConfig::aggressive();
    let mut wc = ClusterClient::connect_with(
        WriterId(0).into(),
        &net.addrs(),
        cluster.chain().clone(),
        config,
    )
    .expect("writer connects through proxies");
    let mut rc = ClusterClient::connect_with(
        ReaderId(0).into(),
        &net.addrs(),
        cluster.chain().clone(),
        config,
    )
    .expect("reader connects through proxies");

    let mut writer = BsrWriter::new(WriterId(0), cfg);
    let mut reader = BsrReader::new(ReaderId(0), cfg);
    let mut history = History::new();

    let rounds = 12usize;
    let mut attempted = 0usize;
    let mut completed = 0usize;
    for i in 0..rounds {
        // Fault timeline, never more than f = 1 server down at once:
        // round 2 severs s1 (live connections die, supervisors reconnect);
        // round 4 blackholes s2 (breakers trip Open); round 8 restores it.
        match i {
            2 => net.sever(ServerId(1)),
            4 => {
                net.set_blackhole(ServerId(2), true);
                // Give the supervisors a couple of failed sessions so the
                // breaker actually trips before the workload moves on.
                std::thread::sleep(std::time::Duration::from_millis(300));
            }
            8 => net.set_blackhole(ServerId(2), false),
            _ => {}
        }

        attempted += 1;
        let value = Value::from(format!("chaos-{seed}-{i}").into_bytes());
        let mut op = writer.write(value.clone());
        let h = history.begin_write(op.op_id(), value.clone(), wall_micros());
        let mut done = false;
        for _ in 0..3 {
            match wc.run_op(&mut op) {
                Ok(out) => {
                    history.complete_write(h, out.tag(), wall_micros());
                    done = true;
                    break;
                }
                Err(e) if e.is_retriable() => {
                    op = writer.write(value.clone());
                }
                Err(_) => break,
            }
        }
        if done {
            completed += 1;
        }

        attempted += 1;
        let mut op = reader.read();
        let h = history.begin_read(op.op_id(), wall_micros());
        for _ in 0..3 {
            match rc.run_op(&mut op) {
                Ok(out) => {
                    let value = out.read_value().expect("read yields a value").clone();
                    history.complete_read(h, value, out.tag(), wall_micros());
                    completed += 1;
                    break;
                }
                Err(e) if e.is_retriable() => {
                    op = reader.read();
                }
                Err(_) => break,
            }
        }
    }

    let summary = CheckSummary::check_all(&history);
    let dir = Direction::ClientToServer;
    let rebuilt = FaultPlan::new(seed, FaultSpec::mild());
    let schedule_reproducible = (0..cfg.n() as u16).all(|s| {
        plan.fingerprint(ServerId(s), 0, dir, 128) == rebuilt.fingerprint(ServerId(s), 0, dir, 128)
            && plan.fingerprint(ServerId(s), 1, Direction::ServerToClient, 128)
                == rebuilt.fingerprint(ServerId(s), 1, Direction::ServerToClient, 128)
    });

    ChaosReport {
        seed,
        ops_attempted: attempted,
        ops_completed: completed,
        reconnects: reg.counter(names::TRANSPORT_RECONNECTS).get() - reconnects_before,
        breaker_transitions: reg.counter(names::TRANSPORT_BREAKER_TRANSITIONS).get()
            - transitions_before,
        op_retries: reg.counter(names::TRANSPORT_OP_RETRIES).get() - retries_before,
        frames_forwarded: reg.counter(names::CHAOS_FORWARDED).get() - forwarded_before,
        faults_injected: chaos_fault_total() - faults_before,
        safe: summary.is_safe(),
        order_violations: summary.order.len(),
        schedule_reproducible,
    }
}
