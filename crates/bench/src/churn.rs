//! Churn scenario: rolling reconfiguration under a live Byzantine replica.
//!
//! The epoch machinery ([`EpochConfig`](safereg_common::epoch::EpochConfig),
//! `WrongEpoch` redirects, cross-epoch state transfer) exists so membership
//! can change *while the register keeps serving*. This scenario proves it
//! on the live TCP stack, in the worst company the deployment tolerates:
//!
//! * a two-shard replicated cluster performs one **add**, one **remove**
//!   and one **replace** — three epoch bumps, each a single-replica step
//!   as the quorum-intersection argument demands (DESIGN.md §11) — or,
//!   in `--continuous` mode, a seeded [`DetRng`] arrival/departure
//!   process: joiners arrive under fresh ids and only joiners depart or
//!   get swapped, so base members (the Fabricator included) stay and
//!   live faults never exceed `f` per shard, with inter-arrival gaps
//!   drawn in operations so the schedule replays from the seed;
//! * a **Fabricator** plays its role on a surviving replica throughout —
//!   the joiner arrives, the leaver drains, and clients adopt successor
//!   configs all while one replica forges tags (the role is re-asserted
//!   after every step, since a re-placed group restarts honest);
//! * one client drives a put/get workload across every boundary, judged
//!   online by a [`WindowedChecker`] per key — the verdict must stay
//!   clean and every operation must terminate (bounded retries, zero
//!   abandoned ops);
//! * throughput and p99 latency are sampled **before**, **during** and
//!   **after** each step, so `BENCH_churn.json` records what an epoch
//!   change costs the workload;
//! * a separate coded (`n = 5f + 3`, BCSR) leg replaces the
//!   smallest-id replica — relabeling every survivor's logical slot —
//!   and asserts by digest that the joiner's fragment was rebuilt by
//!   decoding `m − f` old slices and re-encoding its own, again with a
//!   Fabricator answering the transfer reads.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use safereg_checker::{Violation, WindowedChecker};
use safereg_common::config::{BackoffPolicy, QuorumConfig, TransportConfig};
use safereg_common::ids::{ReaderId, ServerId, WriterId};
use safereg_common::msg::{OpId, Payload};
use safereg_common::rng::DetRng;
use safereg_common::shard::ShardMap;
use safereg_common::value::Value;
use safereg_core::behavior::ByzRole;
use safereg_kv::{entry_digest, KvClient, KvMode, TcpKvCluster, TcpKvTransport};
use safereg_mds::rs::ReedSolomon;
use safereg_mds::stripe::encode_value;
use safereg_obs::names;
use safereg_transport::chaos::{FaultPlan, FaultSpec};

/// Knobs for one churn run.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Master seed: Byzantine forgery streams, the shard placement, and
    /// (in continuous mode) the arrival/departure process.
    pub seed: u64,
    /// Operations per measured before/after phase (the during phase runs
    /// as many as fit while the reconfiguration is in flight).
    pub ops_per_phase: u64,
    /// Register-group shards for the replicated leg.
    pub shards: u16,
    /// Distinct keys the workload cycles through.
    pub keys: usize,
    /// Continuous mode: instead of the fixed add/remove/replace ladder,
    /// [`ChurnConfig::events`] membership events are drawn from a seeded
    /// [`DetRng`] arrival/departure process — joiners arrive under fresh
    /// ids, only joiners ever depart (base members, including the live
    /// Fabricator, stay), so the per-shard fault count never exceeds `f`.
    /// Inter-arrival times are drawn in *operations*: each event's
    /// "before" phase length is a DetRng draw, so the schedule replays
    /// exactly from the seed.
    pub continuous: bool,
    /// Membership events in continuous mode (ignored by the ladder).
    pub events: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            seed: 0xC1_124E,
            ops_per_phase: 200,
            shards: 2,
            keys: 3,
            continuous: false,
            events: 6,
        }
    }
}

/// Workload measurement over one phase of one reconfiguration step.
#[derive(Debug, Clone)]
pub struct PhaseStat {
    /// `"add:before"`, `"add:during"`, `"add:after"`, `"remove:…"`, …
    pub label: String,
    /// Cluster epoch when the phase ended.
    pub epoch: u32,
    /// Operations completed in the phase.
    pub ops: u64,
    /// Operations abandoned in the phase (retry budget exhausted).
    pub failures: u64,
    /// Completed operations per wall-clock second.
    pub ops_per_sec: f64,
    /// 99th-percentile op latency in microseconds.
    pub p99_micros: u64,
    /// `kv.epoch.adoptions` delta over the phase: clients that switched
    /// membership mid-operation on `f + 1` matching redirect votes.
    pub adoptions: u64,
    /// `kv.epoch.stale_frames` delta: frames servers bounced.
    pub stale_frames: u64,
}

/// Outcome of one churn run.
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// The master seed.
    pub seed: u64,
    /// `"ladder"` or `"continuous"`.
    pub mode: &'static str,
    /// Reconfiguration steps the run scheduled (3 for the ladder,
    /// [`ChurnConfig::events`] in continuous mode).
    pub expected_steps: u32,
    /// Reconfiguration steps that applied cleanly.
    pub steps: u32,
    /// Cluster epoch after the last step (one bump per applied step).
    pub final_epoch: u32,
    /// The Byzantine role live through every step.
    pub byz_role: &'static str,
    /// Before/during/after measurements, three per step.
    pub phases: Vec<PhaseStat>,
    /// Per-key safety violations found by the windowed checkers.
    pub violations: Vec<Violation>,
    /// Operations attempted across all phases.
    pub ops_attempted: u64,
    /// Operations completed across all phases.
    pub ops_completed: u64,
    /// Operations abandoned across all phases — 0 required: every op
    /// must terminate, through redirects, transfer and forged tags.
    pub failures: u64,
    /// `kv.reconfig.transfer.keys` delta: entries state-transferred.
    pub transfer_keys: u64,
    /// `kv.read.slow_cause.reconfig_transfer` delta: slow reads the span
    /// layer attributed to an epoch adoption mid-read.
    pub reconfig_slow_reads: u64,
    /// Coded leg: the joiner's stored fragment matched the digest of the
    /// slice its logical slot demands, re-encoded from the decoded value.
    pub coded_digest_ok: bool,
    /// Coded leg: the logical slot the joiner rebuilt.
    pub coded_joiner_logical: u16,
}

impl ChurnReport {
    /// The acceptance predicate `scripts/ci.sh` greps for: every
    /// scheduled step applied, zero checker violations, zero abandoned
    /// ops, every phase made progress, and the coded joiner rebuilt its
    /// fragment.
    pub fn ok(&self) -> bool {
        self.steps == self.expected_steps
            && self.final_epoch == self.expected_steps
            && self.violations.is_empty()
            && self.failures == 0
            && self.phases.iter().all(|p| p.ops > 0)
            && self.coded_digest_ok
    }

    /// Line-oriented JSON for `BENCH_churn.json`.
    pub fn to_json(&self) -> String {
        let phases: Vec<String> = self
            .phases
            .iter()
            .map(|p| {
                format!(
                    concat!(
                        "{{\"label\":\"{}\",\"epoch\":{},\"ops\":{},\"failures\":{},",
                        "\"ops_per_sec\":{:.1},\"p99_micros\":{},\"adoptions\":{},",
                        "\"stale_frames\":{}}}"
                    ),
                    p.label,
                    p.epoch,
                    p.ops,
                    p.failures,
                    p.ops_per_sec,
                    p.p99_micros,
                    p.adoptions,
                    p.stale_frames
                )
            })
            .collect();
        format!(
            concat!(
                "{{\"seed\":{},\"mode\":\"{}\",\"expected_steps\":{},",
                "\"steps\":{},\"final_epoch\":{},\"byz_role\":\"{}\",",
                "\"phases\":[{}],\"violations\":{},\"ops_attempted\":{},",
                "\"ops_completed\":{},\"failures\":{},\"transfer_keys\":{},",
                "\"reconfig_slow_reads\":{},\"coded_digest_ok\":{},",
                "\"coded_joiner_logical\":{},\"ok\":{}}}\n"
            ),
            self.seed,
            self.mode,
            self.expected_steps,
            self.steps,
            self.final_epoch,
            self.byz_role,
            phases.join(","),
            self.violations.len(),
            self.ops_attempted,
            self.ops_completed,
            self.failures,
            self.transfer_keys,
            self.reconfig_slow_reads,
            self.coded_digest_ok,
            self.coded_joiner_logical,
            self.ok()
        )
    }
}

/// Retries per logical operation; each retry is a fresh protocol op, the
/// checker keeps judging the one logical op. Generous because an op can
/// land in the middle of a flip *and* meet a Fabricator on the same
/// quorum — it must still terminate.
const OP_RETRIES: usize = 8;

/// The replica that plays the Fabricator: it survives the add, the remove
/// and the replace, so the role overlaps every epoch change.
const FABRICATOR: ServerId = ServerId(3);

/// Transport policy for the churn workload: short I/O timeouts keep the
/// retire window cheap (a drained leaver's dead socket costs one timeout,
/// not the default several seconds), and one in-op retry pass heals the
/// requeued envelopes a `WrongEpoch` redirect leaves behind.
fn churn_transport() -> TransportConfig {
    TransportConfig {
        connect_timeout: Duration::from_millis(250),
        op_deadline: Duration::from_secs(3),
        io_timeout: Duration::from_millis(50),
        retry_budget: 1,
        backoff: BackoffPolicy {
            base: Duration::from_millis(20),
            cap: Duration::from_millis(500),
            jitter_permille: 200,
        },
        ..TransportConfig::aggressive()
    }
}

/// Mutable workload state threaded through every phase.
struct Workload {
    client: KvClient,
    transport: TcpKvTransport,
    keys: Vec<Vec<u8>>,
    checkers: Vec<WindowedChecker>,
    /// Logical clock for checker instants.
    clock: u64,
    /// Next OpId sequence per identity (writes, reads).
    seq: (u64, u64),
    attempted: u64,
    completed: u64,
    failures: u64,
}

impl Workload {
    /// One terminated logical operation (alternating put/get by `i`),
    /// judged by the key's checker. Returns the op latency in micros.
    fn one_op(&mut self, i: u64) -> u64 {
        let kidx = (i as usize) % self.keys.len();
        self.attempted += 1;
        let started = Instant::now();
        if i.is_multiple_of(2) {
            self.seq.0 += 1;
            let value = format!("churn:w{}", self.seq.0);
            let op = OpId::new(WriterId(1), self.seq.0);
            self.clock += 1;
            let h = self.checkers[kidx].begin_write(
                op,
                Value::from(value.clone().into_bytes()),
                self.clock,
            );
            let mut tag = None;
            for attempt in 0..OP_RETRIES {
                match self.client.put(
                    &mut self.transport,
                    &self.keys[kidx],
                    value.clone().into_bytes(),
                ) {
                    Ok(t) => {
                        tag = Some(t);
                        break;
                    }
                    Err(_) if attempt + 1 < OP_RETRIES => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => {}
                }
            }
            self.clock += 1;
            match tag {
                Some(t) => {
                    self.checkers[kidx].complete_write(h, t, self.clock);
                    self.completed += 1;
                }
                None => {
                    self.checkers[kidx].abandon(h);
                    self.failures += 1;
                }
            }
        } else {
            self.seq.1 += 1;
            let op = OpId::new(ReaderId(1), self.seq.1);
            self.clock += 1;
            let h = self.checkers[kidx].begin_read(op, self.clock);
            let mut out = None;
            for attempt in 0..OP_RETRIES {
                match self
                    .client
                    .get_with_tag(&mut self.transport, &self.keys[kidx])
                {
                    Ok(vt) => {
                        out = Some(vt);
                        break;
                    }
                    Err(_) if attempt + 1 < OP_RETRIES => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => {}
                }
            }
            self.clock += 1;
            match out {
                Some((v, t)) => {
                    self.checkers[kidx].complete_read(h, v, t, self.clock);
                    self.completed += 1;
                }
                None => {
                    self.checkers[kidx].abandon(h);
                    self.failures += 1;
                }
            }
        }
        if i % 32 == 31 {
            self.checkers[kidx].prune();
        }
        started.elapsed().as_micros() as u64
    }

    /// Drives ops until `count` is reached or `stop` flips (at least one
    /// op either way) and folds the window into a [`PhaseStat`].
    fn run_phase(
        &mut self,
        label: &str,
        epoch_after: u32,
        count: u64,
        stop: Option<&AtomicBool>,
    ) -> PhaseStat {
        let reg = safereg_obs::global();
        let adoptions0 = reg.counter(names::KV_EPOCH_ADOPTIONS).get();
        let stale0 = reg.counter(names::KV_EPOCH_STALE_FRAMES).get();
        let completed0 = self.completed;
        let failures0 = self.failures;
        let started = Instant::now();
        let mut latencies = Vec::new();
        let mut i = 0u64;
        loop {
            latencies.push(self.one_op(i));
            i += 1;
            let done = match stop {
                Some(flag) => flag.load(Ordering::Acquire) || i >= count,
                None => i >= count,
            };
            if done {
                break;
            }
        }
        let elapsed = started.elapsed().as_secs_f64().max(1e-9);
        latencies.sort_unstable();
        let p99 = latencies[((latencies.len() * 99) / 100).min(latencies.len() - 1)];
        let ops = self.completed - completed0;
        PhaseStat {
            label: label.into(),
            epoch: epoch_after,
            ops,
            failures: self.failures - failures0,
            ops_per_sec: ops as f64 / elapsed,
            p99_micros: p99,
            adoptions: reg.counter(names::KV_EPOCH_ADOPTIONS).get() - adoptions0,
            stale_frames: reg.counter(names::KV_EPOCH_STALE_FRAMES).get() - stale0,
        }
    }
}

/// Re-asserts the Fabricator role on every shard the victim serves — a
/// reconfiguration step restarts re-placed groups honest, and the point
/// of the scenario is a forger that stays live across every step.
fn assert_fabricator(cluster: &TcpKvCluster, seed: u64) {
    for g in cluster.map().shards_of_server(FABRICATOR) {
        cluster.set_shard_role(FABRICATOR, g, ByzRole::Fabricator, seed ^ u64::from(g.0));
    }
}

/// Coded leg: a BCSR cluster (`n = 8, f = 1, k = 3`) replaces its
/// smallest-id replica, which relabels every survivor's logical slot.
/// Returns whether the joiner's stored fragment equals the digest of the
/// slice its new slot demands (re-encoded from the decoded value) and
/// the slot index it rebuilt.
fn coded_fragment_check(seed: u64) -> (bool, u16) {
    let q = QuorumConfig::new(8, 1).expect("n = 8, f = 1 is a valid BCSR point");
    let mut cluster = match TcpKvCluster::builder(KvMode::Coded, b"churn-coded")
        .quorum(q)
        .start()
    {
        Ok(c) => c,
        Err(_) => return (false, 0),
    };
    let mut transport = cluster.transport();
    let mut client = KvClient::new_coded(q, WriterId(40), ReaderId(40));
    let blob: Vec<u8> = (0..4096u64)
        .map(|i| (i.wrapping_mul(31) ^ seed) as u8)
        .collect();
    if client.put(&mut transport, b"fragment", blob).is_err() {
        return (false, 0);
    }
    // The forger answers the transfer's decode reads too.
    let _ = cluster.set_role(ServerId(2), KvMode::Coded, ByzRole::Fabricator, seed);
    let Ok((value, tag)) = client.get_with_tag(&mut transport, b"fragment") else {
        return (false, 0);
    };
    if cluster.replace_replica(ServerId(0), ServerId(9)).is_err() {
        return (false, 0);
    }
    let g = cluster.map().shard_of(b"fragment");
    let Some(logical) = cluster.map().logical_of(g, ServerId(9)) else {
        return (false, 0);
    };
    let code = ReedSolomon::new(q.n(), q.mds_k().expect("coded point")).expect("valid code");
    let elems = encode_value(&code, &value);
    let expected = entry_digest(&tag, &Payload::Coded(elems[logical.0 as usize].clone()));
    (
        cluster.payload_digest(ServerId(9), g, b"fragment") == Some(expected),
        logical.0,
    )
}

/// Runs the churn scenario: single-replica reconfiguration steps (the
/// fixed add/remove/replace ladder, or a seeded arrival/departure
/// process in [continuous](ChurnConfig::continuous) mode) on a live
/// two-shard replicated cluster with a Fabricator active throughout,
/// then the coded fragment-rebuild check.
///
/// # Panics
///
/// Panics when the cluster cannot be started — an environment failure,
/// not a churn outcome.
#[allow(clippy::too_many_lines)]
pub fn churn_run(cfg: &ChurnConfig) -> ChurnReport {
    let q = QuorumConfig::minimal_bsr(1).expect("n = 5, f = 1 is valid");
    let tconfig = churn_transport();
    let map = ShardMap::new(cfg.seed, cfg.shards.max(1), q.servers().collect(), q)
        .expect("m = n fits the fleet");

    let reg = safereg_obs::global();
    let transfer0 = reg.counter(names::KV_TRANSFER_KEYS).get();
    let slow0 = reg
        .counter(&names::slow_cause_counter("reconfig_transfer"))
        .get();

    // Calm chaos proxies front every replica: mild jitter without drops,
    // so each epoch step crosses a perturbed (but live) network.
    let cluster = TcpKvCluster::builder(KvMode::Replicated, b"churn-harness")
        .shards(map.clone())
        .config(tconfig)
        .chaos(FaultPlan::new(cfg.seed, FaultSpec::calm()))
        .start()
        .expect("start churn cluster");
    assert_fabricator(&cluster, cfg.seed);
    let cluster = Mutex::new(cluster);

    let mut wl = Workload {
        client: KvClient::sharded(map.clone(), WriterId(1), ReaderId(1)),
        transport: cluster
            .lock()
            .expect("cluster lock")
            .transport_with(tconfig),
        keys: (0..cfg.keys.max(1))
            .map(|k| format!("churn-k{k}").into_bytes())
            .collect(),
        checkers: (0..cfg.keys.max(1))
            .map(|_| WindowedChecker::new())
            .collect(),
        clock: 0,
        seq: (0, 0),
        attempted: 0,
        completed: 0,
        failures: 0,
    };
    wl.client.set_policy(tconfig);

    // One step = (label, membership change, before-phase length). The
    // ladder is the fixed trio: the add targets a fresh id, the remove
    // drains an original member (never the Fabricator), the replace
    // swaps another for a joiner. Continuous mode draws the steps from a
    // seeded arrival/departure process instead: joiners arrive under
    // fresh ids and only joiners depart or get swapped — base members
    // (the Fabricator included) stay, so live faults never exceed `f`
    // per shard — with inter-arrival gaps drawn in operations.
    type Step = (
        String,
        Box<dyn FnOnce(&mut TcpKvCluster) -> std::io::Result<()> + Send>,
        u64,
    );
    let steps: Vec<Step> = if cfg.continuous {
        let mut rng = DetRng::seed_from(cfg.seed ^ 0xC027_17EE);
        let mut next_id = 100u16;
        let mut joiners: Vec<ServerId> = Vec::new();
        (0..cfg.events.max(1))
            .map(|i| {
                // Arrive when nobody can depart; cap the fleet at +2 so
                // departures stay available; otherwise draw uniformly.
                let kind = if joiners.is_empty() {
                    0
                } else if joiners.len() >= 2 {
                    1 + rng.index(2)
                } else {
                    rng.index(3)
                };
                let gap = cfg.ops_per_phase / 2 + rng.range_u64(1..cfg.ops_per_phase.max(2));
                match kind {
                    0 => {
                        let sid = ServerId(next_id);
                        next_id += 1;
                        joiners.push(sid);
                        (
                            format!("e{i}:arrival(s{})", sid.0),
                            Box::new(move |cl: &mut TcpKvCluster| cl.add_replica(sid)) as _,
                            gap,
                        )
                    }
                    1 => {
                        let sid = joiners.swap_remove(rng.index(joiners.len()));
                        (
                            format!("e{i}:departure(s{})", sid.0),
                            Box::new(move |cl: &mut TcpKvCluster| cl.remove_replica(sid)) as _,
                            gap,
                        )
                    }
                    _ => {
                        let idx = rng.index(joiners.len());
                        let old = joiners[idx];
                        let new = ServerId(next_id);
                        next_id += 1;
                        joiners[idx] = new;
                        (
                            format!("e{i}:swap(s{}->s{})", old.0, new.0),
                            Box::new(move |cl: &mut TcpKvCluster| cl.replace_replica(old, new))
                                as _,
                            gap,
                        )
                    }
                }
            })
            .collect()
    } else {
        vec![
            (
                "add".into(),
                Box::new(|cl: &mut TcpKvCluster| cl.add_replica(ServerId(5))) as _,
                cfg.ops_per_phase,
            ),
            (
                "remove".into(),
                Box::new(|cl: &mut TcpKvCluster| cl.remove_replica(ServerId(0))) as _,
                cfg.ops_per_phase,
            ),
            (
                "replace".into(),
                Box::new(|cl: &mut TcpKvCluster| cl.replace_replica(ServerId(1), ServerId(6))) as _,
                cfg.ops_per_phase,
            ),
        ]
    };
    let expected_steps = steps.len() as u32;

    let mut phases = Vec::with_capacity(steps.len() * 3);
    let mut applied = 0u32;
    for (name, step, before_ops) in steps {
        let epoch_before = cluster.lock().expect("cluster lock").epoch();
        phases.push(wl.run_phase(&format!("{name}:before"), epoch_before, before_ops, None));

        // The reconfiguration runs on its own thread while the workload
        // keeps hammering the register — the "during" window is exactly
        // the epoch change in flight, redirects and transfer included.
        let stop = AtomicBool::new(false);
        let cap = cfg.ops_per_phase * 50;
        let step_ok = std::thread::scope(|s| {
            let handle = s.spawn(|| {
                let mut cl = cluster.lock().expect("cluster lock");
                let r = step(&mut cl);
                stop.store(true, Ordering::Release);
                r
            });
            phases.push(wl.run_phase(
                &format!("{name}:during"),
                epoch_before + 1,
                cap,
                Some(&stop),
            ));
            handle.join().expect("reconfig thread")
        });
        if step_ok.is_ok() {
            applied += 1;
        }
        {
            let cl = cluster.lock().expect("cluster lock");
            assert_fabricator(&cl, cfg.seed);
        }

        let epoch_after = cluster.lock().expect("cluster lock").epoch();
        phases.push(wl.run_phase(
            &format!("{name}:after"),
            epoch_after,
            cfg.ops_per_phase,
            None,
        ));
    }

    let mut violations = Vec::new();
    for c in &mut wl.checkers {
        c.prune();
        violations.extend(c.take_violations());
    }
    if !violations.is_empty() {
        safereg_obs::dump_flight("violation");
    }

    let final_epoch = cluster.lock().expect("cluster lock").epoch();
    let (coded_digest_ok, coded_joiner_logical) = coded_fragment_check(cfg.seed);

    ChurnReport {
        seed: cfg.seed,
        mode: if cfg.continuous {
            "continuous"
        } else {
            "ladder"
        },
        expected_steps,
        steps: applied,
        final_epoch,
        byz_role: ByzRole::Fabricator.label(),
        phases,
        violations,
        ops_attempted: wl.attempted,
        ops_completed: wl.completed,
        failures: wl.failures,
        transfer_keys: reg.counter(names::KV_TRANSFER_KEYS).get() - transfer0,
        reconfig_slow_reads: reg
            .counter(&names::slow_cause_counter("reconfig_transfer"))
            .get()
            - slow0,
        coded_digest_ok,
        coded_joiner_logical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature churn: the full add/remove/replace ladder with a live
    /// Fabricator and a small workload — clean verdict, every op
    /// terminated, coded fragment rebuilt.
    #[test]
    fn tiny_churn_is_clean() {
        let cfg = ChurnConfig {
            seed: 21,
            ops_per_phase: 30,
            shards: 2,
            keys: 2,
            ..ChurnConfig::default()
        };
        let report = churn_run(&cfg);
        for p in &report.phases {
            eprintln!(
                "{}: epoch {}, {} ops, {:.0} ops/sec, p99 {} us, {} adoptions",
                p.label, p.epoch, p.ops, p.ops_per_sec, p.p99_micros, p.adoptions
            );
        }
        assert_eq!(report.steps, 3, "a reconfiguration step failed");
        assert_eq!(report.final_epoch, 3);
        assert!(
            report.violations.is_empty(),
            "churn found safety violations: {:?}",
            report.violations
        );
        assert_eq!(report.failures, 0, "an operation failed to terminate");
        assert!(report.coded_digest_ok, "coded joiner fragment mismatch");
        assert!(
            report.phases.iter().any(|p| p.adoptions > 0),
            "no client ever adopted a successor config"
        );
        assert!(report.transfer_keys > 0, "no state was transferred");
        assert!(report.ok(), "{report:?}");
    }

    /// Continuous mode: a DetRng arrival/departure process replaces the
    /// ladder — every drawn event applies, the verdict stays clean, and
    /// the schedule is a pure function of the seed (same seed, same
    /// phase labels).
    #[test]
    fn tiny_continuous_churn_is_clean() {
        let cfg = ChurnConfig {
            seed: 33,
            ops_per_phase: 20,
            shards: 2,
            keys: 2,
            continuous: true,
            events: 4,
        };
        let report = churn_run(&cfg);
        for p in &report.phases {
            eprintln!("{}: epoch {}, {} ops", p.label, p.epoch, p.ops);
        }
        assert_eq!(report.mode, "continuous");
        assert_eq!(report.steps, 4, "a drawn membership event failed");
        assert_eq!(report.final_epoch, 4);
        assert!(
            report.violations.is_empty(),
            "continuous churn found safety violations: {:?}",
            report.violations
        );
        assert_eq!(report.failures, 0, "an operation failed to terminate");
        assert!(
            report.phases[0].label.starts_with("e0:arrival"),
            "first event must be an arrival (nobody can depart yet): {}",
            report.phases[0].label
        );
        let replay = churn_run(&cfg);
        let labels =
            |r: &ChurnReport| -> Vec<String> { r.phases.iter().map(|p| p.label.clone()).collect() };
        assert_eq!(
            labels(&report),
            labels(&replay),
            "the arrival/departure schedule must replay from the seed"
        );
        assert!(report.ok(), "{report:?}");
    }
}
