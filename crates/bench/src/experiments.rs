//! The paper's claims as executable experiments (E1–E10).
//!
//! Every function is deterministic given its built-in seeds and returns
//! structured rows; the `paper_harness` binary renders them next to the
//! paper's expected numbers, and integration tests assert the verdicts.

use safereg_checker::rounds::read_round_profile;
use safereg_checker::CheckSummary;
use safereg_common::config::QuorumConfig;
use safereg_common::history::{History, OpRecord};
use safereg_common::ids::{ReaderId, WriterId};
use safereg_simnet::behavior::Silent;
use safereg_simnet::delay::FixedDelay;
use safereg_simnet::driver::Plan;
use safereg_simnet::scenarios::{
    new_old_inversion, theorem3, theorem5, theorem6, ScenarioResult, HOP,
};
use safereg_simnet::sim::Sim;
use safereg_simnet::workload::{ByzKind, Protocol, WorkloadSpec};

/// Mean latency of completed ops matching `pred`, in simulated ticks.
fn mean_latency(history: &History, pred: impl Fn(&OpRecord) -> bool) -> f64 {
    let latencies: Vec<u64> = history
        .records()
        .iter()
        .filter(|r| r.is_complete() && pred(r))
        .filter_map(OpRecord::latency)
        .collect();
    if latencies.is_empty() {
        return 0.0;
    }
    latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
}

/// Total wire bytes of completed ops matching `pred`.
fn total_bytes(history: &History, pred: impl Fn(&OpRecord) -> bool) -> u64 {
    history
        .records()
        .iter()
        .filter(|r| r.is_complete() && pred(r))
        .map(|r| r.bytes)
        .sum()
}

// ---------------------------------------------------------------------------
// E1 — resilience
// ---------------------------------------------------------------------------

/// One row of the resilience table.
#[derive(Debug, Clone)]
pub struct E1Row {
    /// Protocol under test.
    pub protocol: String,
    /// Deployment size.
    pub n: usize,
    /// Fault bound.
    pub f: usize,
    /// `"safe"`, `"UNSAFE"` or `"liveness lost"`.
    pub verdict: &'static str,
    /// How the verdict was established.
    pub evidence: String,
}

fn scenario_verdict(result: &ScenarioResult) -> (bool, bool) {
    let summary = CheckSummary::check_all(&result.history);
    (summary.is_safe(), summary.is_fresh())
}

/// Randomized stress: runs read/write workloads with Byzantine servers and
/// returns the number of safety violations across seeds.
pub fn stress_safety(protocol: Protocol, f: usize, seeds: std::ops::Range<u64>) -> usize {
    let mut violations = 0;
    for seed in seeds {
        for kind in [ByzKind::Stale, ByzKind::Fabricator, ByzKind::AckForger] {
            let spec = WorkloadSpec {
                protocol,
                f,
                extra_servers: 0,
                writers: 2,
                readers: 3,
                writer_ops: 4,
                reader_ops: 4,
                value_size: 32,
                think: 30,
                byzantine: Some((f, kind)),
                seed,
            };
            let mut sim = spec.build();
            sim.run();
            let summary = CheckSummary::check_all(sim.history());
            violations += summary.safety.len() + summary.order.len();
        }
    }
    violations
}

/// E1: the resilience table (Theorems 2/5, Lemma 4/Theorem 6, §VI).
pub fn e1_resilience() -> Vec<E1Row> {
    let mut rows = Vec::new();

    // BSR at n = 4f and n = 4f + 1 (f = 1), via the Theorem 5 schedule.
    let under = theorem5(false);
    let (safe, _) = scenario_verdict(&under);
    rows.push(E1Row {
        protocol: "BSR".into(),
        n: 4,
        f: 1,
        verdict: if safe { "safe" } else { "UNSAFE" },
        evidence: "Theorem 5 schedule".into(),
    });
    let at = theorem5(true);
    let (safe, _) = scenario_verdict(&at);
    let stress = stress_safety(Protocol::Bsr, 1, 0..5);
    rows.push(E1Row {
        protocol: "BSR".into(),
        n: 5,
        f: 1,
        verdict: if safe && stress == 0 {
            "safe"
        } else {
            "UNSAFE"
        },
        evidence: format!("Theorem 5 schedule + {} stress runs", 5 * 3),
    });

    // BCSR at n = 5f and n = 5f + 1 (f = 2), via the Theorem 6 schedule.
    let under = theorem6(false);
    let (safe, _) = scenario_verdict(&under);
    rows.push(E1Row {
        protocol: "BCSR".into(),
        n: 10,
        f: 2,
        verdict: if safe { "safe" } else { "UNSAFE" },
        evidence: "Theorem 6 schedule".into(),
    });
    let at = theorem6(true);
    let (safe, _) = scenario_verdict(&at);
    let stress = stress_safety(Protocol::Bcsr, 1, 0..5);
    rows.push(E1Row {
        protocol: "BCSR".into(),
        n: 11,
        f: 2,
        verdict: if safe && stress == 0 {
            "safe"
        } else {
            "UNSAFE"
        },
        evidence: format!("Theorem 6 schedule + {} stress runs (f=1)", 5 * 3),
    });

    // Larger fault bounds at their exact resilience: randomized Byzantine
    // stress only (no targeted schedule needed — the claim is safety).
    for f in [2usize, 3] {
        let n = 4 * f + 1;
        let stress = stress_safety(Protocol::Bsr, f, 0..3);
        rows.push(E1Row {
            protocol: "BSR".into(),
            n,
            f,
            verdict: if stress == 0 { "safe" } else { "UNSAFE" },
            evidence: format!("{} stress runs with f Byzantine servers", 3 * 3),
        });
    }

    // Random-schedule search (no message targeting at all): violations
    // appear below the bound and never at it.
    for n in [4usize, 5] {
        let outcome = crate::search::search(n, 1, 300);
        let found = outcome.violating_seeds.len();
        rows.push(E1Row {
            protocol: "BSR".into(),
            n,
            f: 1,
            verdict: if (n == 4) == (found > 0) {
                if found > 0 {
                    "UNSAFE"
                } else {
                    "safe"
                }
            } else {
                "UNEXPECTED"
            },
            evidence: format!(
                "random search: {found}/{} schedules violate",
                outcome.trials
            ),
        });
    }

    // RB baseline at n = 3f and n = 3f + 1 (f = 1): below the bound the
    // Bracha echo quorum cannot form and writes starve.
    for (n, expect_live) in [(3usize, false), (4usize, true)] {
        let cfg = QuorumConfig::new(n, 1).expect("valid config");
        let mut sim = Sim::new(cfg, 9, Box::new(FixedDelay { hop: HOP }));
        for sid in cfg.servers() {
            if sid.0 as usize == n - 1 {
                sim.add_server(Box::new(Silent::new(sid)));
            } else {
                sim.add_server(Protocol::RbBaseline.correct_server(sid, cfg));
            }
        }
        sim.add_client(
            Protocol::RbBaseline.writer(WriterId(0), cfg),
            vec![Plan::write_at(0, "liveness probe")],
        );
        let report = sim.run_until(1_000_000);
        let live = report.incomplete_ops == 0;
        rows.push(E1Row {
            protocol: "RB-baseline".into(),
            n,
            f: 1,
            verdict: if live == expect_live {
                if live {
                    "safe"
                } else {
                    "liveness lost"
                }
            } else {
                "UNEXPECTED"
            },
            evidence: "write liveness probe with one silent server".into(),
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// E2 — round complexity
// ---------------------------------------------------------------------------

/// One row of the round-complexity table.
#[derive(Debug, Clone)]
pub struct E2Row {
    /// Protocol under test.
    pub protocol: String,
    /// Rounds used by reads: `(min, max, mean)`.
    pub read_rounds: (u32, u32, f64),
    /// Rounds used by writes (always 2 in the paper).
    pub write_rounds: u32,
    /// Whether every read was one-shot (Definition 3).
    pub one_shot: bool,
}

/// E2: round complexity per protocol (Definition 3).
pub fn e2_rounds() -> Vec<E2Row> {
    [
        Protocol::Bsr,
        Protocol::BsrH,
        Protocol::Bsr2p,
        Protocol::Bcsr,
        Protocol::RbBaseline,
    ]
    .into_iter()
    .map(|protocol| {
        let spec = WorkloadSpec {
            protocol,
            f: 1,
            extra_servers: 0,
            writers: 1,
            readers: 2,
            writer_ops: 5,
            reader_ops: 5,
            value_size: 64,
            think: 30,
            byzantine: None,
            seed: 21,
        };
        let mut sim = spec.build();
        sim.run();
        let profile = read_round_profile(sim.history());
        let write_rounds = sim
            .history()
            .completed_writes()
            .map(|w| w.rounds)
            .max()
            .unwrap_or(0);
        E2Row {
            protocol: protocol.name().into(),
            read_rounds: (profile.min, profile.max, profile.mean()),
            write_rounds,
            one_shot: profile.all_one_shot(),
        }
    })
    .collect()
}

// ---------------------------------------------------------------------------
// E3 — latency vs reliable broadcast
// ---------------------------------------------------------------------------

/// One row of the latency table (per-hop delay Δ = [`HOP`] ticks).
#[derive(Debug, Clone)]
pub struct E3Row {
    /// Protocol under test.
    pub protocol: String,
    /// Mean write latency in hops (latency / Δ).
    pub write_hops: f64,
    /// Mean read latency in hops.
    pub read_hops: f64,
    /// Write latency relative to BSR's.
    pub write_vs_bsr: f64,
}

/// E3: operation latencies on a fixed-Δ network; the paper's §I-B claims
/// RB-based writes pay a 1.5× blow-up on the `put-data` phase (6 hops
/// total vs BSR's 4).
pub fn e3_latency() -> Vec<E3Row> {
    let mut rows: Vec<E3Row> = Vec::new();
    let mut bsr_write = 0.0;
    for protocol in [
        Protocol::Bsr,
        Protocol::BsrH,
        Protocol::Bsr2p,
        Protocol::Bcsr,
        Protocol::RbBaseline,
    ] {
        let cfg = QuorumConfig::new(protocol.min_n(1), 1).expect("valid config");
        let mut sim = Sim::new(cfg, 31, Box::new(FixedDelay { hop: HOP }));
        for sid in cfg.servers() {
            sim.add_server(protocol.correct_server(sid, cfg));
        }
        sim.add_client(
            protocol.writer(WriterId(0), cfg),
            vec![
                Plan::write_at(0, "latency probe"),
                Plan::write_at(10_000, "second write"),
            ],
        );
        sim.add_client(
            protocol.reader(ReaderId(0), cfg),
            vec![Plan::read_at(20_000)],
        );
        sim.run();
        let write = mean_latency(sim.history(), |r| r.kind.is_write()) / HOP as f64;
        let read = mean_latency(sim.history(), |r| r.kind.is_read()) / HOP as f64;
        if protocol == Protocol::Bsr {
            bsr_write = write;
        }
        rows.push(E3Row {
            protocol: protocol.name().into(),
            write_hops: write,
            read_hops: read,
            write_vs_bsr: if bsr_write > 0.0 {
                write / bsr_write
            } else {
                0.0
            },
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// E4 — storage and bandwidth costs
// ---------------------------------------------------------------------------

/// One row of the cost table.
#[derive(Debug, Clone)]
pub struct E4Row {
    /// Deployment size.
    pub n: usize,
    /// Fault bound.
    pub f: usize,
    /// MDS dimension `k = n − 5f`.
    pub k: usize,
    /// Value size written (bytes).
    pub value_size: usize,
    /// Measured replication storage across servers (bytes).
    pub repl_storage: u64,
    /// Measured coded storage across servers (bytes).
    pub coded_storage: u64,
    /// Measured replicated write wire bytes.
    pub repl_write_bytes: u64,
    /// Measured coded write wire bytes.
    pub coded_write_bytes: u64,
    /// Theoretical coded units `n / k` (replication is `n`).
    pub theory_units: f64,
}

fn cost_probe(protocol: Protocol, cfg: QuorumConfig, value_size: usize) -> (u64, u64) {
    let mut sim = Sim::new(cfg, 41, Box::new(FixedDelay { hop: HOP }));
    for sid in cfg.servers() {
        sim.add_server(protocol.correct_server(sid, cfg));
    }
    sim.add_client(
        protocol.writer(WriterId(0), cfg),
        vec![Plan::write_at(0, vec![0xAB; value_size])],
    );
    sim.run();
    let storage = sim.total_storage_bytes();
    let write_bytes = total_bytes(sim.history(), |r| r.kind.is_write());
    (storage, write_bytes)
}

/// E4: measured storage and write bandwidth for replication vs MDS coding
/// (§I-C: replication costs `n` units, an `[n, k]` code costs `n/k`).
pub fn e4_costs() -> Vec<E4Row> {
    let value_size = 16 * 1024;
    let f = 1;
    [6usize, 8, 11, 16, 21]
        .into_iter()
        .map(|n| {
            let cfg = QuorumConfig::new(n, f).expect("valid config");
            let k = cfg.mds_k().expect("n > 5f");
            let (repl_storage, repl_write_bytes) = cost_probe(Protocol::Bsr, cfg, value_size);
            let (coded_storage, coded_write_bytes) = cost_probe(Protocol::Bcsr, cfg, value_size);
            E4Row {
                n,
                f,
                k,
                value_size,
                repl_storage,
                coded_storage,
                repl_write_bytes,
                coded_write_bytes,
                theory_units: n as f64 / k as f64,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// E5/E6/E7 — the theorem replays
// ---------------------------------------------------------------------------

/// Outcome of one scenario replay.
#[derive(Debug, Clone)]
pub struct ReplayRow {
    /// Scenario label.
    pub name: String,
    /// Did safety (Definition 1) hold?
    pub safe: bool,
    /// Did regularity-grade freshness hold?
    pub fresh: bool,
    /// What the read returned.
    pub read_returned: String,
}

fn replay_row(result: ScenarioResult) -> ReplayRow {
    let summary = CheckSummary::check_all(&result.history);
    let returned = result
        .history
        .completed_reads()
        .next()
        .and_then(|r| match &r.kind {
            safereg_common::history::OpKind::Read {
                returned: Some(v), ..
            } => Some(v.to_string()),
            _ => None,
        })
        .unwrap_or_else(|| "<no read>".into());
    ReplayRow {
        name: result.name,
        safe: summary.is_safe(),
        fresh: summary.is_fresh(),
        read_returned: returned,
    }
}

/// E5: the Theorem 3 schedule run under BSR, BSR-H and BSR-2P.
pub fn e5_theorem3() -> Vec<ReplayRow> {
    [Protocol::Bsr, Protocol::BsrH, Protocol::Bsr2p]
        .into_iter()
        .map(|p| replay_row(theorem3(p)))
        .collect()
}

/// E6: the Theorem 5 schedule at `n = 4f` and `n = 4f + 1`.
pub fn e6_theorem5() -> Vec<ReplayRow> {
    vec![replay_row(theorem5(false)), replay_row(theorem5(true))]
}

/// E7: the Theorem 6 schedule at `n = 5f` and `n = 5f + 1`.
pub fn e7_theorem6() -> Vec<ReplayRow> {
    vec![replay_row(theorem6(false)), replay_row(theorem6(true))]
}

// ---------------------------------------------------------------------------
// E8 — read-heavy workloads
// ---------------------------------------------------------------------------

/// One row of the workload comparison.
#[derive(Debug, Clone)]
pub struct E8Row {
    /// Protocol under test.
    pub protocol: String,
    /// Requested read share, in permille.
    pub read_permille: u32,
    /// Completed operations.
    pub ops: usize,
    /// Mean read latency (ticks).
    pub read_latency: f64,
    /// 99th-percentile read latency (ticks).
    pub read_p99: u64,
    /// Mean write latency (ticks).
    pub write_latency: f64,
    /// Throughput: completed operations per 1000 ticks.
    pub throughput: f64,
    /// Wire bytes per operation.
    pub bytes_per_op: f64,
    /// Whether the execution was safe.
    pub safe: bool,
}

/// E8: protocol comparison under read-dominated workloads (§I-A's
/// motivation: TAO serves ~99.8 % reads).
pub fn e8_workloads() -> Vec<E8Row> {
    let mut rows = Vec::new();
    for read_permille in [500u32, 900, 990, 998] {
        for protocol in [
            Protocol::Bsr,
            Protocol::BsrH,
            Protocol::Bsr2p,
            Protocol::Bcsr,
            Protocol::RbBaseline,
        ] {
            let spec = WorkloadSpec::read_heavy(protocol, 1, read_permille, 51);
            let mut sim = spec.build();
            let report = sim.run();
            let summary = CheckSummary::check_all(sim.history());
            let read_p99 = safereg_checker::stats::read_latency_stats(sim.history())
                .map(|s| s.p99)
                .unwrap_or(0);
            rows.push(E8Row {
                protocol: protocol.name().into(),
                read_permille,
                ops: report.completed_ops,
                read_latency: mean_latency(sim.history(), |r| r.kind.is_read()),
                read_p99,
                write_latency: mean_latency(sim.history(), |r| r.kind.is_write()),
                throughput: report.completed_ops as f64 * 1000.0 / report.end_time.max(1) as f64,
                bytes_per_op: report.bytes as f64 / report.completed_ops.max(1) as f64,
                safe: summary.is_safe(),
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// E9 — liveness
// ---------------------------------------------------------------------------

/// One row of the liveness table.
#[derive(Debug, Clone)]
pub struct E9Row {
    /// Protocol under test.
    pub protocol: String,
    /// Number of silent servers injected.
    pub silent: usize,
    /// Operations that completed / total.
    pub completed: (usize, usize),
    /// Expected outcome observed?
    pub as_expected: bool,
}

/// E9: Theorem 1/4 — all operations terminate with at most `f` faulty
/// servers; one more faulty server starves the `n − f` quorum.
pub fn e9_liveness() -> Vec<E9Row> {
    let mut rows = Vec::new();
    for protocol in [Protocol::Bsr, Protocol::Bcsr, Protocol::RbBaseline] {
        let f = 1usize;
        for silent in [f, f + 1] {
            let cfg = QuorumConfig::new(protocol.min_n(f), f).expect("valid config");
            let mut sim = Sim::new(cfg, 61, Box::new(FixedDelay { hop: HOP }));
            for sid in cfg.servers() {
                if (sid.0 as usize) < silent {
                    sim.add_server(Box::new(Silent::new(sid)));
                } else {
                    sim.add_server(protocol.correct_server(sid, cfg));
                }
            }
            sim.add_client(
                protocol.writer(WriterId(0), cfg),
                vec![
                    Plan::write_at(0, "liveness"),
                    Plan::write_at(5_000, "again"),
                ],
            );
            sim.add_client(
                protocol.reader(ReaderId(0), cfg),
                vec![Plan::read_at(10_000)],
            );
            let report = sim.run_until(1_000_000);
            let total = report.completed_ops + report.incomplete_ops;
            let expect_live = silent <= f;
            let live = report.incomplete_ops == 0;
            rows.push(E9Row {
                protocol: protocol.name().into(),
                silent,
                completed: (report.completed_ops, total),
                as_expected: live == expect_live,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// E10 — write ordering
// ---------------------------------------------------------------------------

/// Result of the write-order stress.
#[derive(Debug, Clone)]
pub struct E10Row {
    /// Seeds exercised.
    pub runs: usize,
    /// Completed writes across runs.
    pub writes: usize,
    /// Duplicate-tag violations found.
    pub duplicates: usize,
    /// Real-time inversions found.
    pub inversions: usize,
}

/// E10: Lemma 2 — concurrent multi-writer stress; tags must be unique and
/// respect real-time order.
pub fn e10_write_order() -> E10Row {
    let mut writes = 0;
    let mut duplicates = 0;
    let mut inversions = 0;
    let runs = 10;
    for seed in 0..runs {
        let spec = WorkloadSpec {
            protocol: Protocol::Bsr,
            f: 1,
            extra_servers: 0,
            writers: 5,
            readers: 2,
            writer_ops: 5,
            reader_ops: 5,
            value_size: 16,
            think: 10,
            byzantine: None,
            seed: seed as u64,
        };
        let mut sim = spec.build();
        sim.run();
        writes += sim.history().completed_writes().count();
        for v in safereg_checker::check_write_order(sim.history()) {
            match v.kind {
                safereg_checker::ViolationKind::DuplicateTag => duplicates += 1,
                _ => inversions += 1,
            }
        }
    }
    E10Row {
        runs,
        writes,
        duplicates,
        inversions,
    }
}

// ---------------------------------------------------------------------------
// E11 — the atomicity boundary
// ---------------------------------------------------------------------------

/// One row of the atomicity demonstration.
#[derive(Debug, Clone)]
pub struct E11Row {
    /// Protocol under test.
    pub protocol: String,
    /// Whether the run stayed safe (it must).
    pub safe: bool,
    /// Whether the run stayed fresh (it must).
    pub fresh: bool,
    /// New/old inversions observed (the atomicity violation).
    pub inversions: usize,
}

/// E11: the guarantee the paper deliberately gives up. A scripted schedule
/// produces a new/old inversion across two readers — the execution is safe
/// and regular-fresh, but not atomic. Semi-fast MWMR atomic registers are
/// impossible (§I-A, Georgiou et al. \[13\]); this is that impossibility
/// made visible on the implemented protocols.
pub fn e11_atomicity_boundary() -> Vec<E11Row> {
    [Protocol::Bsr, Protocol::BsrH]
        .into_iter()
        .map(|protocol| {
            let result = new_old_inversion(protocol);
            let summary = CheckSummary::check_all(&result.history);
            let inversions = safereg_checker::check_no_new_old_inversion(&result.history).len();
            E11Row {
                protocol: protocol.name().into(),
                safe: summary.is_safe(),
                fresh: summary.is_fresh(),
                inversions,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// E12 — read bandwidth of the regular variants
// ---------------------------------------------------------------------------

/// One row of the variant-bandwidth comparison.
#[derive(Debug, Clone)]
pub struct E12Row {
    /// Number of completed writes before the measured read.
    pub history_len: usize,
    /// Wire bytes of one BSR read (constant in history).
    pub bsr_read_bytes: u64,
    /// Wire bytes of one cold BSR-H read (grows with history × value size).
    pub bsrh_read_bytes: u64,
    /// Wire bytes of a *warm* BSR-H read — the same reader reading again:
    /// servers send only the delta above its local tag, so this is
    /// history-independent.
    pub bsrh_warm_read_bytes: u64,
    /// Wire bytes of one BSR-2P read (grows with history × tag size only).
    pub bsr2p_read_bytes: u64,
}

/// Returns the wire bytes of the reader's first and second reads after
/// `writes` completed writes.
fn read_cost_after_history(protocol: Protocol, writes: usize, value_size: usize) -> (u64, u64) {
    let cfg = QuorumConfig::new(protocol.min_n(1), 1).expect("valid config");
    let mut sim = Sim::new(cfg, 91, Box::new(FixedDelay { hop: HOP }));
    for sid in cfg.servers() {
        sim.add_server(protocol.correct_server(sid, cfg));
    }
    let plans: Vec<Plan> = (0..writes)
        .map(|i| Plan::write_at(i as u64 * 100, vec![(i % 251) as u8; value_size]))
        .collect();
    sim.add_client(protocol.writer(WriterId(0), cfg), plans);
    let t0 = writes as u64 * 100 + 1_000;
    sim.add_client(
        protocol.reader(ReaderId(0), cfg),
        vec![Plan::read_at(t0), Plan::read_at(t0 + 1_000)],
    );
    sim.run();
    let mut reads = sim.history().completed_reads().map(|r| r.bytes);
    let cold = reads.next().expect("first read completed");
    let warm = reads.next().expect("second read completed");
    (cold, warm)
}

/// E12: why §III-C offers *two* regularity fixes. BSR-H keeps reads
/// one-shot but ships the entire value history; BSR-2P pays a second round
/// but ships only a tag list plus one value. The crossover is immediate
/// for non-trivial histories.
pub fn e12_variant_bandwidth() -> Vec<E12Row> {
    let value_size = 1024;
    [1usize, 10, 50, 100]
        .into_iter()
        .map(|history_len| {
            let (bsr, _) = read_cost_after_history(Protocol::Bsr, history_len, value_size);
            let (bsrh_cold, bsrh_warm) =
                read_cost_after_history(Protocol::BsrH, history_len, value_size);
            let (bsr2p, _) = read_cost_after_history(Protocol::Bsr2p, history_len, value_size);
            E12Row {
                history_len,
                bsr_read_bytes: bsr,
                bsrh_read_bytes: bsrh_cold,
                bsrh_warm_read_bytes: bsrh_warm,
                bsr2p_read_bytes: bsr2p,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// E13 — semi-fast path accounting
// ---------------------------------------------------------------------------

/// One row of the fast-path accounting table.
#[derive(Debug, Clone)]
pub struct E13Row {
    /// Workload or scenario label.
    pub scenario: &'static str,
    /// Protocol under test.
    pub protocol: String,
    /// Reads that completed on the fast path (f+1 witnesses, no retry).
    pub fast: u64,
    /// Reads that fell back to the slow path.
    pub slow: u64,
    /// `fast / (fast + slow)`, when any read was classified.
    pub ratio: Option<f64>,
    /// Candidate-validation failures observed by readers.
    pub validation_failures: u64,
}

fn fast_path_row(scenario: &'static str, protocol: Protocol, sim: &mut Sim) -> E13Row {
    let report = sim.run();
    E13Row {
        scenario,
        protocol: protocol.name().into(),
        fast: report.fast_reads,
        slow: report.slow_reads,
        ratio: report.fast_read_ratio(),
        validation_failures: sim
            .metrics_snapshot()
            .counter("sim.read.validation_failures")
            .unwrap_or(0),
    }
}

/// The read-heavy workload behind E13's contended rows.
fn e13_spec(byzantine: Option<(usize, ByzKind)>) -> WorkloadSpec {
    let mut spec = WorkloadSpec::read_heavy(Protocol::Bsr, 1, 800, 0xE13);
    spec.byzantine = byzantine;
    spec
}

/// E13: the paper's "semi-fast" claim (§III, §IV) made measurable. On a
/// fault-free deployment every BSR read finds `f+1` witnesses for the
/// highest tag and completes on the fast path; a Byzantine server or the
/// Theorem 3 schedule forces witness failures and drops the ratio below 1.
pub fn e13_fast_path() -> Vec<E13Row> {
    let mut rows = Vec::new();
    rows.push(fast_path_row(
        "read-heavy clean",
        Protocol::Bsr,
        &mut e13_spec(None).build(),
    ));
    rows.push(fast_path_row(
        "read-heavy +fabricator",
        Protocol::Bsr,
        &mut e13_spec(Some((1, ByzKind::Fabricator))).build(),
    ));
    for protocol in [Protocol::Bsr, Protocol::BsrH, Protocol::Bsr2p] {
        let r = theorem3(protocol);
        rows.push(E13Row {
            scenario: "theorem-3 schedule",
            protocol: protocol.name().into(),
            fast: r.report.fast_reads,
            slow: r.report.slow_reads,
            ratio: r.report.fast_read_ratio(),
            validation_failures: 0,
        });
    }
    rows
}

/// The full metrics registry of the contended E13 run, rendered as
/// line-oriented JSON — what `paper_harness metrics` prints and the CI
/// smoke test greps for the fast-read-ratio gauge.
pub fn e13_metrics_dump() -> String {
    let mut sim = e13_spec(Some((1, ByzKind::Fabricator))).build();
    sim.run();
    safereg_obs::render_jsonl(&sim.metrics_snapshot())
}
