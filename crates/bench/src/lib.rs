//! Experiment harness for the paper's claims.
//!
//! The paper is a theory paper: its "evaluation" is a set of analytical
//! claims (resilience bounds, round complexities, the 1.5× reliable-
//! broadcast overhead, MDS storage/bandwidth factors) and three
//! impossibility/violation arguments. This crate regenerates each claim as
//! a measurable experiment:
//!
//! | Exp | Claim | Function |
//! |-----|-------|----------|
//! | E1 | resilience table: BSR `4f+1`, BCSR `5f+1`, RB `3f+1`, all tight | [`experiments::e1_resilience`] |
//! | E2 | one-shot reads (Def. 3), 2-round writes | [`experiments::e2_rounds`] |
//! | E3 | RB writes pay ≈1.5× BSR's write latency | [`experiments::e3_latency`] |
//! | E4 | storage/bandwidth: replication `n` vs MDS `n/k` units | [`experiments::e4_costs`] |
//! | E5 | Theorem 3 replay: BSR not regular; BSR-H/2P survive | [`experiments::e5_theorem3`] |
//! | E6 | Theorem 5 replay: `n = 4f` unsafe, `4f+1` safe | [`experiments::e6_theorem5`] |
//! | E7 | Theorem 6 replay: `n = 5f` unsafe, `5f+1` safe | [`experiments::e7_theorem6`] |
//! | E8 | read-heavy workloads: protocol comparison | [`experiments::e8_workloads`] |
//! | E9 | liveness at exactly `f` faults, starvation beyond | [`experiments::e9_liveness`] |
//! | E10 | Lemma 2: write order respects real time | [`experiments::e10_write_order`] |
//!
//! plus the design ablations [`ablations::a1_witness_threshold`],
//! [`ablations::a2_tag_selection`], [`ablations::a3_decode_strategy`] and
//! [`ablations::a4_history_retention`], the [`chaos`] scenario that
//! tortures the real TCP stack behind seeded fault-injection proxies, and
//! the [`soak`] harness that runs the kv store for epochs under rotating
//! live-Byzantine replicas, server-side chaos and crash/restarts with a
//! memory-bounded online safety checker, and the [`churn`] scenario that
//! rolls add/remove/replace reconfigurations through a live cluster while
//! a Fabricator stays active and a checker judges every op, and the
//! [`audit`] harness that convicts every injected Byzantine replica from
//! HMAC-chained evidence (and nobody else, even under wire corruption).
//!
//! Run everything: `cargo run -p safereg-bench --bin paper_harness`.

pub mod ablations;
pub mod audit;
pub mod chaos;
pub mod churn;
pub mod experiments;
pub mod runtime;
pub mod search;
pub mod shard;
pub mod soak;
pub mod table;
pub mod trace;
pub mod wire;
