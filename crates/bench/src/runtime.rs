//! Runtime saturation scenario: latency under load at high connection
//! counts, thread-per-connection vs the readiness-driven reactor.
//!
//! The tentpole claim behind [`ServerRuntime::Reactor`] is that serving
//! `C` connections must not cost `O(C)` threads. This scenario measures
//! it on a live single-replica deployment (`n = 1, f = 0` — quorum
//! assembly is not under test, the serving runtime is):
//!
//! * **open-loop load**: external load-generator *processes* hold a rung
//!   of `C` idle-ish connections and offer a fixed aggregate request rate
//!   on a schedule that does not wait for replies — the latency a slow
//!   server causes cannot slow the offered load down (no coordinated
//!   omission);
//! * **rungs** of 1k / 10k / 50k connections; each rung runs against the
//!   reactor runtime and (up to a thread-budget ceiling) the threaded
//!   runtime, same wire bytes, same rate;
//! * **fd clamping**: the container's `RLIM_NOFILE` is a hard wall — a
//!   rung that does not fit is clamped and reported as requested vs
//!   achieved rather than silently skipped;
//! * **verdict**: the reactor must match threaded throughput at the
//!   smallest rung, beat its p99 at 10k+, and hold its thread count at
//!   `O(reactors)` while threaded pays two threads per connection.
//!
//! The load generators are child processes of the same binary (the
//! hidden `runtime-loadgen` subcommand): separate fd tables, separate
//! scheduler queues, and the server process's `Threads:` line stays a
//! pure measurement of the serving runtime. Each child pre-seals one
//! request with [`encode_request`] and replays it verbatim — replies are
//! counted by framing alone, so the generator never pays a decode on the
//! hot path.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use safereg_common::config::{QuorumConfig, ServerRuntime, TransportConfig};
use safereg_common::epoch::EpochConfig;
use safereg_common::ids::{ClientId, ReaderId, ServerId};
use safereg_common::msg::{ClientToServer, OpId};
use safereg_common::shard::ShardId;
use safereg_crypto::keychain::KeyChain;
use safereg_kv::{encode_request, KvMode, KvServerHost};
use safereg_transport::poll::{Interest, PollEvent, Poller};

/// Per-child connection ceiling: keeps every generator comfortably under
/// its own fd limit and spreads connect/read work across processes.
const CONNS_PER_CHILD: usize = 6000;

/// Fd headroom reserved for everything that is not a benched connection
/// (listener, poller, wakers, children's pipes, the binary's own files).
const FD_HEADROOM: usize = 1200;

/// Configuration for the saturation scenario.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Requested connection-count rungs.
    pub rungs: Vec<usize>,
    /// Aggregate offered load (requests/second) across the whole rung.
    pub rate: u64,
    /// Measured seconds per run (after the connect ramp).
    pub secs: u64,
    /// Largest rung the thread-per-connection runtime is asked to hold
    /// (two threads per connection; beyond this only the reactor runs).
    pub threaded_max: usize,
    /// Reactor pool size for the benched host.
    pub reactors: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            rungs: vec![1_000, 10_000, 50_000],
            rate: 2_000,
            secs: 6,
            threaded_max: 10_000,
            reactors: 2,
        }
    }
}

impl RuntimeConfig {
    /// The CI smoke variant: two tiny rungs, both runtimes, ~seconds of
    /// wall clock.
    pub fn quick() -> Self {
        RuntimeConfig {
            rungs: vec![64],
            rate: 400,
            secs: 2,
            threaded_max: 10_000,
            reactors: 2,
        }
    }
}

/// One (rung, runtime) measurement.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// `"reactor"` or `"threaded"`.
    pub runtime: String,
    /// The rung as requested.
    pub requested_conns: usize,
    /// Connections actually held after fd clamping.
    pub achieved_conns: usize,
    /// Requests offered / replies observed across all generators.
    pub sent: u64,
    /// Replies observed.
    pub received: u64,
    /// Observed reply throughput over the measured window.
    pub ops_per_sec: f64,
    /// Request→reply latency percentiles in microseconds.
    pub p50_micros: u64,
    /// 99th percentile latency.
    pub p99_micros: u64,
    /// Worst observed latency.
    pub max_micros: u64,
    /// Peak `Threads:` of the server process during the run.
    pub threads_peak: u64,
}

/// The scenario's full report, written to `BENCH_runtime.json`.
#[derive(Debug)]
pub struct RuntimeReport {
    /// The process's soft fd limit (the clamping wall).
    pub fd_limit: usize,
    /// Offered aggregate rate.
    pub rate: u64,
    /// Measured seconds per run.
    pub secs: u64,
    /// Reactor pool size used.
    pub reactors: usize,
    /// All runs, in execution order.
    pub runs: Vec<RunStats>,
    /// Checks that failed (empty means the verdict holds).
    pub failures: Vec<String>,
}

impl RuntimeReport {
    /// Whether every acceptance check held.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Hand-rolled JSON (the workspace is dependency-free).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"fd_limit\":{},\"rate\":{},\"secs\":{},\"reactors\":{},\"ok\":{},",
            self.fd_limit,
            self.rate,
            self.secs,
            self.reactors,
            self.ok()
        ));
        out.push_str("\"failures\":[");
        for (i, f) in self.failures.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\"", f.replace('"', "'")));
        }
        out.push_str("],\"runs\":[");
        for (i, r) in self.runs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"runtime\":\"{}\",\"requested_conns\":{},\"achieved_conns\":{},\
                 \"sent\":{},\"received\":{},\"ops_per_sec\":{:.1},\"p50_micros\":{},\
                 \"p99_micros\":{},\"max_micros\":{},\"threads_peak\":{}}}",
                r.runtime,
                r.requested_conns,
                r.achieved_conns,
                r.sent,
                r.received,
                r.ops_per_sec,
                r.p50_micros,
                r.p99_micros,
                r.max_micros,
                r.threads_peak
            ));
        }
        out.push_str("]}");
        out
    }
}

/// The single-replica deployment both runtimes serve: quorum assembly is
/// out of scope, so `n = 1, f = 0` isolates the serving path.
fn bench_quorum() -> QuorumConfig {
    QuorumConfig::new(1, 0).expect("n = 1, f = 0 is a valid (degenerate) BSR point")
}

/// The wire bytes of one authenticated `QueryData` request against the
/// benched replica — what every generator connection replays.
fn canned_request(chain: &KeyChain, seq: u64) -> Vec<u8> {
    let cfg = bench_quorum();
    let stamp = EpochConfig::genesis(cfg.servers()).stamp();
    let from = ClientId::Reader(ReaderId(1));
    encode_request(
        chain,
        stamp,
        from,
        ServerId(0),
        ShardId(0),
        b"bench",
        &ClientToServer::QueryData {
            op: OpId::new(from, seq),
        },
    )
}

/// The soft `RLIMIT_NOFILE` of this process, read from procfs (no libc
/// dependency). Falls back to a conservative 1024 when unreadable.
fn fd_soft_limit() -> usize {
    let Ok(limits) = std::fs::read_to_string("/proc/self/limits") else {
        return 1024;
    };
    limits
        .lines()
        .find(|l| l.starts_with("Max open files"))
        .and_then(|l| l.split_whitespace().nth(3))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1024)
}

/// The current `Threads:` count of this process.
fn thread_count() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// Transport policy for the benched host: long idle budget (a 50k-conn
/// rung at a fixed aggregate rate leaves each connection quiet for many
/// seconds between requests — that is the scenario, not a dead peer).
fn bench_tconfig() -> TransportConfig {
    TransportConfig {
        idle_timeout: Duration::from_secs(600),
        stall_timeout: Duration::from_secs(30),
        ..TransportConfig::default()
    }
}

/// Runs one (rung, runtime) cell: spawns the host, fans the connections
/// out over loadgen child processes, samples the server's thread count,
/// and merges the children's latency samples.
fn run_cell(
    runtime: ServerRuntime,
    requested: usize,
    achieved: usize,
    cfg: &RuntimeConfig,
    secret: &str,
) -> std::io::Result<RunStats> {
    let chain = KeyChain::from_master_seed(secret.as_bytes());
    let host = KvServerHost::builder(ServerId(0), bench_quorum(), KvMode::Replicated, chain)
        .config(bench_tconfig())
        .runtime(runtime)
        .reactors(cfg.reactors)
        .spawn()?;

    let exe = std::env::current_exe()?;
    let children_n = achieved.div_ceil(CONNS_PER_CHILD).max(1);
    let mut children = Vec::with_capacity(children_n);
    let mut left = achieved;
    for i in 0..children_n {
        let share = left.div_ceil(children_n - i);
        left -= share;
        let rate = (cfg.rate / children_n as u64).max(1);
        let child = Command::new(&exe)
            .args([
                "runtime-loadgen",
                "--addr",
                &host.addr().to_string(),
                "--conns",
                &share.to_string(),
                "--rate",
                &rate.to_string(),
                "--secs",
                &cfg.secs.to_string(),
                "--secret",
                secret,
                "--stagger-us",
                "200",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        children.push(child);
    }

    // Sample the server's thread count while the generators run; the peak
    // is the number the O(reactors)-threads claim is judged on.
    let mut threads_peak = thread_count();
    let mut done = vec![false; children.len()];
    while !done.iter().all(|d| *d) {
        std::thread::sleep(Duration::from_millis(100));
        threads_peak = threads_peak.max(thread_count());
        for (i, child) in children.iter_mut().enumerate() {
            if !done[i] && child.try_wait()?.is_some() {
                done[i] = true;
            }
        }
    }

    let mut sent = 0u64;
    let mut received = 0u64;
    let mut held = 0usize;
    let mut samples: Vec<u64> = Vec::new();
    for child in children {
        let out = child.wait_with_output()?;
        let text = String::from_utf8_lossy(&out.stdout);
        for line in text.lines() {
            let Some(rest) = line.strip_prefix("loadgen ") else {
                continue;
            };
            for field in rest.split_whitespace() {
                let Some((k, v)) = field.split_once('=') else {
                    continue;
                };
                match k {
                    "sent" => sent += v.parse::<u64>().unwrap_or(0),
                    "received" => received += v.parse::<u64>().unwrap_or(0),
                    "conns" => held += v.parse::<usize>().unwrap_or(0),
                    "samples" => samples.extend(v.split(',').filter_map(|s| s.parse::<u64>().ok())),
                    _ => {}
                }
            }
        }
    }
    drop(host);

    samples.sort_unstable();
    let pct = |p: f64| -> u64 {
        if samples.is_empty() {
            return 0;
        }
        let idx = ((samples.len() as f64 * p).ceil() as usize).clamp(1, samples.len()) - 1;
        samples[idx]
    };
    Ok(RunStats {
        runtime: runtime.label().to_string(),
        requested_conns: requested,
        achieved_conns: held,
        sent,
        received,
        ops_per_sec: received as f64 / cfg.secs as f64,
        p50_micros: pct(0.50),
        p99_micros: pct(0.99),
        max_micros: samples.last().copied().unwrap_or(0),
        threads_peak,
    })
}

/// Runs the whole ladder and judges the acceptance checks.
///
/// # Panics
///
/// Panics when a host cannot bind or a generator cannot be spawned — an
/// environment failure, not a runtime verdict.
pub fn runtime_run(cfg: &RuntimeConfig) -> RuntimeReport {
    let fd_limit = fd_soft_limit();
    let budget = fd_limit.saturating_sub(FD_HEADROOM).max(64);
    let mut runs: Vec<RunStats> = Vec::new();

    for &requested in &cfg.rungs {
        let achieved = requested.min(budget);
        if achieved < requested {
            println!(
                "runtime: rung {requested} clamped to {achieved} by the fd limit ({fd_limit})"
            );
        }
        for runtime in [ServerRuntime::Reactor, ServerRuntime::Threaded] {
            if runtime == ServerRuntime::Threaded && requested > cfg.threaded_max {
                println!(
                    "runtime: skipping threaded at {requested} conns \
                     (2 threads/conn exceeds the thread budget; ceiling {})",
                    cfg.threaded_max
                );
                continue;
            }
            println!(
                "runtime: {} at {achieved} conns, {} req/s for {}s ...",
                runtime.label(),
                cfg.rate,
                cfg.secs
            );
            let stats = run_cell(runtime, requested, achieved, cfg, "runtime-bench")
                .unwrap_or_else(|e| panic!("runtime {} rung {requested}: {e}", runtime.label()));
            runs.push(stats);
        }
    }

    let mut failures = Vec::new();
    for r in &runs {
        if r.achieved_conns == 0 || r.received == 0 {
            failures.push(format!(
                "{} at {} conns observed no replies",
                r.runtime, r.requested_conns
            ));
        }
        if r.sent > 0 && (r.received as f64) < 0.90 * r.sent as f64 {
            failures.push(format!(
                "{} at {} conns lost replies: {}/{}",
                r.runtime, r.requested_conns, r.received, r.sent
            ));
        }
    }
    // Pairwise checks where both runtimes held the same rung.
    let paired: Vec<(&RunStats, &RunStats)> = runs
        .iter()
        .filter(|r| r.runtime == "reactor")
        .filter_map(|re| {
            runs.iter()
                .find(|th| th.runtime == "threaded" && th.requested_conns == re.requested_conns)
                .map(|th| (re, th))
        })
        .collect();
    if let Some((re, th)) = paired.first() {
        // Smallest paired rung: the reactor must not give up throughput.
        if re.ops_per_sec < 0.95 * th.ops_per_sec {
            failures.push(format!(
                "reactor throughput {:.0}/s under threaded {:.0}/s at {} conns",
                re.ops_per_sec, th.ops_per_sec, re.requested_conns
            ));
        }
    }
    for (re, th) in &paired {
        if re.requested_conns >= 10_000 && re.p99_micros >= th.p99_micros {
            failures.push(format!(
                "reactor p99 {}us not better than threaded {}us at {} conns",
                re.p99_micros, th.p99_micros, re.requested_conns
            ));
        }
        // Two threads per connection is the threaded runtime's signature.
        if th.threads_peak < th.achieved_conns as u64 {
            failures.push(format!(
                "threaded at {} conns shows only {} threads — not thread-per-connection?",
                th.requested_conns, th.threads_peak
            ));
        }
    }
    for r in runs.iter().filter(|r| r.runtime == "reactor") {
        // The reactor's whole point: thread count independent of conns.
        // Budget: pool + accept + main + a generous slack for the test
        // runner's own machinery.
        let budget = cfg.reactors as u64 + 16;
        if r.threads_peak > budget {
            failures.push(format!(
                "reactor at {} conns used {} threads (budget {budget})",
                r.requested_conns, r.threads_peak
            ));
        }
    }

    RuntimeReport {
        fd_limit,
        rate: cfg.rate,
        secs: cfg.secs,
        reactors: cfg.reactors,
        runs,
        failures,
    }
}

// ---------------------------------------------------------------------------
// The load-generator child process.
// ---------------------------------------------------------------------------

struct GenConn {
    stream: TcpStream,
    /// Send times of requests whose replies have not yet been framed.
    pending: VecDeque<Instant>,
    /// Partial-reply accumulator (replies are framed, never decoded).
    acc: Vec<u8>,
    /// Write offset into the canned request when a send was partial.
    woff: usize,
    dead: bool,
}

/// Entry point of the hidden `runtime-loadgen` subcommand: holds `--conns`
/// connections, offers `--rate` requests/second open-loop for `--secs`,
/// and prints one `loadgen sent=.. received=.. conns=.. samples=..` line.
///
/// # Panics
///
/// Panics on malformed flags or when the target address is unreachable.
pub fn loadgen_main(flags: &[String]) -> ! {
    let mut addr = String::new();
    let mut conns = 0usize;
    let mut rate = 100u64;
    let mut secs = 5u64;
    let mut secret = String::from("runtime-bench");
    let mut stagger_us = 200u64;
    let mut i = 0;
    while i + 1 < flags.len() {
        let (flag, value) = (flags[i].as_str(), flags[i + 1].as_str());
        match flag {
            "--addr" => addr = value.to_string(),
            "--conns" => conns = value.parse().expect("--conns"),
            "--rate" => rate = value.parse().expect("--rate"),
            "--secs" => secs = value.parse().expect("--secs"),
            "--secret" => secret = value.to_string(),
            "--stagger-us" => stagger_us = value.parse().expect("--stagger-us"),
            other => panic!("runtime-loadgen: unknown flag {other}"),
        }
        i += 2;
    }
    let chain = KeyChain::from_master_seed(secret.as_bytes());
    let request = canned_request(&chain, 1);

    let mut poller = Poller::new().expect("poller");
    let mut table: Vec<GenConn> = Vec::with_capacity(conns);
    for t in 0..conns {
        let stream = match TcpStream::connect(&addr) {
            Ok(s) => s,
            Err(_) => break, // clamp: hold what connected, report it
        };
        stream.set_nonblocking(true).expect("nonblocking");
        poller
            .register(
                {
                    use std::os::fd::AsRawFd;
                    stream.as_raw_fd()
                },
                t as u64,
                Interest::READ,
            )
            .expect("register");
        table.push(GenConn {
            stream,
            pending: VecDeque::new(),
            acc: Vec::new(),
            woff: 0,
            dead: false,
        });
        if stagger_us > 0 {
            std::thread::sleep(Duration::from_micros(stagger_us));
        }
    }
    let held = table.len();
    assert!(held > 0, "runtime-loadgen: no connection reached {addr}");

    let mut events: Vec<PollEvent> = Vec::new();
    let mut scratch = vec![0u8; 64 * 1024];
    let mut samples: Vec<u64> = Vec::new();
    let mut sent = 0u64;
    let mut received = 0u64;
    let start = Instant::now();
    let window = Duration::from_secs(secs);
    let gap = Duration::from_micros(1_000_000 / rate.max(1));
    let mut next_send = start;
    let mut rr = 0usize;

    // Open loop with a drain grace: keep reading for one extra second
    // after the send window so in-flight replies are counted.
    let deadline = start + window + Duration::from_secs(1);
    loop {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        // Offer load strictly on schedule; a busy server never slows the
        // schedule down (only unsendable sockets shed offered requests).
        while next_send <= Instant::now() && Instant::now() < start + window {
            next_send += gap;
            for _ in 0..held {
                let conn = &mut table[rr];
                rr = (rr + 1) % held;
                if conn.dead {
                    continue;
                }
                match (&conn.stream).write(&request[conn.woff..]) {
                    Ok(n) => {
                        conn.woff += n;
                        if conn.woff == request.len() {
                            conn.woff = 0;
                            conn.pending.push_back(Instant::now());
                            sent += 1;
                        }
                        // A partial write resumes on this conn's next turn;
                        // the stream stays framed either way.
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                    Err(_) => conn.dead = true,
                }
                break;
            }
        }
        let timeout = next_send
            .min(deadline)
            .saturating_duration_since(Instant::now())
            .min(Duration::from_millis(50));
        let _ = poller.wait(&mut events, Some(timeout));
        for ev in &events {
            let Some(conn) = table.get_mut(ev.token as usize) else {
                continue;
            };
            if conn.dead || !(ev.readable || ev.hangup) {
                continue;
            }
            loop {
                match (&conn.stream).read(&mut scratch) {
                    Ok(0) => {
                        conn.dead = true;
                        break;
                    }
                    Ok(n) => {
                        conn.acc.extend_from_slice(&scratch[..n]);
                        if n < scratch.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            // Frame replies: 4-byte LE length prefix, payload skipped.
            let mut off = 0usize;
            while conn.acc.len() - off >= 4 {
                let len = u32::from_le_bytes(conn.acc[off..off + 4].try_into().expect("4 bytes"))
                    as usize;
                if conn.acc.len() - off - 4 < len {
                    break;
                }
                off += 4 + len;
                received += 1;
                if let Some(t0) = conn.pending.pop_front() {
                    samples.push(t0.elapsed().as_micros() as u64);
                }
            }
            conn.acc.drain(..off);
        }
    }

    let list: Vec<String> = samples.iter().map(u64::to_string).collect();
    println!(
        "loadgen sent={sent} received={received} conns={held} samples={}",
        list.join(",")
    );
    std::process::exit(0)
}
