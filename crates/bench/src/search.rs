//! Randomized violation search.
//!
//! The Theorem 5/6 replays show *one* crafted schedule breaking the
//! under-provisioned deployments. This module shows the violations are not
//! knife-edge artifacts: plain random schedules (jittery delays, a
//! stale-replying Byzantine server, no message targeting at all) also find
//! safety violations at `n = 4f`, while the same adversary never wins at
//! `n = 4f + 1`.

use safereg_checker::CheckSummary;
use safereg_common::config::QuorumConfig;
use safereg_common::ids::{ReaderId, ServerId, WriterId};
use safereg_core::client::{BsrReader, BsrWriter};
use safereg_core::server::ServerNode;
use safereg_simnet::behavior::{Correct, StaleReplier};
use safereg_simnet::delay::SpikeDelay;
use safereg_simnet::driver::{ClientDriver, Plan};
use safereg_simnet::sim::Sim;

/// Result of a search over random schedules.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Deployment size searched.
    pub n: usize,
    /// Fault bound.
    pub f: usize,
    /// Seeds tried.
    pub trials: u64,
    /// Seeds whose execution violated safety.
    pub violating_seeds: Vec<u64>,
}

/// Runs one random schedule of BSR at `(n, f)` with a stale-replying
/// Byzantine server and returns whether it violated safety.
///
/// The pattern is the minimal one Theorem 5's argument needs — two
/// sequential writes and a later read — but *all* scheduling is random:
/// heavy-tailed delays keep some `put-data` messages in flight when the
/// read fires, and the read's start time is itself drawn from the seed so
/// the search sweeps the vulnerable window.
pub fn random_run_is_unsafe(n: usize, f: usize, seed: u64) -> bool {
    let cfg = QuorumConfig::new(n, f).expect("valid config");
    // Tail-heavy latency: the regime where stragglers from an old write
    // are still in flight when a much later read fires.
    let delays = SpikeDelay {
        base: (1, 60),
        spike_prob: 0.12,
        spike: (800, 4_000),
    };
    let mut sim = Sim::new(cfg, seed, Box::new(delays));
    for sid in cfg.servers() {
        if sid == ServerId(0) {
            sim.add_server(Box::new(StaleReplier::new(
                ServerNode::new_replicated(sid, cfg),
                1,
            )));
        } else {
            sim.add_server(Box::new(Correct::new(ServerNode::new_replicated(sid, cfg))));
        }
    }
    sim.add_client(
        ClientDriver::BsrWriter(BsrWriter::new(WriterId(1), cfg)),
        vec![
            Plan::write_at(0, "v1"),
            Plan {
                start: safereg_simnet::driver::StartRule::AfterPrevious { think: 1 },
                action: safereg_simnet::driver::Action::Write(safereg_common::value::Value::from(
                    "v2",
                )),
            },
        ],
    );
    let read_at = 200 + (seed.wrapping_mul(0x9E3779B97F4A7C15) % 2_000);
    sim.add_client(
        ClientDriver::BsrReader(BsrReader::new(ReaderId(0), cfg)),
        vec![Plan::read_at(read_at)],
    );
    sim.run();
    let summary = CheckSummary::check_all(sim.history());
    !summary.is_safe()
}

/// Searches `trials` random schedules at `(n, f)`.
pub fn search(n: usize, f: usize, trials: u64) -> SearchOutcome {
    let violating_seeds = (0..trials)
        .filter(|seed| random_run_is_unsafe(n, f, *seed))
        .collect();
    SearchOutcome {
        n,
        f,
        trials,
        violating_seeds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_search_finds_violations_below_the_bound_only() {
        let under = search(4, 1, 200);
        assert!(
            !under.violating_seeds.is_empty(),
            "random schedules at n = 4f should trip over Theorem 5"
        );
        let at = search(5, 1, 200);
        assert!(
            at.violating_seeds.is_empty(),
            "n = 4f + 1 must survive every random schedule; failed seeds: {:?}",
            at.violating_seeds
        );
    }
}
