//! Shard-scaling bench: the same five-server fleet at 1, 4 and 16
//! register groups under uniform and Zipf-skewed key traffic, plus a
//! wide s = 64 leg with an m &lt; n placement over a larger fleet.
//!
//! The sharding layer's pitch is *contention isolation on unchanged
//! hardware*: every shard is a full BSR deployment over the same `n`
//! physical servers, so adding shards buys nothing in replication cost —
//! it only splits each server's single register-group mutex into `s`
//! independent ones, letting connections that serve different groups
//! proceed without queueing on one lock. This bench measures that split
//! directly: a fixed fleet (`n = 5`, `f = 1`), a fixed client fleet of
//! [`THREADS`] synchronous workers, and a put/get mix over [`KEYSPACE`]
//! keys, swept over `s ∈ {1, 4, 16}` × {uniform, Zipf(1.0)} skew.
//!
//! Two properties are asserted, matching the claims in DESIGN.md §9:
//!
//! * **Socket sharing** — every client transport ends each cell with
//!   exactly its fleet's worth of live sockets, never `s × n`:
//!   connections are keyed by physical server and multiplexed across
//!   every group the server hosts. The wide leg stresses this hardest —
//!   64 groups × 5 replicas is 320 logical endpoints through 7 sockets.
//! * **Monotone scaling** — median throughput does not degrade as shards
//!   grow, `rate(1) ⪅ rate(4) ⪅ rate(16)` per skew (with a small noise
//!   allowance, [`MONOTONE_SLACK`] — the harness runs on whatever CPU it
//!   gets, and on a single core the win is bounded by lock-churn savings,
//!   not parallelism).
//!
//! Cells run as interleaved trials (every cell once per round, medians
//! across [`TRIALS`] rounds) so clock drift and allocator warm-up smear
//! across the whole matrix instead of biasing one cell.

use std::sync::Mutex;
use std::time::Instant;

use safereg_common::config::QuorumConfig;
use safereg_common::ids::{ReaderId, ServerId, WriterId};
use safereg_common::rng::{DetRng, Zipf};
use safereg_common::shard::ShardMap;
use safereg_kv::client::KvClient;
use safereg_kv::server::KvMode;
use safereg_kv::tcp::TcpKvCluster;

/// Synchronous client workers per cell. More threads than cores is the
/// point: contention on the server-side group mutex is what shards split.
pub const THREADS: usize = 8;
/// Distinct keys; enough that 16 shards all own a useful slice.
pub const KEYSPACE: usize = 512;
/// Operations per thread per trial (1 put : 3 gets).
pub const OPS_PER_THREAD: usize = 96;
/// Trial rounds per cell; the reported rate and p99 are medians.
pub const TRIALS: usize = 5;
/// A cell may undercut its smaller-shard-count neighbour by at most this
/// factor before the monotone-scaling check fails. Generous on purpose:
/// on a shared single core the per-cell median still jitters by several
/// percent, and the property under test is "sharding never *costs*
/// throughput", not a fixed speed-up.
pub const MONOTONE_SLACK: f64 = 0.85;
/// Shard counts swept, smallest first (the monotone check walks pairs).
pub const SHARD_COUNTS: [u16; 3] = [1, 4, 16];
/// The wide leg: 64 register groups with an m &lt; n placement
/// ([`ShardMap::with_replicas`]) — each group is served by only
/// [`WIDE_M`] of the [`WIDE_FLEET`] physical servers, the
/// horizontal-scaling shape. Excluded from the monotone comparison (its
/// fleet differs) but fully subject to the socket-sharing invariant:
/// sockets stay bounded by the *fleet*, never `s × m`.
pub const WIDE_SHARDS: u16 = 64;
/// Physical servers in the wide leg's fleet.
pub const WIDE_FLEET: usize = 7;
/// Replicas per register group in the wide leg (m &lt; n).
pub const WIDE_M: usize = 5;
/// Per-group fault bound in the wide leg.
pub const WIDE_F: usize = 1;

/// Key-popularity skew for one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Skew {
    /// Every key equally likely.
    Uniform,
    /// Zipf(1.0) over the keyspace: rank-1 key dominates.
    Zipf,
}

impl Skew {
    fn label(self) -> &'static str {
        match self {
            Skew::Uniform => "uniform",
            Skew::Zipf => "zipf",
        }
    }
}

/// One (shards, skew) cell's median measurements.
#[derive(Debug, Clone)]
pub struct ShardCell {
    /// Register groups over the fleet.
    pub shards: u16,
    /// `"uniform"` or `"zipf"`.
    pub skew: &'static str,
    /// Operations completed per trial (all threads).
    pub ops: u64,
    /// Median throughput across trials.
    pub ops_per_sec: f64,
    /// Median-of-trials 99th-percentile op latency.
    pub p99_micros: u64,
    /// Fewest live sockets any client transport held at trial end.
    pub sockets_min: usize,
    /// Most live sockets any client transport held at trial end.
    pub sockets_max: usize,
    /// Physical fleet size this cell's socket invariant is judged
    /// against (`n` for the m = n matrix, [`WIDE_FLEET`] for the wide
    /// m &lt; n leg).
    pub fleet: usize,
}

/// The full matrix plus the fleet size the socket invariant is judged
/// against.
#[derive(Debug, Clone)]
pub struct ShardBenchResult {
    /// Physical servers (also every shard's replica-set size here).
    pub n: usize,
    /// One row per (shards, skew) cell.
    pub cells: Vec<ShardCell>,
    /// Hottest shard a Zipf client observed at `s = 16` (gauge readback).
    pub hot_shard: u16,
    /// Ops the hottest shard had absorbed when the run ended.
    pub hot_shard_ops: u64,
}

impl ShardBenchResult {
    /// Both invariants: exactly-`n` sockets everywhere, and per-skew
    /// throughput monotone (within [`MONOTONE_SLACK`]) in shard count.
    pub fn ok(&self) -> bool {
        self.sockets_ok() && self.monotone_ok()
    }

    /// Every cell's every transport ended with exactly its fleet's worth
    /// of sockets — `n` for the m = n matrix, [`WIDE_FLEET`] for the
    /// s = 64 m &lt; n leg, and never `s × m` anywhere.
    pub fn sockets_ok(&self) -> bool {
        self.cells
            .iter()
            .all(|c| c.sockets_min == c.fleet && c.sockets_max == c.fleet)
    }

    /// Per skew, walking [`SHARD_COUNTS`] in order never loses more than
    /// the noise allowance. The wide m &lt; n leg is excluded: it runs on
    /// a different fleet, so its rate is not comparable.
    pub fn monotone_ok(&self) -> bool {
        for skew in [Skew::Uniform, Skew::Zipf] {
            let rates: Vec<f64> = SHARD_COUNTS
                .iter()
                .filter_map(|s| {
                    self.cells
                        .iter()
                        .find(|c| c.shards == *s && c.skew == skew.label())
                        .map(|c| c.ops_per_sec)
                })
                .collect();
            if rates.len() != SHARD_COUNTS.len() {
                return false;
            }
            if rates.windows(2).any(|w| w[1] < w[0] * MONOTONE_SLACK) {
                return false;
            }
        }
        true
    }

    /// Renders `BENCH_shard.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"n\":{},", self.n));
        out.push_str(&format!(
            "\"hot_shard\":{},\"hot_shard_ops\":{},",
            self.hot_shard, self.hot_shard_ops
        ));
        out.push_str(&format!(
            "\"sockets_ok\":{},\"monotone_ok\":{},\"cells\":[",
            self.sockets_ok(),
            self.monotone_ok()
        ));
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"shards\":{},\"skew\":\"{}\",\"ops\":{},\"ops_per_sec\":{:.1},\
                 \"p99_micros\":{},\"sockets_min\":{},\"sockets_max\":{},\"fleet\":{}}}",
                c.shards,
                c.skew,
                c.ops,
                c.ops_per_sec,
                c.p99_micros,
                c.sockets_min,
                c.sockets_max,
                c.fleet
            ));
        }
        out.push_str("]}");
        out
    }
}

/// The synthetic key for popularity rank `r`.
fn key_of(rank: usize) -> Vec<u8> {
    format!("user-{rank:08}").into_bytes()
}

/// One live cluster: a cell's cluster persists across its trials so later
/// rounds measure steady state, not cold connects.
struct Cell {
    shards: u16,
    skew: Skew,
    /// Keep-alive: dropping the cluster stops its listeners mid-trial.
    _cluster: TcpKvCluster,
    map: ShardMap,
    /// One (client, transport) pair per worker thread, kept across trials
    /// so sequence numbers stay monotone.
    workers: Vec<(KvClient, safereg_kv::TcpKvTransport)>,
    /// Per-trial (ops, ops/sec, p99 µs, min sockets, max sockets).
    trials: Vec<(u64, f64, u64, usize, usize)>,
}

impl Cell {
    fn start(shards: u16, skew: Skew) -> std::io::Result<Cell> {
        let cfg = QuorumConfig::minimal_bsr(1).expect("n = 5 BSR point");
        let fleet: Vec<ServerId> = cfg.servers().collect();
        let map = if shards == 1 {
            ShardMap::single(cfg)
        } else {
            ShardMap::new(0x5AFE_BE9C, shards, fleet, cfg).expect("m = n fits the fleet")
        };
        let cluster = TcpKvCluster::builder(KvMode::Replicated, b"shard-bench")
            .shards(map.clone())
            .start()?;
        let workers = (0..THREADS)
            .map(|t| {
                let c = KvClient::sharded(map.clone(), WriterId(t as u16), ReaderId(t as u16));
                (c, cluster.transport())
            })
            .collect();
        Ok(Cell {
            shards,
            skew,
            _cluster: cluster,
            map,
            workers,
            trials: Vec::with_capacity(TRIALS),
        })
    }

    /// The wide m &lt; n leg: [`WIDE_SHARDS`] register groups placed over a
    /// [`WIDE_FLEET`]-server fleet with only [`WIDE_M`] replicas each.
    fn start_wide(skew: Skew) -> std::io::Result<Cell> {
        let fleet: Vec<ServerId> = (0..WIDE_FLEET as u16).map(ServerId).collect();
        let map = ShardMap::with_replicas(0x5AFE_3164, WIDE_SHARDS, fleet, WIDE_M, WIDE_F)
            .expect("m < n fits the fleet");
        let cluster = TcpKvCluster::builder(KvMode::Replicated, b"shard-bench-wide")
            .shards(map.clone())
            .start()?;
        let workers = (0..THREADS)
            .map(|t| {
                let c = KvClient::sharded(map.clone(), WriterId(t as u16), ReaderId(t as u16));
                (c, cluster.transport())
            })
            .collect();
        Ok(Cell {
            shards: WIDE_SHARDS,
            skew,
            _cluster: cluster,
            map,
            workers,
            trials: Vec::with_capacity(TRIALS),
        })
    }

    /// Runs one trial: all workers in parallel, each timing every op.
    fn trial(&mut self, round: usize) {
        let skew = self.skew;
        let shards = self.shards;
        let results: Mutex<Vec<(u64, Vec<u64>, usize)>> = Mutex::new(Vec::new());
        let start = Instant::now();
        std::thread::scope(|scope| {
            for (t, (client, transport)) in self.workers.iter_mut().enumerate() {
                let results = &results;
                scope.spawn(move || {
                    let mut rng = DetRng::seed_from(
                        0xD15C_0000 ^ (round as u64) << 32 ^ (u64::from(shards)) << 16 ^ t as u64,
                    );
                    let zipf = Zipf::new(KEYSPACE, 1.0);
                    let mut lat = Vec::with_capacity(OPS_PER_THREAD);
                    let mut done = 0u64;
                    for i in 0..OPS_PER_THREAD {
                        let rank = match skew {
                            Skew::Uniform => rng.index(KEYSPACE),
                            Skew::Zipf => zipf.sample(&mut rng),
                        };
                        let key = key_of(rank);
                        let t0 = Instant::now();
                        let ok = if i % 4 == 0 {
                            client
                                .put(transport, &key, format!("r{round}:{i}").into_bytes())
                                .is_ok()
                        } else {
                            client.get(transport, &key).is_ok()
                        };
                        if ok {
                            lat.push(t0.elapsed().as_micros() as u64);
                            done += 1;
                        }
                    }
                    let sockets = transport.live_sockets();
                    results
                        .lock()
                        .expect("results lock")
                        .push((done, lat, sockets));
                });
            }
        });
        let wall = start.elapsed().as_secs_f64();
        let per_thread = results.into_inner().expect("results lock");
        let ops: u64 = per_thread.iter().map(|(d, _, _)| d).sum();
        let mut lat: Vec<u64> = per_thread
            .iter()
            .flat_map(|(_, l, _)| l.iter().copied())
            .collect();
        lat.sort_unstable();
        let p99 = lat
            .get((lat.len().saturating_sub(1)) * 99 / 100)
            .copied()
            .unwrap_or(0);
        let sockets_min = per_thread.iter().map(|(_, _, s)| *s).min().unwrap_or(0);
        let sockets_max = per_thread.iter().map(|(_, _, s)| *s).max().unwrap_or(0);
        self.trials.push((
            ops,
            ops as f64 / wall.max(1e-9),
            p99,
            sockets_min,
            sockets_max,
        ));
    }

    fn into_cell(self) -> ShardCell {
        let mut by_rate = self.trials.clone();
        by_rate.sort_by(|a, b| a.1.total_cmp(&b.1));
        let median = by_rate[by_rate.len() / 2];
        let mut p99s: Vec<u64> = self.trials.iter().map(|t| t.2).collect();
        p99s.sort_unstable();
        ShardCell {
            shards: self.shards,
            skew: self.skew.label(),
            ops: median.0,
            ops_per_sec: median.1,
            p99_micros: p99s[p99s.len() / 2],
            sockets_min: self.trials.iter().map(|t| t.3).min().unwrap_or(0),
            sockets_max: self.trials.iter().map(|t| t.4).max().unwrap_or(0),
            fleet: self.map.fleet().len(),
        }
    }
}

/// Runs the full matrix and returns the measurements.
///
/// # Panics
///
/// Panics if the cluster cannot bind loopback listeners.
pub fn run() -> ShardBenchResult {
    let n = QuorumConfig::minimal_bsr(1).expect("n = 5 BSR point").n();
    let mut cells: Vec<Cell> = SHARD_COUNTS
        .iter()
        .flat_map(|&s| [Skew::Uniform, Skew::Zipf].map(|skew| (s, skew)))
        .map(|(s, skew)| Cell::start(s, skew).expect("bind loopback listeners"))
        .collect();
    // The wide m < n leg rides the same interleaved trial schedule; one
    // skew is enough — the invariant under test is socket sharing, not
    // popularity response.
    cells.push(Cell::start_wide(Skew::Uniform).expect("bind loopback listeners"));
    // Warm-up round (not recorded): connects sockets, faults in code paths.
    for cell in &mut cells {
        let keep = std::mem::take(&mut cell.trials);
        cell.trial(usize::MAX);
        cell.trials = keep;
    }
    for round in 0..TRIALS {
        for cell in &mut cells {
            cell.trial(round);
        }
    }
    // Gauge readback: the s = 16 Zipf cell's clients tracked their hottest
    // shard; report the hottest across that cell's workers.
    let (mut hot_shard, mut hot_ops) = (0u16, 0u64);
    if let Some(cell) = cells
        .iter()
        .find(|c| c.shards == 16 && c.skew == Skew::Zipf)
    {
        for (client, _) in &cell.workers {
            let (g, o) = client.hot_shard();
            if o > hot_ops {
                hot_ops = o;
                hot_shard = g;
            }
        }
        debug_assert!(cell.map.num_shards() == 16);
    }
    ShardBenchResult {
        n,
        cells: cells.into_iter().map(Cell::into_cell).collect(),
        hot_shard,
        hot_shard_ops: hot_ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A down-scaled single cell: the socket-sharing invariant must hold
    /// (16 shards, still exactly `n` sockets per client).
    #[test]
    fn sixteen_shards_share_n_sockets() {
        let mut cell = Cell::start(16, Skew::Uniform).expect("bind listeners");
        cell.trial(0);
        let (_, _, _, lo, hi) = cell.trials[0];
        let n = QuorumConfig::minimal_bsr(1).unwrap().n();
        assert_eq!(lo, n, "a client transport holds fewer than n sockets");
        assert_eq!(hi, n, "a client transport opened more than n sockets");
    }

    /// The wide leg: 64 register groups, each on only m = 5 of a
    /// 7-server fleet — sockets stay exactly the fleet size (7), never
    /// `s × m` (320).
    #[test]
    fn wide_m_lt_n_leg_shares_fleet_sockets() {
        let mut cell = Cell::start_wide(Skew::Uniform).expect("bind listeners");
        cell.trial(0);
        let (ops, _, _, lo, hi) = cell.trials[0];
        assert!(ops > 0, "wide cell made no progress");
        assert_eq!(lo, WIDE_FLEET, "a transport holds fewer than fleet sockets");
        assert_eq!(hi, WIDE_FLEET, "a transport opened more than fleet sockets");
        assert_eq!(
            cell.map.shard_config().n(),
            WIDE_M,
            "per-group replica count"
        );
    }
}
