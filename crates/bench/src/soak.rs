//! Memory-bounded soak: the live TCP kv stack under rotating Byzantine
//! replicas, server-side chaos and crash/restarts, checked incrementally.
//!
//! The [`chaos`](crate::chaos) scenario runs a short, client-side-faulted
//! workload and checks the full recorded history afterwards. The soak is
//! the long-haul complement: `N` writer and `M` reader threads hammer a
//! chaos-fronted [`TcpKvCluster`] for several *epochs*, and in every epoch
//!
//! * up to `f` replicas play a live Byzantine role from
//!   [`ByzRole::FAULTY`], rotating both the afflicted replica and the role
//!   each epoch ([`ByzRole::for_epoch`]);
//! * every replica's accept path runs behind a server-side
//!   [`ChaosProxy`](safereg_transport::chaos::ChaosProxy) whose
//!   [`FaultPlan`] seed rotates per epoch (`seed ^ epoch`);
//! * a supervisor kills and respawns the Byzantine replicas mid-epoch —
//!   never more than `f` faulty at any instant, since the restarted
//!   replica *is* the faulty one;
//! * with [`SoakConfig::continuous`], the supervisor additionally drives
//!   a seeded arrival/departure membership process: a couple of
//!   reconfigurations per epoch at [`DetRng`]-drawn gaps, where joiners
//!   take fresh ids and only joiners ever depart — so the rotating
//!   Byzantine host is always a base member and faults stay ≤ `f`.
//!
//! Safety is judged online by one [`WindowedChecker`] per key, so memory
//! stays flat no matter how many operations run: reads are checked at
//! completion and forgotten, superseded writes are pruned. A watchdog
//! snapshots `VmRSS` and the completed-op counter per epoch; the run fails
//! on monotone RSS growth beyond a slack or on an epoch that completed
//! nothing. Rebuilding every epoch's [`FaultPlan`] from its seed must
//! reproduce the identical fault schedule ([`FaultPlan::fingerprint`]),
//! so any failure is replayable from the `--seed` alone.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use safereg_checker::{Violation, WindowedChecker};
use safereg_common::config::{BackoffPolicy, QuorumConfig, TransportConfig};
use safereg_common::ids::{ReaderId, ServerId, WriterId};
use safereg_common::msg::OpId;
use safereg_common::rng::DetRng;
use safereg_common::shard::ShardMap;
use safereg_common::value::Value;
use safereg_core::behavior::ByzRole;
use safereg_kv::{KvClient, KvMode, TcpKvCluster};
use safereg_obs::names;
use safereg_transport::chaos::{Direction, FaultPlan, FaultSpec};

/// Knobs for one soak run.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Total operations budgeted across all threads and epochs.
    pub ops: u64,
    /// Byzantine replicas per epoch, clamped to the deployment's `f`.
    pub byz: usize,
    /// Master seed: feeds every epoch's fault plan (`seed ^ epoch`) and
    /// the Byzantine servers' forgery streams.
    pub seed: u64,
    /// Epochs (role-rotation periods). The RSS watchdog needs at least 2.
    pub epochs: usize,
    /// Writer threads.
    pub writers: usize,
    /// Reader threads.
    pub readers: usize,
    /// Distinct keys; writers cycle through all of them every epoch so
    /// each key is re-written between replica restarts (state lost by a
    /// respawned replica is replenished before the next one loses its).
    pub keys: usize,
    /// Register-group shards. `1` is the classic single-group soak; above
    /// that the cluster runs a [`ShardMap`] over the same `n` servers and
    /// Byzantine roles rotate **independently per shard**: each epoch one
    /// victim host turns Byzantine with a *different* role in every group
    /// it serves, so every shard still has at most `f` faulty replicas.
    pub shards: u16,
    /// Wall-clock target in minutes. `0` (the default) runs exactly
    /// `epochs` role-rotation periods; above that the soak keeps cycling
    /// further epochs — same per-epoch op quota, rotating seeds — until
    /// the target has elapsed, so one flag turns the smoke run into an
    /// overnight burn-in without retuning `ops`/`epochs`.
    pub minutes: u64,
    /// Layer a seeded arrival/departure process on top of the workload:
    /// each epoch the supervisor also fires a couple of membership
    /// reconfigurations at [`DetRng`]-drawn inter-arrival gaps — a fresh
    /// replica joins when no joiner is live, otherwise a joiner departs.
    /// Joiners take ids from 100 upward and only joiners ever leave, so
    /// the base membership (and the Byzantine victim rotation over it)
    /// is untouched and live faults stay ≤ `f` per shard.
    pub continuous: bool,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            ops: 20_000,
            byz: 1,
            seed: 7,
            epochs: 5,
            writers: 4,
            readers: 4,
            keys: 4,
            shards: 1,
            minutes: 0,
            continuous: false,
        }
    }
}

/// Watchdog snapshot taken at the end of each epoch.
#[derive(Debug, Clone)]
pub struct EpochStat {
    /// Epoch index.
    pub epoch: usize,
    /// The replicas that played a Byzantine role this epoch, with labels.
    pub byz: Vec<(ServerId, &'static str)>,
    /// Operations completed during this epoch.
    pub ops_completed: u64,
    /// Operations abandoned during this epoch (retry budget exhausted).
    pub failures: u64,
    /// Wall-clock duration of the epoch's workload in milliseconds.
    pub millis: u64,
    /// `VmRSS` in KiB at epoch end (0 when `/proc` is unavailable).
    pub rss_kib: u64,
    /// `server.evictions` accumulated since the run started.
    pub evictions: u64,
    /// `server.restarts` accumulated since the run started.
    pub restarts: u64,
}

/// Per-shard traffic accounting for a sharded soak, read back as deltas
/// of the global `kv.shard.*` series across the run.
#[derive(Debug, Clone)]
pub struct ShardSoakStat {
    /// The shard.
    pub shard: u16,
    /// Operations this run completed against the shard.
    pub ops: u64,
    /// Fast-read share of the run's reads on this shard, in permille
    /// (1000 when the shard saw no reads — vacuously all-fast).
    pub fast_ratio_permille: u64,
}

/// Outcome of one soak run.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// The master seed (reproduces the whole fault schedule).
    pub seed: u64,
    /// Register-group shards the run was partitioned into.
    pub shards: u16,
    /// Per-shard traffic deltas (one entry per shard, including idle ones).
    pub shard_stats: Vec<ShardSoakStat>,
    /// Operations attempted.
    pub ops_attempted: u64,
    /// Operations completed.
    pub ops_completed: u64,
    /// Operations abandoned after soak-level retries.
    pub failures: u64,
    /// Per-key safety violations found by the windowed checkers.
    pub violations: Vec<Violation>,
    /// Reads judged across all keys.
    pub reads_checked: u64,
    /// Largest per-key checker window seen — the memory bound in records.
    pub peak_window: usize,
    /// Records pruned across all keys.
    pub pruned: u64,
    /// Per-epoch watchdog snapshots.
    pub epochs: Vec<EpochStat>,
    /// RSS did not grow monotonically beyond the slack across epochs.
    pub rss_bounded: bool,
    /// Every epoch completed at least one operation.
    pub progressed: bool,
    /// Every epoch's fault plan, rebuilt from its seed, reproduced the
    /// identical schedule bytes.
    pub schedule_reproducible: bool,
    /// The run layered the seeded arrival/departure process on top.
    pub continuous: bool,
    /// Membership reconfigurations (joins + departures) the continuous
    /// process applied across all epochs.
    pub reconfig_events: u64,
}

impl SoakReport {
    /// The acceptance predicate the CI smoke run greps for. Individual
    /// operation failures under chaos are expected (and retried); what
    /// must hold is safety, bounded memory, progress and replayability.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
            && self.rss_bounded
            && self.progressed
            && self.schedule_reproducible
            && (!self.continuous || self.reconfig_events > 0)
    }

    /// Line-oriented JSON for `BENCH_soak.json`.
    pub fn to_json(&self) -> String {
        let shard_stats: Vec<String> = self
            .shard_stats
            .iter()
            .map(|s| {
                format!(
                    "{{\"shard\":{},\"ops\":{},\"fast_ratio_permille\":{}}}",
                    s.shard, s.ops, s.fast_ratio_permille
                )
            })
            .collect();
        format!(
            concat!(
                "{{\"seed\":{},\"shards\":{},\"shard_stats\":[{}],",
                "\"ops_attempted\":{},\"ops_completed\":{},",
                "\"failures\":{},\"violations\":{},\"reads_checked\":{},",
                "\"peak_window\":{},\"pruned\":{},\"epochs\":{},",
                "\"rss_bounded\":{},\"progressed\":{},",
                "\"schedule_reproducible\":{},\"continuous\":{},",
                "\"reconfig_events\":{},\"ok\":{}}}\n"
            ),
            self.seed,
            self.shards,
            shard_stats.join(","),
            self.ops_attempted,
            self.ops_completed,
            self.failures,
            self.violations.len(),
            self.reads_checked,
            self.peak_window,
            self.pruned,
            self.epochs.len(),
            self.rss_bounded,
            self.progressed,
            self.schedule_reproducible,
            self.continuous,
            self.reconfig_events,
            self.ok()
        )
    }
}

/// `VmRSS` of this process in KiB, 0 where `/proc` is unavailable.
fn rss_kib() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmRSS:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// Growth slack for the RSS watchdog: strictly-monotone growth below this
/// total is tolerated (allocator warmup, thread stacks), above it the run
/// is flagged as leaking.
const RSS_SLACK_KIB: u64 = 8 * 1024;

/// Pins glibc to its main malloc arena for the rest of the process.
///
/// The restart ladder churns server threads, and glibc answers each
/// burst of cross-thread contention by spinning up a fresh per-thread
/// arena it never returns to the OS — so a leak-free run still shows
/// strictly-monotone RSS growth for far longer than the soak's epoch
/// window and trips the watchdog. Capping the arena count makes the
/// RSS series measure the workload, not the allocator: with one arena
/// the same run plateaus mid-soak. Loopback ops spend their time in
/// syscalls and MACs, not malloc, so the lost arena parallelism is
/// noise here.
#[cfg(all(target_os = "linux", target_env = "gnu"))]
fn pin_malloc_arena() {
    const M_ARENA_MAX: i32 = -8;
    extern "C" {
        fn mallopt(param: i32, value: i32) -> i32;
    }
    unsafe {
        mallopt(M_ARENA_MAX, 1);
    }
}

#[cfg(not(all(target_os = "linux", target_env = "gnu")))]
fn pin_malloc_arena() {}

/// Soak-level retries per operation; each retry is a fresh protocol
/// operation, the checker keeps judging the one logical op.
const OP_RETRIES: usize = 4;

/// Transport policy tuned for the soak's fault mix. The kv transport is
/// synchronous, so every dropped/killed frame stalls the client one full
/// `io_timeout` on the critical path — and the mild chaos spec faults a
/// few percent of frames, so the timeout is the soak's unit of wasted
/// time. Correct replicas on loopback answer in microseconds and injected
/// delays cap at 5 ms, so 30 ms is still a 6× margin. In-op retries
/// re-ask unreachable servers *and* reachable-but-silent ones (dropped
/// or corrupted responses), so one extra pass heals most single-frame
/// faults; beyond that the soak retries with a fresh operation, which
/// re-asks everyone. The long breaker cooldown keeps Silent-replica
/// probes rare.
fn soak_transport() -> TransportConfig {
    TransportConfig {
        connect_timeout: Duration::from_millis(250),
        op_deadline: Duration::from_secs(3),
        io_timeout: Duration::from_millis(30),
        retry_budget: 1,
        backoff: BackoffPolicy {
            base: Duration::from_millis(20),
            cap: Duration::from_millis(1000),
            jitter_permille: 200,
        },
        breaker_threshold: 3,
        ..TransportConfig::aggressive()
    }
}

/// Runs the soak against an `n = 4f + 1`, `f = 1` replicated deployment
/// (each of `cfg.shards` register groups runs that same `(m, f)` point
/// over the shared fleet).
///
/// # Panics
///
/// Panics when the cluster cannot be started or a replica cannot be
/// respawned — environment failures, not soak outcomes.
#[allow(clippy::too_many_lines)]
pub fn soak_run(cfg: &SoakConfig) -> SoakReport {
    pin_malloc_arena();
    let q = QuorumConfig::minimal_bsr(1).expect("n = 5, f = 1 is valid");
    let n = q.n();
    let byz_n = cfg.byz.min(q.f());
    let epochs = cfg.epochs.max(1);
    let tconfig = soak_transport();
    let shards = cfg.shards.max(1);
    let map = if shards == 1 {
        ShardMap::single(q)
    } else {
        ShardMap::new(cfg.seed, shards, q.servers().collect(), q).expect("m = n fits the fleet")
    };

    let reg = safereg_obs::global();
    let evictions_base = reg.counter(names::SERVER_EVICTIONS).get();
    let restarts_base = reg.counter(names::SERVER_RESTARTS).get();
    // Per-shard series are global and cumulative; deltas isolate this run.
    let shard_base: Vec<(u64, u64, u64)> = map
        .shards()
        .map(|g| {
            (
                reg.counter(&names::shard_ops_counter(g.0)).get(),
                reg.counter(&names::shard_reads_counter(g.0, "fast")).get(),
                reg.counter(&names::shard_reads_counter(g.0, "slow")).get(),
            )
        })
        .collect();

    let cluster = TcpKvCluster::builder(KvMode::Replicated, b"soak-harness")
        .shards(map.clone())
        .config(tconfig)
        .chaos(FaultPlan::new(cfg.seed, FaultSpec::mild()))
        .start()
        .expect("start soak cluster");
    let cluster = Mutex::new(cluster);

    let keys: Vec<Vec<u8>> = (0..cfg.keys.max(1))
        .map(|k| format!("soak-k{k}").into_bytes())
        .collect();
    let checkers: Vec<Mutex<WindowedChecker>> = keys
        .iter()
        .map(|_| Mutex::new(WindowedChecker::new()))
        .collect();
    // Logical clock for checker instants; fetched while holding the key's
    // checker lock, so per key the feed order matches the instant order.
    let clock = AtomicU64::new(1);

    // Clients persist across epochs: a fresh client would restart its
    // sequence numbers, and the replicas would rightly ignore the stale
    // tags — which the checker would then flag as failed writes.
    let mut writer_clients: Vec<(KvClient, safereg_kv::TcpKvTransport)> = (0..cfg.writers.max(1))
        .map(|w| {
            let mut c =
                KvClient::sharded(map.clone(), WriterId(w as u16), ReaderId(100 + w as u16));
            c.set_policy(tconfig);
            (
                c,
                cluster
                    .lock()
                    .expect("cluster lock")
                    .transport_with(tconfig),
            )
        })
        .collect();
    let mut reader_clients: Vec<(KvClient, safereg_kv::TcpKvTransport)> = (0..cfg.readers.max(1))
        .map(|r| {
            let mut c =
                KvClient::sharded(map.clone(), WriterId(200 + r as u16), ReaderId(r as u16));
            c.set_policy(tconfig);
            (
                c,
                cluster
                    .lock()
                    .expect("cluster lock")
                    .transport_with(tconfig),
            )
        })
        .collect();
    // Dedicated writer for the sharded boundary scrub (see the epoch loop);
    // its own identity keeps its sequence numbers off the workload writers'.
    let mut scrub: (KvClient, safereg_kv::TcpKvTransport) = {
        let mut c = KvClient::sharded(map.clone(), WriterId(250), ReaderId(250));
        c.set_policy(tconfig);
        (
            c,
            cluster
                .lock()
                .expect("cluster lock")
                .transport_with(tconfig),
        )
    };

    let attempted = AtomicU64::new(0);
    let completed = AtomicU64::new(0);
    let failures = AtomicU64::new(0);

    let threads = (writer_clients.len() + reader_clients.len()) as u64;
    let quota = (cfg.ops / (epochs as u64 * threads)).max(1);

    let mut stats: Vec<EpochStat> = Vec::with_capacity(epochs);
    let mut current_byz: Vec<ServerId> = Vec::new();
    let mut epoch_seeds: Vec<u64> = Vec::with_capacity(epochs);

    // `--continuous` bookkeeping. Joiners arrive under fresh ids (100+)
    // and only joiners ever depart, so the base membership — and with it
    // the Byzantine victim rotation over ids `0..n` — is never
    // reconfigured away: the at-most-one faulty host is always a base
    // member and every joiner is honest, keeping live faults ≤ `f` per
    // shard throughout.
    let joiners: Mutex<Vec<ServerId>> = Mutex::new(Vec::new());
    let next_join_id = AtomicU64::new(100);
    let reconfig_events = AtomicU64::new(0);

    // `--minutes` trades the fixed epoch count for a wall-clock target:
    // the loop keeps rotating further epochs (fresh seeds, same quota)
    // until the deadline passes, with at least `epochs` always run.
    let soak_started = std::time::Instant::now();
    let deadline = (cfg.minutes > 0).then(|| Duration::from_secs(cfg.minutes * 60));
    let mut e = 0usize;
    loop {
        let eseed = cfg.seed ^ e as u64;
        epoch_seeds.push(eseed);

        // Epoch boundary: rotate the fault-plan seed and the Byzantine
        // assignment. Restores run before conversions so the faulty set
        // never exceeds `f` replicas at any instant — a restore's
        // restart-in-place is a transient fault of an already-faulty
        // replica, and only then does a fresh replica turn Byzantine.
        let byz_now: Vec<(ServerId, &'static str)> = {
            let mut cl = cluster.lock().expect("cluster lock");
            cl.set_plan(Some(FaultPlan::new(eseed, FaultSpec::mild())));
            if map.num_shards() == 1 {
                let next: Vec<(ServerId, ByzRole)> = (0..byz_n)
                    .map(|i| {
                        (
                            ServerId(((e + i) % n) as u16),
                            ByzRole::for_epoch(e as u64, i),
                        )
                    })
                    .collect();
                for sid in current_byz.drain(..) {
                    if !next.iter().any(|(s, _)| *s == sid) {
                        cl.set_role(sid, KvMode::Replicated, ByzRole::Correct, 0)
                            .expect("restore replica");
                    }
                }
                for (sid, role) in &next {
                    cl.set_role(*sid, KvMode::Replicated, *role, eseed)
                        .expect("convert replica");
                }
                current_byz = next.iter().map(|(s, _)| *s).collect();
                next.iter().map(|(s, r)| (*s, r.label())).collect()
            } else if byz_n == 0 {
                current_byz.clear();
                Vec::new()
            } else {
                // Sharded rotation, step 1 of 3: restore last epoch's
                // victim to honest service (live — its register state is
                // frozen at whatever it held before turning Byzantine).
                for sid in current_byz.drain(..) {
                    for g in cl.map().shards_of_server(sid) {
                        cl.set_shard_role(sid, g, ByzRole::Correct, 0);
                    }
                }
                Vec::new()
            }
        };
        // Sharded rotation, steps 2 and 3. The restored replica missed
        // every write of the epoch it spent Byzantine, so before the next
        // victim converts, a scrub re-writes every key: the amnesiac
        // catches up while *zero* replicas are faulty, keeping each
        // shard's effective fault count at `f` across the boundary (the
        // same replenish-between-state-losses invariant the single-group
        // soak documents on `SoakConfig::keys`). Only then does the new
        // victim turn Byzantine — with a different live role per register
        // group it serves, so roles rotate independently per shard while
        // all faulty groups still share one physical host.
        let byz_now: Vec<(ServerId, &'static str)> = if map.num_shards() > 1 && byz_n > 0 {
            let (scrub_client, scrub_transport) = &mut scrub;
            for (kidx, key) in keys.iter().enumerate() {
                let value = format!("scrub:e{e}:{kidx}");
                let op = OpId::new(
                    WriterId(250),
                    e as u64 * keys.len() as u64 + kidx as u64 + 1,
                );
                attempted.fetch_add(1, Ordering::Relaxed);
                let h = {
                    let mut c = checkers[kidx].lock().expect("checker lock");
                    let at = clock.fetch_add(1, Ordering::Relaxed);
                    c.begin_write(op, Value::from(value.clone().into_bytes()), at)
                };
                let mut tag = None;
                for attempt in 0..OP_RETRIES {
                    match scrub_client.put(scrub_transport, key, value.clone().into_bytes()) {
                        Ok(t) => {
                            tag = Some(t);
                            break;
                        }
                        Err(_) if attempt + 1 < OP_RETRIES => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => {}
                    }
                }
                let mut c = checkers[kidx].lock().expect("checker lock");
                let at = clock.fetch_add(1, Ordering::Relaxed);
                match tag {
                    Some(t) => {
                        c.complete_write(h, t, at);
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                    None => {
                        c.abandon(h);
                        failures.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            let cl = cluster.lock().expect("cluster lock");
            let victim = ServerId((e % n) as u16);
            let mut labels = Vec::new();
            for g in cl.map().shards_of_server(victim) {
                let role = ByzRole::for_epoch(e as u64, g.0 as usize);
                assert!(
                    cl.set_shard_role(victim, g, role, eseed ^ u64::from(g.0)),
                    "victim must serve its placed shard"
                );
                labels.push((victim, role.label()));
            }
            current_byz = vec![victim];
            labels
        } else {
            byz_now
        };

        let epoch_completed_base = completed.load(Ordering::Relaxed);
        let epoch_failures_base = failures.load(Ordering::Relaxed);
        let epoch_started = std::time::Instant::now();

        let keys = &keys;
        let checkers = &checkers;
        let clock = &clock;
        let attempted = &attempted;
        let completed = &completed;
        let failures = &failures;
        let cluster_ref = &cluster;
        let supervisor_byz = current_byz.clone();
        let joiners = &joiners;
        let next_join_id = &next_join_id;
        let reconfig_events = &reconfig_events;
        let continuous = cfg.continuous;

        std::thread::scope(|s| {
            // Crash/restart supervisor: mid-epoch, kill and respawn the
            // Byzantine replicas in place (same role, same seed, same
            // advertised address). The faulty set is unchanged, so the
            // run never has more than `f` faulty replicas; with no
            // Byzantine replicas configured, one correct replica takes
            // the crash instead (`≤ f` either way).
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(200));
                let mut cl = cluster_ref.lock().expect("cluster lock");
                if supervisor_byz.is_empty() {
                    let _ = cl.restart(ServerId((e % n) as u16), KvMode::Replicated);
                } else if cl.map().num_shards() == 1 {
                    for (i, sid) in supervisor_byz.iter().enumerate() {
                        let _ = cl.set_role(
                            *sid,
                            KvMode::Replicated,
                            ByzRole::for_epoch(e as u64, i),
                            eseed,
                        );
                    }
                } else {
                    // Crash-recover the (already faulty) victim, then put
                    // its per-shard roles back: the faulty set never grows
                    // beyond the one host, in any shard.
                    for sid in supervisor_byz {
                        let _ = cl.restart(sid, KvMode::Replicated);
                        for g in cl.map().shards_of_server(sid) {
                            cl.set_shard_role(
                                sid,
                                g,
                                ByzRole::for_epoch(e as u64, g.0 as usize),
                                eseed ^ u64::from(g.0),
                            );
                        }
                    }
                }
                drop(cl);

                // Continuous churn: a seeded arrival/departure process
                // replaces the fixed membership — a couple of events per
                // epoch at DetRng-drawn gaps, replayable from the epoch
                // seed. Arrivals mint fresh ids; departures only ever
                // pick a joiner, so the base fleet stays put and the
                // faulty-host count never exceeds `f` in any shard.
                if continuous {
                    let mut rng = DetRng::seed_from(eseed ^ 0x50A7_C027);
                    for _ in 0..2 {
                        std::thread::sleep(Duration::from_millis(rng.range_u64(60..200)));
                        let mut cl = cluster_ref.lock().expect("cluster lock");
                        let mut js = joiners.lock().expect("joiners lock");
                        let applied = if js.is_empty() {
                            let sid = ServerId(next_join_id.fetch_add(1, Ordering::Relaxed) as u16);
                            cl.add_replica(sid).map(|()| js.push(sid)).is_ok()
                        } else {
                            let idx = rng.index(js.len());
                            match cl.remove_replica(js[idx]) {
                                Ok(()) => {
                                    js.swap_remove(idx);
                                    true
                                }
                                Err(_) => false,
                            }
                        };
                        if applied {
                            reconfig_events.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });

            for (w, (client, transport)) in writer_clients.iter_mut().enumerate() {
                s.spawn(move || {
                    let nk = keys.len();
                    for i in 0..quota {
                        let kidx = (w + i as usize) % nk;
                        let value = format!("w{w}:e{e}:{i}");
                        let op = OpId::new(WriterId(w as u16), e as u64 * quota + i + 1);
                        attempted.fetch_add(1, Ordering::Relaxed);
                        let h = {
                            let mut c = checkers[kidx].lock().expect("checker lock");
                            let at = clock.fetch_add(1, Ordering::Relaxed);
                            c.begin_write(op, Value::from(value.clone().into_bytes()), at)
                        };
                        let mut tag = None;
                        for attempt in 0..OP_RETRIES {
                            match client.put(transport, &keys[kidx], value.clone().into_bytes()) {
                                Ok(t) => {
                                    tag = Some(t);
                                    break;
                                }
                                Err(_) if attempt + 1 < OP_RETRIES => {
                                    std::thread::sleep(Duration::from_millis(10));
                                }
                                Err(_) => {}
                            }
                        }
                        let mut c = checkers[kidx].lock().expect("checker lock");
                        let at = clock.fetch_add(1, Ordering::Relaxed);
                        match tag {
                            Some(t) => {
                                c.complete_write(h, t, at);
                                completed.fetch_add(1, Ordering::Relaxed);
                            }
                            None => {
                                c.abandon(h);
                                failures.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        if i % 32 == 31 {
                            c.prune();
                        }
                    }
                });
            }

            for (r, (client, transport)) in reader_clients.iter_mut().enumerate() {
                s.spawn(move || {
                    let nk = keys.len();
                    for i in 0..quota {
                        let kidx = (r + i as usize) % nk;
                        let op = OpId::new(ReaderId(r as u16), e as u64 * quota + i + 1);
                        attempted.fetch_add(1, Ordering::Relaxed);
                        let h = {
                            let mut c = checkers[kidx].lock().expect("checker lock");
                            let at = clock.fetch_add(1, Ordering::Relaxed);
                            c.begin_read(op, at)
                        };
                        let mut out = None;
                        for attempt in 0..OP_RETRIES {
                            match client.get_with_tag(transport, &keys[kidx]) {
                                Ok(vt) => {
                                    out = Some(vt);
                                    break;
                                }
                                Err(_) if attempt + 1 < OP_RETRIES => {
                                    std::thread::sleep(Duration::from_millis(10));
                                }
                                Err(_) => {}
                            }
                        }
                        let mut c = checkers[kidx].lock().expect("checker lock");
                        let at = clock.fetch_add(1, Ordering::Relaxed);
                        match out {
                            Some((v, t)) => {
                                c.complete_read(h, v, t, at);
                                completed.fetch_add(1, Ordering::Relaxed);
                            }
                            None => {
                                c.abandon(h);
                                failures.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        if i % 32 == 31 {
                            c.prune();
                        }
                    }
                });
            }
        });

        stats.push(EpochStat {
            epoch: e,
            byz: byz_now,
            ops_completed: completed.load(Ordering::Relaxed) - epoch_completed_base,
            failures: failures.load(Ordering::Relaxed) - epoch_failures_base,
            millis: epoch_started.elapsed().as_millis() as u64,
            rss_kib: rss_kib(),
            evictions: reg.counter(names::SERVER_EVICTIONS).get() - evictions_base,
            restarts: reg.counter(names::SERVER_RESTARTS).get() - restarts_base,
        });
        e += 1;
        let done = match deadline {
            Some(d) => e >= epochs && soak_started.elapsed() >= d,
            None => e >= epochs,
        };
        if done {
            break;
        }
    }

    let mut violations = Vec::new();
    let mut reads_checked = 0;
    let mut peak_window = 0;
    let mut pruned = 0;
    for c in &checkers {
        let mut c = c.lock().expect("checker lock");
        c.prune();
        violations.extend(c.take_violations());
        reads_checked += c.reads_checked();
        peak_window = peak_window.max(c.peak_window());
        pruned += c.pruned();
    }

    let rss: Vec<u64> = stats.iter().map(|s| s.rss_kib).collect();
    let strictly_up = rss.len() >= 2 && rss.windows(2).all(|w| w[1] > w[0]);
    let growth = rss
        .last()
        .copied()
        .unwrap_or(0)
        .saturating_sub(rss.first().copied().unwrap_or(0));
    let rss_bounded = !(strictly_up && growth > RSS_SLACK_KIB);
    let progressed = stats.iter().all(|s| s.ops_completed > 0);

    // Flight-recorder hooks: a watchdog trip or a checker violation spills
    // the last few thousand spans to stderr so the failure arrives with
    // its causal context attached (empty book-ends when sampling was off).
    if !rss_bounded || !progressed {
        safereg_obs::dump_flight("watchdog");
    }
    if !violations.is_empty() {
        safereg_obs::dump_flight("violation");
    }

    // The same master seed must reproduce every epoch's fault schedule
    // exactly — this is what makes a soak failure replayable.
    let dirs = [Direction::ClientToServer, Direction::ServerToClient];
    let schedule_reproducible = epoch_seeds.iter().all(|&es| {
        let a = FaultPlan::new(es, FaultSpec::mild());
        let b = FaultPlan::new(es, FaultSpec::mild());
        (0..n as u16).all(|s| {
            dirs.iter().all(|&d| {
                (0..2).all(|conn| {
                    a.fingerprint(ServerId(s), conn, d, 128)
                        == b.fingerprint(ServerId(s), conn, d, 128)
                })
            })
        })
    });

    let shard_stats: Vec<ShardSoakStat> = map
        .shards()
        .zip(&shard_base)
        .map(|(g, &(ops0, fast0, slow0))| {
            let ops = reg.counter(&names::shard_ops_counter(g.0)).get() - ops0;
            let fast = reg.counter(&names::shard_reads_counter(g.0, "fast")).get() - fast0;
            let slow = reg.counter(&names::shard_reads_counter(g.0, "slow")).get() - slow0;
            ShardSoakStat {
                shard: g.0,
                ops,
                // A shard that saw no reads is vacuously all-fast.
                fast_ratio_permille: (fast * 1000).checked_div(fast + slow).unwrap_or(1000),
            }
        })
        .collect();

    SoakReport {
        seed: cfg.seed,
        shards: map.num_shards(),
        shard_stats,
        ops_attempted: attempted.into_inner(),
        ops_completed: completed.into_inner(),
        failures: failures.into_inner(),
        violations,
        reads_checked,
        peak_window,
        pruned,
        epochs: stats,
        rss_bounded,
        progressed,
        schedule_reproducible,
        continuous: cfg.continuous,
        reconfig_events: reconfig_events.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature soak: two epochs, one Byzantine replica rotating role,
    /// mid-epoch restarts, server-side chaos — no safety violations, and
    /// the schedule replays from the seed.
    #[test]
    fn tiny_soak_is_safe_and_reproducible() {
        let cfg = SoakConfig {
            ops: 160,
            byz: 1,
            seed: 11,
            epochs: 2,
            writers: 1,
            readers: 1,
            keys: 2,
            shards: 1,
            minutes: 0,
            continuous: false,
        };
        let report = soak_run(&cfg);
        for s in &report.epochs {
            eprintln!(
                "epoch {}: {} ops, {} failures, {} ms, byz {:?}",
                s.epoch, s.ops_completed, s.failures, s.millis, s.byz
            );
        }
        assert!(
            report.violations.is_empty(),
            "soak found safety violations: {:?}",
            report.violations
        );
        assert!(report.progressed, "an epoch completed no operations");
        assert!(report.schedule_reproducible, "fault schedule diverged");
        assert!(
            report.peak_window < 64,
            "checker window grew to {}",
            report.peak_window
        );
        assert!(report.epochs.iter().any(|s| s.restarts > 0));
    }

    /// A sharded miniature soak: 4 register groups over the same 5
    /// servers, one victim host per epoch playing a different live role
    /// in every group — still zero violations, and the per-shard traffic
    /// accounting adds up to real work.
    #[test]
    fn tiny_sharded_soak_is_safe_with_per_shard_roles() {
        let cfg = SoakConfig {
            ops: 240,
            byz: 1,
            seed: 13,
            epochs: 2,
            writers: 2,
            readers: 2,
            keys: 8,
            shards: 4,
            minutes: 0,
            continuous: false,
        };
        let report = soak_run(&cfg);
        assert!(
            report.violations.is_empty(),
            "sharded soak found safety violations: {:?}",
            report.violations
        );
        assert!(report.progressed, "an epoch completed no operations");
        assert!(report.schedule_reproducible, "fault schedule diverged");
        assert_eq!(report.shards, 4);
        assert_eq!(report.shard_stats.len(), 4);
        let shard_ops: u64 = report.shard_stats.iter().map(|s| s.ops).sum();
        assert!(
            shard_ops >= report.ops_completed,
            "per-shard counters missed completed ops: {} < {}",
            shard_ops,
            report.ops_completed
        );
    }

    /// Continuous mode: the seeded arrival/departure process fires real
    /// reconfigurations mid-epoch while the rotating Byzantine replica
    /// and the restart supervisor stay active — and the checker still
    /// finds nothing, because joiners are always honest and only joiners
    /// ever depart.
    #[test]
    fn tiny_continuous_soak_reconfigures_and_stays_safe() {
        let cfg = SoakConfig {
            ops: 160,
            byz: 1,
            seed: 17,
            epochs: 2,
            writers: 1,
            readers: 1,
            keys: 2,
            shards: 1,
            minutes: 0,
            continuous: true,
        };
        let report = soak_run(&cfg);
        assert!(
            report.violations.is_empty(),
            "continuous soak found safety violations: {:?}",
            report.violations
        );
        assert!(report.continuous);
        assert!(
            report.reconfig_events > 0,
            "the arrival/departure process never applied an event"
        );
        assert!(report.progressed, "an epoch completed no operations");
        assert!(report.schedule_reproducible, "fault schedule diverged");
        assert!(report.ok(), "continuous soak failed its own predicate");
    }
}
