//! Minimal fixed-width table rendering for harness output.

/// Renders rows as a fixed-width text table with a header line.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        if row.len() > widths.len() {
            widths.resize(row.len(), 0);
        }
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |cells: &[String], widths: &[usize], out: &mut String| {
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    line(&header_cells, &widths, &mut out);
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    line(&rule, &widths, &mut out);
    for row in rows {
        line(row, &widths, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let s = render(
            &["proto", "n"],
            &[
                vec!["BSR".into(), "5".into()],
                vec!["RB-baseline".into(), "4".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("proto"));
        assert!(lines[1].starts_with("-----"));
        assert!(lines[3].starts_with("RB-baseline"));
    }
}
