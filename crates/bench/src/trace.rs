//! End-to-end causal-tracing scenario: proves the four properties the
//! tracing layer promises, over both deployment shapes.
//!
//! 1. **Determinism** — two identically-seeded simulator runs with span
//!    sampling on render byte-identical JSONL span streams (the
//!    caller-stamped clock rule at work), and a sampling-off run emits
//!    nothing.
//! 2. **Attribution** — a fault-injected TCP run (one Fabricator replica
//!    behind mild chaos proxies, sampling at 1000 ‰) completes its
//!    workload with every slow read carrying exactly one concrete
//!    [`SlowCause`] label; the per-cause counters partition the slow
//!    count and the per-phase latency histograms fill in.
//! 3. **Violation dumps** — a deliberately over-faulted deployment
//!    (`2 > f` silent replicas) starves a read; the checker flags the
//!    incomplete operation and [`violation_trees`] reconstructs that
//!    exact op's span tree from the flight ring via
//!    [`TraceCtx::derive_id`](safereg_common::trace::TraceCtx::derive_id)
//!    — no lookup table was kept during the run — before
//!    [`dump_flight`](safereg_obs::dump_flight) spills the ring.
//! 4. **Overhead** — with sampling off the whole layer costs one branch
//!    and 16 wire bytes per frame: two interleaved sampling-off
//!    measurements over the in-memory cluster must agree within 5 %
//!    (best-of-three each), and the sampling-on cost is reported
//!    alongside.

use std::sync::Arc;
use std::time::{Duration, Instant};

use safereg_checker::CheckSummary;
use safereg_common::config::{BackoffPolicy, QuorumConfig, TransportConfig};
use safereg_common::history::History;
use safereg_common::ids::{ReaderId, ServerId, WriterId};
use safereg_common::msg::OpId;
use safereg_common::shard::ShardMap;
use safereg_common::trace::Phase;
use safereg_common::value::Value;
use safereg_core::behavior::ByzRole;
use safereg_kv::{InMemKvCluster, KvClient, KvMode, TcpKvCluster};
use safereg_obs::names;
use safereg_obs::span::SlowCause;
use safereg_obs::trace::wall_micros;
use safereg_obs::{dump_flight, flight, violation_trees, SpanLog};
use safereg_simnet::workload::{ByzKind, Protocol, WorkloadSpec};
use safereg_transport::chaos::{FaultPlan, FaultSpec};

/// Per-cause slot of the slow-read histogram.
#[derive(Debug, Clone)]
pub struct CauseCount {
    /// The cause label (snake_case, schema-stable).
    pub cause: &'static str,
    /// Slow reads attributed to it during the chaos leg.
    pub count: u64,
}

/// Per-phase latency summary from the global trace histograms.
#[derive(Debug, Clone)]
pub struct PhaseStat {
    /// The phase label (snake_case, schema-stable).
    pub phase: &'static str,
    /// Segments recorded.
    pub count: u64,
    /// 99th-percentile segment duration in microseconds.
    pub p99_us: u64,
}

/// Outcome of one trace scenario run.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// The seed driving the simulator workload and the chaos plan.
    pub seed: u64,
    /// Span lines each sampled simulator run rendered.
    pub sim_span_lines: usize,
    /// The first rendered span line (CI validates its schema).
    pub sim_first_line: String,
    /// Both identically-seeded sampled runs rendered identical bytes.
    pub sim_deterministic: bool,
    /// Lines a sampling-off run rendered (0 required).
    pub sim_unsampled_lines: usize,
    /// Chaos-leg operations attempted.
    pub ops_attempted: u64,
    /// Chaos-leg operations completed (within per-op retries).
    pub ops_completed: u64,
    /// Chaos-leg reads that took the slow path.
    pub slow_reads: u64,
    /// Slow reads per cause (chaos-leg delta, priority order).
    pub causes: Vec<CauseCount>,
    /// Slow reads with no cause label (0 required).
    pub unattributed_slow: u64,
    /// Operations the sampler admitted during the chaos leg.
    pub sampled_ops: u64,
    /// Per-phase p99s observed during the chaos leg.
    pub phases: Vec<PhaseStat>,
    /// Violations the checker found in the over-faulted leg (>= 1 required).
    pub violations_found: usize,
    /// Span records reconstructed for the violating ops (> 0 required).
    pub violation_tree_spans: usize,
    /// Records the flight recorder dumped for the violation.
    pub flight_records_dumped: usize,
    /// In-memory ops/sec, sampling off, first batch (best of 3).
    pub ops_per_sec_off: f64,
    /// In-memory ops/sec, sampling off, second batch (best of 3).
    pub ops_per_sec_off2: f64,
    /// In-memory ops/sec, sampling at 1000 ‰ (best of 3).
    pub ops_per_sec_on: f64,
    /// Disagreement between the two sampling-off batches, in permille —
    /// the measured cost ceiling of the dormant layer (< 50 required).
    pub overhead_off_permille: u64,
    /// Throughput cost of sampling at 1000 ‰ vs off, in permille
    /// (reported, not gated: sampling does real work).
    pub overhead_on_permille: u64,
}

impl TraceReport {
    /// The acceptance predicate `paper_harness trace` exits on.
    pub fn ok(&self) -> bool {
        self.sim_deterministic
            && self.sim_span_lines > 0
            && self.sim_unsampled_lines == 0
            && self.ops_completed > 0
            && self.slow_reads > 0
            && self.unattributed_slow == 0
            && self.sampled_ops > 0
            && self.phases.iter().any(|p| p.phase == "rpc" && p.count > 0)
            && self
                .phases
                .iter()
                .any(|p| p.phase == "server_decode" && p.count > 0)
            && self.violations_found >= 1
            && self.violation_tree_spans > 0
            && self.flight_records_dumped > 0
            && self.overhead_off_permille < 50
    }

    /// Line-oriented JSON for `BENCH_trace.json`.
    pub fn to_json(&self) -> String {
        let causes: Vec<String> = self
            .causes
            .iter()
            .map(|c| format!("{{\"cause\":\"{}\",\"count\":{}}}", c.cause, c.count))
            .collect();
        let phases: Vec<String> = self
            .phases
            .iter()
            .map(|p| {
                format!(
                    "{{\"phase\":\"{}\",\"count\":{},\"p99_us\":{}}}",
                    p.phase, p.count, p.p99_us
                )
            })
            .collect();
        format!(
            concat!(
                "{{\"seed\":{},\"sim_span_lines\":{},\"sim_deterministic\":{},",
                "\"sim_unsampled_lines\":{},\"ops_attempted\":{},",
                "\"ops_completed\":{},\"slow_reads\":{},\"causes\":[{}],",
                "\"unattributed_slow\":{},\"sampled_ops\":{},\"phases\":[{}],",
                "\"violations_found\":{},\"violation_tree_spans\":{},",
                "\"flight_records_dumped\":{},\"ops_per_sec_off\":{:.0},",
                "\"ops_per_sec_off2\":{:.0},\"ops_per_sec_on\":{:.0},",
                "\"overhead_off_permille\":{},\"overhead_on_permille\":{},",
                "\"ok\":{}}}\n"
            ),
            self.seed,
            self.sim_span_lines,
            self.sim_deterministic,
            self.sim_unsampled_lines,
            self.ops_attempted,
            self.ops_completed,
            self.slow_reads,
            causes.join(","),
            self.unattributed_slow,
            self.sampled_ops,
            phases.join(","),
            self.violations_found,
            self.violation_tree_spans,
            self.flight_records_dumped,
            self.ops_per_sec_off,
            self.ops_per_sec_off2,
            self.ops_per_sec_on,
            self.overhead_off_permille,
            self.overhead_on_permille,
            self.ok()
        )
    }
}

/// Renders one sampled simulator run (contended, one Fabricator) as its
/// JSONL span stream.
fn sim_stream(seed: u64, sample_permille: u16) -> String {
    let mut spec = WorkloadSpec::read_heavy(Protocol::Bsr, 1, 800, seed);
    spec.byzantine = Some((1, ByzKind::Fabricator));
    let mut sim = spec.build();
    let log = Arc::new(SpanLog::new());
    sim.set_span_log(Arc::clone(&log), sample_permille);
    sim.run();
    log.render_jsonl()
}

/// Transport policy for the faulted TCP legs: short timeouts so injected
/// faults cost milliseconds, not the default multi-second deadlines.
fn trace_transport(sample_permille: u16) -> TransportConfig {
    TransportConfig {
        connect_timeout: Duration::from_millis(250),
        op_deadline: Duration::from_millis(500),
        io_timeout: Duration::from_millis(30),
        retry_budget: 1,
        backoff: BackoffPolicy {
            base: Duration::from_millis(5),
            cap: Duration::from_millis(50),
            jitter_permille: 200,
        },
        breaker_threshold: 3,
        trace_sample: sample_permille,
        ..TransportConfig::aggressive()
    }
}

/// Chaos-leg outcome: ops attempted/completed plus counter deltas.
struct ChaosLeg {
    attempted: u64,
    completed: u64,
    slow_reads: u64,
    causes: Vec<CauseCount>,
    sampled_ops: u64,
    phases: Vec<PhaseStat>,
}

/// Runs the attribution leg: an `n = 5, f = 1` TCP cluster with one
/// Fabricator replica behind mild chaos proxies, sampling at 1000 ‰. The
/// forged tags fail validation on every read, so the workload is
/// slow-read-heavy by construction.
fn chaos_leg(seed: u64) -> ChaosLeg {
    let reg = safereg_obs::global();
    let q = QuorumConfig::minimal_bsr(1).expect("n = 5, f = 1 is valid");
    let tconfig = trace_transport(1000);
    let mut cluster = TcpKvCluster::builder(KvMode::Replicated, b"trace-bench")
        .shards(ShardMap::single(q))
        .config(tconfig)
        .chaos(FaultPlan::new(seed, FaultSpec::mild()))
        .start()
        .expect("start trace cluster");
    cluster
        .set_role(ServerId(4), KvMode::Replicated, ByzRole::Fabricator, seed)
        .expect("convert replica");

    let slow_before = reg.counter(&names::shard_reads_counter(0, "slow")).get();
    let sampled_before = reg.counter(names::TRACE_SAMPLED_OPS).get();
    let causes_before: Vec<u64> = SlowCause::ALL
        .iter()
        .map(|c| reg.counter(&names::slow_cause_counter(c.as_str())).get())
        .collect();
    let phase_counts_before: Vec<u64> = Phase::ALL
        .iter()
        .map(|p| reg.histogram(&names::trace_phase_hist(p.as_str())).count())
        .collect();

    let mut client = KvClient::sharded(cluster.map().clone(), WriterId(0), ReaderId(0));
    client.set_policy(tconfig);
    let mut transport = cluster.transport_with(tconfig);

    let mut attempted = 0u64;
    let mut completed = 0u64;
    for i in 0..24u32 {
        let key = format!("trace-k{}", i % 3).into_bytes();
        attempted += 1;
        for attempt in 0..4 {
            match client.put(&mut transport, &key, format!("v{i}").into_bytes()) {
                Ok(_) => {
                    completed += 1;
                    break;
                }
                Err(_) if attempt < 3 => std::thread::sleep(Duration::from_millis(5)),
                Err(_) => {}
            }
        }
        attempted += 1;
        for attempt in 0..4 {
            match client.get_with_tag(&mut transport, &key) {
                Ok(_) => {
                    completed += 1;
                    break;
                }
                Err(_) if attempt < 3 => std::thread::sleep(Duration::from_millis(5)),
                Err(_) => {}
            }
        }
    }

    // Slow-read phase: crash-recover four honest replicas one at a time
    // (never more than f = 1 down at once — a restart is a transient
    // crash). The amnesiac respawn is deliberate — `restart()` would pull
    // the register state back from a quorum and keep reads fast; skipping
    // the pull means afterwards no f + 1 = 2 replicas still witness the
    // reader's cached pair, so every following read is forced onto the
    // slow path and must carry a concrete cause.
    for sid in [ServerId(0), ServerId(1), ServerId(2), ServerId(3)] {
        cluster
            .restart_amnesiac(sid, KvMode::Replicated)
            .expect("respawn replica");
    }
    for _ in 0..6 {
        attempted += 1;
        for attempt in 0..4 {
            match client.get_with_tag(&mut transport, b"trace-k0") {
                Ok(_) => {
                    completed += 1;
                    break;
                }
                Err(_) if attempt < 3 => std::thread::sleep(Duration::from_millis(5)),
                Err(_) => {}
            }
        }
    }

    let causes: Vec<CauseCount> = SlowCause::ALL
        .iter()
        .zip(&causes_before)
        .map(|(c, &before)| CauseCount {
            cause: c.as_str(),
            count: reg.counter(&names::slow_cause_counter(c.as_str())).get() - before,
        })
        .collect();
    let phases: Vec<PhaseStat> = Phase::ALL
        .iter()
        .zip(&phase_counts_before)
        .map(|(p, &before)| {
            let h = reg.histogram(&names::trace_phase_hist(p.as_str()));
            PhaseStat {
                phase: p.as_str(),
                count: h.count() - before,
                p99_us: h.summary().map_or(0, |s| s.p99),
            }
        })
        .collect();
    ChaosLeg {
        attempted,
        completed,
        slow_reads: reg.counter(&names::shard_reads_counter(0, "slow")).get() - slow_before,
        causes,
        sampled_ops: reg.counter(names::TRACE_SAMPLED_OPS).get() - sampled_before,
        phases,
    }
}

/// Runs the violation leg: a healthy write, then `2 > f` replicas turned
/// silent so the next read starves. The checker flags the incomplete read;
/// its span tree is rebuilt from the flight ring by recomputing the trace
/// id from the violating [`OpId`] — the spans were recorded *during* the
/// doomed read, nothing is re-run.
fn violation_leg(seed: u64) -> (usize, usize, usize) {
    let q = QuorumConfig::minimal_bsr(1).expect("n = 5, f = 1 is valid");
    let tconfig = trace_transport(1000);
    let mut cluster = TcpKvCluster::builder(KvMode::Replicated, b"trace-violation")
        .quorum(q)
        .start()
        .expect("start cluster");
    let mut client = KvClient::new(q, WriterId(50), ReaderId(51));
    client.set_policy(tconfig);
    let mut transport = cluster.transport_with(tconfig);
    let mut history = History::new();

    // Op 1: a healthy write. The client's internal sequence numbers are
    // deterministic (one per operation), so the history can be recorded
    // under the exact OpIds the tracing layer derives span ids from.
    let value = Value::from(format!("doomed-{seed}").into_bytes());
    let h = history.begin_write(OpId::new(WriterId(50), 1), value.clone(), wall_micros());
    let tag = client
        .put(&mut transport, b"trace-v", value)
        .expect("healthy write completes");
    history.complete_write(h, tag, wall_micros());

    // 2 > f replicas go silent: the read quorum (n - f = 4) is forever
    // out of reach, so op 2 must starve.
    for sid in [ServerId(3), ServerId(4)] {
        cluster
            .set_role(sid, KvMode::Replicated, ByzRole::Silent, seed)
            .expect("convert replica");
    }
    let read_op = OpId::new(ReaderId(51), 2);
    history.begin_read(read_op, wall_micros());
    assert!(
        client.get_with_tag(&mut transport, b"trace-v").is_err(),
        "a read cannot complete with 2 > f silent replicas"
    );

    let summary = CheckSummary::check_all(&history);
    let violations = &summary.liveness;
    let records = flight().snapshot();
    let trees = violation_trees(&records, violations);
    // The header line is per violation; every further line is a span.
    let tree_spans = trees
        .lines()
        .filter(|l| l.trim_start().starts_with('{'))
        .count();
    let dumped = dump_flight("violation");
    eprint!("{trees}");
    (violations.len(), tree_spans, dumped)
}

/// One timed batch over the in-memory cluster: `ops` put/get operations
/// under the given sampling rate, returning ops/sec.
fn timed_batch(sample_permille: u16, ops: u32) -> f64 {
    let q = QuorumConfig::minimal_bsr(1).expect("n = 5, f = 1 is valid");
    let mut cluster = InMemKvCluster::new(q);
    let mut client = KvClient::new(q, WriterId(7), ReaderId(7));
    client.set_policy(TransportConfig {
        trace_sample: sample_permille,
        ..TransportConfig::aggressive()
    });
    for i in 0..64u32 {
        // Warmup: fault the caches and the allocator, outside the clock.
        let key = format!("warm{}", i % 4).into_bytes();
        client.put(&mut cluster, &key, b"w".to_vec()).expect("put");
    }
    let start = Instant::now();
    for i in 0..ops {
        let key = format!("bench{}", i % 8).into_bytes();
        if i % 4 == 0 {
            client.put(&mut cluster, &key, b"v".to_vec()).expect("put");
        } else {
            let _ = client.get(&mut cluster, &key).expect("get");
        }
    }
    f64::from(ops) / start.elapsed().as_secs_f64()
}

/// Best-of-`reps` throughput for the three sampling settings, batches
/// interleaved round-robin so background load drifts hit all three
/// equally. Scheduler noise shows up as slowdowns, never speedups, so max
/// is the low-noise estimator; the off/off2 split bounds the residual.
fn interleaved_best(reps: u32, ops: u32) -> (f64, f64, f64) {
    let (mut off, mut on, mut off2) = (0f64, 0f64, 0f64);
    for _ in 0..reps {
        off = off.max(timed_batch(0, ops));
        on = on.max(timed_batch(1000, ops));
        off2 = off2.max(timed_batch(0, ops));
    }
    (off, on, off2)
}

/// Runs the whole scenario.
///
/// # Panics
///
/// Panics when a cluster cannot be started or the healthy write of the
/// violation leg fails — environment failures, not scenario outcomes.
pub fn trace_run(seed: u64) -> TraceReport {
    let a = sim_stream(seed, 1000);
    let b = sim_stream(seed, 1000);
    let unsampled = sim_stream(seed, 0);

    let chaos = chaos_leg(seed);
    let (violations_found, violation_tree_spans, flight_records_dumped) = violation_leg(seed);

    let (off, on, off2) = interleaved_best(16, 6_000);
    let spread = (off - off2).abs() / off.max(off2).max(1.0);
    let on_cost = ((off.max(off2) - on) / off.max(off2).max(1.0)).max(0.0);

    let attributed: u64 = chaos.causes.iter().map(|c| c.count).sum();
    TraceReport {
        seed,
        sim_span_lines: a.lines().count(),
        sim_first_line: a.lines().next().unwrap_or_default().to_string(),
        sim_deterministic: a == b && !a.is_empty(),
        sim_unsampled_lines: unsampled.lines().count(),
        ops_attempted: chaos.attempted,
        ops_completed: chaos.completed,
        slow_reads: chaos.slow_reads,
        unattributed_slow: chaos.slow_reads.saturating_sub(attributed),
        causes: chaos.causes,
        sampled_ops: chaos.sampled_ops,
        phases: chaos.phases,
        violations_found,
        violation_tree_spans,
        flight_records_dumped,
        ops_per_sec_off: off,
        ops_per_sec_off2: off2,
        ops_per_sec_on: on,
        overhead_off_permille: (spread * 1000.0) as u64,
        overhead_on_permille: (on_cost * 1000.0) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The simulator legs alone (cheap): byte-identical sampled streams,
    /// silent when sampling is off.
    #[test]
    fn sim_streams_are_deterministic_and_gated_by_sampling() {
        let a = sim_stream(0x7ACE, 1000);
        let b = sim_stream(0x7ACE, 1000);
        assert!(!a.is_empty());
        assert_eq!(a, b, "identically-seeded streams must be byte-identical");
        assert!(a.contains("\"phase\":\"client_op\""));
        assert!(a.contains("\"phase\":\"rpc\""));
        assert_eq!(sim_stream(0x7ACE, 0), "");
    }

    /// The violation leg finds the starved read and rebuilds its spans.
    #[test]
    fn violation_leg_dumps_the_starved_reads_span_tree() {
        let (violations, tree_spans, _) = violation_leg(0xDEAD);
        assert!(violations >= 1, "the starved read must be flagged");
        assert!(tree_spans > 0, "the violating op's spans must be found");
    }
}
