//! `wire` microbench: allocation accounting for the zero-copy wire path.
//!
//! Measures the BCSR write fan-out at the paper's running point `n = 11,
//! f = 2` (so `k = 1`): a writer stripes one value and ships a `PutData`
//! frame to each of the `n` servers. Two implementations of that fan-out
//! are compared under a counting global allocator:
//!
//! * **old** — the pre-`Bytes` path: one fragment `Vec` per server, one
//!   `Bytes` wrap per fragment, one contiguous encode (`encode_to` into a
//!   fresh `Vec`) per envelope, and one sealed-output `Vec` per frame: ~4 heap
//!   allocations per server, `4n` per write.
//! * **new** — the encode-once path: all fragments live in a single arena
//!   `Bytes` (one `Vec` + one `Arc`), each server's payload is an O(1)
//!   slice, and [`seal_envelope`] allocates only the metadata head
//!   (the MAC is streamed over `(head, tail)`): `n + 2` allocations per
//!   write.
//!
//! The Reed–Solomon striping itself (one codeword per column) is identical
//! in both paths and excluded from the measured region — this bench
//! isolates the *wire* cost the zero-copy redesign changed, not the coding
//! math it didn't touch.
//!
//! A relay simulation then feeds every new-path frame through the
//! borrowing [`open_envelope`] and asserts the `wire.bytes_copied` counter
//! stays flat: the server relay path must never memcpy payload bytes.
//!
//! A final batching leg drives a real TCP cluster and checks the vectored
//! outbox drain: every flush recorded in `transport.batch.frames` must
//! respect the [`TransportConfig::max_batch_frames`] ceiling (default 32),
//! and at least one flush must have happened — a writer loop that stops
//! reporting (or stops bounding) its batches fails the bench.
//!
//! [`run`] only produces meaningful numbers when [`CountingAlloc`] is
//! installed as the `#[global_allocator]` (the `paper_harness` binary does
//! this); under the default allocator every count reads zero and the
//! result is marked failed.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use safereg_common::buf::Bytes;
use safereg_common::codec::Wire;
use safereg_common::ids::{ClientId, ServerId, WriterId};
use safereg_common::msg::{ClientToServer, CodedElement, Envelope, OpId, Payload};
use safereg_common::tag::Tag;
use safereg_common::value::Value;
use safereg_crypto::auth::AuthCodec;
use safereg_crypto::keychain::KeyChain;
use safereg_mds::rs::ReedSolomon;
use safereg_mds::stripe::encode_value;
use safereg_transport::frame::{open_envelope, seal_envelope};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// A pass-through allocator that counts every allocation (alloc,
/// alloc_zeroed, and realloc each count once). Install it in a binary with
/// `#[global_allocator]` to make [`allocations`] live.
pub struct CountingAlloc;

// SAFETY: defers every operation to `System`; the counter is a relaxed
// atomic with no allocation of its own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Total allocations observed since process start (0 unless
/// [`CountingAlloc`] is the global allocator).
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Outcome of the wire microbench.
#[derive(Debug, Clone)]
pub struct WireBenchResult {
    /// Cluster size of the measured BCSR point.
    pub n: usize,
    /// Fault bound of the measured point.
    pub f: usize,
    /// Value size striped per write.
    pub value_bytes: usize,
    /// Measured writes per path.
    pub iters: u64,
    /// Mean heap allocations per write on the pre-`Bytes` path.
    pub old_allocs_per_write: f64,
    /// Mean heap allocations per write on the encode-once path.
    pub new_allocs_per_write: f64,
    /// `old / new`; the acceptance bar is ≥ 2.
    pub alloc_ratio: f64,
    /// Frames pushed through the borrowing relay decode.
    pub relay_frames: usize,
    /// `wire.bytes_copied` delta across the relay; the bar is 0.
    pub relay_bytes_copied: u64,
    /// Configured vectored-drain ceiling (`TransportConfig::max_batch_frames`).
    pub batch_ceiling: usize,
    /// `transport.batch.frames` samples recorded by the TCP leg.
    pub batch_samples: u64,
    /// Largest batch any writer flushed; the bar is `≤ batch_ceiling`.
    pub batch_max_frames: u64,
}

impl WireBenchResult {
    /// Whether every acceptance bar holds.
    pub fn ok(&self) -> bool {
        self.alloc_ratio >= 2.0
            && self.relay_bytes_copied == 0
            && self.relay_frames > 0
            && self.batch_samples > 0
            && self.batch_max_frames <= self.batch_ceiling as u64
    }

    /// The result as one JSON object (BENCH_wire.json).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"bench\":\"wire\",\"n\":{},\"f\":{},\"value_bytes\":{},",
                "\"iters\":{},\"old_allocs_per_write\":{:.2},",
                "\"new_allocs_per_write\":{:.2},\"alloc_ratio\":{:.2},",
                "\"relay_frames\":{},\"relay_bytes_copied\":{},",
                "\"batch_ceiling\":{},\"batch_samples\":{},",
                "\"batch_max_frames\":{},\"ok\":{}}}\n"
            ),
            self.n,
            self.f,
            self.value_bytes,
            self.iters,
            self.old_allocs_per_write,
            self.new_allocs_per_write,
            self.alloc_ratio,
            self.relay_frames,
            self.relay_bytes_copied,
            self.batch_ceiling,
            self.batch_samples,
            self.batch_max_frames,
            self.ok(),
        )
    }
}

const N: usize = 11;
const F: usize = 2;
const VALUE_BYTES: usize = 16 << 10;
const ITERS: u64 = 64;

fn put_envelope(server: usize, element: CodedElement) -> Envelope {
    Envelope::to_server(
        ClientId::Writer(WriterId(1)),
        ServerId(server as u16),
        ClientToServer::PutData {
            op: OpId::new(WriterId(1), 7),
            tag: Tag::new(42, WriterId(1)),
            payload: Payload::Coded(element),
        },
    )
}

/// Runs the microbench. See the module docs for what is measured.
pub fn run() -> WireBenchResult {
    let k = N - 5 * F; // BCSR dimension: k = 1 at the paper's point
    let code = ReedSolomon::new(N, k).expect("valid BCSR point");
    let value = Value::from(vec![0xF0u8; VALUE_BYTES]);
    let chain = KeyChain::from_master_seed(b"wire-bench");

    // Stripe once, outside the measured region: the RS math is common to
    // both paths. `flat` is the raw fragment arena (element i occupies
    // `flat[i*frag .. (i+1)*frag]`), `frag` the per-server fragment size.
    let elements = encode_value(&code, &value);
    let frag = elements[0].data.len();
    let mut flat = Vec::with_capacity(N * frag);
    for e in &elements {
        flat.extend_from_slice(e.data.as_ref());
    }
    let value_len = value.len() as u32;

    // Warm up key derivation and the obs registry so one-time allocations
    // stay out of the measured deltas.
    for (i, e) in elements.iter().enumerate() {
        let env = put_envelope(i, e.clone());
        let sealed = seal_envelope(&chain, &env);
        let _ = open_envelope(&chain, sealed.to_bytes()).expect("warm-up frame opens");
    }

    // Old path: per-server fragment Vec + Bytes wrap + contiguous encode +
    // sealed-output Vec (4 allocations per server).
    let mut old_frames: Vec<Vec<u8>> = Vec::with_capacity(N);
    let before = allocations();
    for _ in 0..ITERS {
        old_frames.clear();
        for i in 0..N {
            let fragment = flat[i * frag..(i + 1) * frag].to_vec();
            let element = CodedElement {
                index: i as u16,
                value_len,
                data: Bytes::from(fragment),
            };
            let env = put_envelope(i, element);
            let mut bytes = Vec::new();
            env.encode_to(&mut bytes);
            let codec = AuthCodec::new(chain.pair_key(env.src, env.dst));
            old_frames.push(codec.seal(&bytes));
        }
    }
    let old_allocs = allocations() - before;

    // New path: one arena (Vec + Arc), O(1) slices per server, and a
    // streamed seal that allocates only the metadata head.
    let mut new_frames = Vec::with_capacity(N);
    let before = allocations();
    for _ in 0..ITERS {
        new_frames.clear();
        let arena = Bytes::from(flat.clone());
        for i in 0..N {
            let element = CodedElement {
                index: i as u16,
                value_len,
                data: arena
                    .try_slice(i * frag..(i + 1) * frag)
                    .expect("arena sized as n*frag"),
            };
            let env = put_envelope(i, element);
            new_frames.push(seal_envelope(&chain, &env));
        }
    }
    let new_allocs = allocations() - before;

    // Relay simulation: every new-path frame is opened with the borrowing
    // decode; the global copy counter must not move.
    let reg = safereg_obs::global();
    let copied_before = reg.counter(safereg_obs::names::WIRE_BYTES_COPIED).get();
    let mut relay_frames = 0usize;
    for sealed in &new_frames {
        let env = open_envelope(&chain, sealed.to_bytes()).expect("sealed frame opens");
        let Envelope { msg, .. } = env;
        assert!(
            matches!(msg, safereg_common::msg::Message::ToServer(_)),
            "relay decoded an unexpected message"
        );
        relay_frames += 1;
    }
    let relay_bytes_copied =
        reg.counter(safereg_obs::names::WIRE_BYTES_COPIED).get() - copied_before;

    let (batch_ceiling, batch_samples, batch_max_frames) = batch_drain_leg();

    let old_allocs_per_write = old_allocs as f64 / ITERS as f64;
    let new_allocs_per_write = new_allocs as f64 / ITERS as f64;
    WireBenchResult {
        n: N,
        f: F,
        value_bytes: VALUE_BYTES,
        iters: ITERS,
        old_allocs_per_write,
        new_allocs_per_write,
        alloc_ratio: old_allocs_per_write / new_allocs_per_write.max(f64::MIN_POSITIVE),
        relay_frames,
        relay_bytes_copied,
        batch_ceiling,
        batch_samples,
        batch_max_frames,
    }
}

/// Drives a real `n = 5` TCP cluster through enough traffic that every
/// host's writer thread flushes batches, then reads back the
/// `transport.batch.frames` histogram. Returns `(ceiling, samples, max)`;
/// the caller asserts `max ≤ ceiling`. The leg runs after both measured
/// alloc regions, so its (substantial) heap traffic never skews them.
fn batch_drain_leg() -> (usize, u64, u64) {
    use safereg_common::config::{QuorumConfig, TransportConfig};
    use safereg_common::ids::ReaderId;
    use safereg_kv::client::KvClient;
    use safereg_kv::server::KvMode;
    use safereg_kv::tcp::TcpKvCluster;

    let ceiling = TransportConfig::default().max_batch_frames;
    let reg = safereg_obs::global();
    let before = reg
        .histogram(safereg_obs::names::TRANSPORT_BATCH_FRAMES)
        .count();

    let cfg = QuorumConfig::minimal_bsr(1).expect("n = 5 BSR point");
    let Ok(cluster) = TcpKvCluster::builder(KvMode::Replicated, b"wire-batch-leg")
        .quorum(cfg)
        .start()
    else {
        // No loopback listener available: report an empty leg; ok() fails
        // loudly rather than pretending the ceiling was checked.
        return (ceiling, 0, 0);
    };
    let mut transport = cluster.transport();
    let mut client = KvClient::new(cfg, WriterId(7), ReaderId(7));
    for i in 0u32..48 {
        let key = format!("batch-{}", i % 8);
        client
            .put(&mut transport, key.as_bytes(), i.to_le_bytes().to_vec())
            .expect("put under no faults");
        client
            .get(&mut transport, key.as_bytes())
            .expect("get under no faults");
    }
    drop(transport);
    drop(cluster);

    let snap = reg
        .histogram(safereg_obs::names::TRANSPORT_BATCH_FRAMES)
        .snapshot();
    (ceiling, snap.count.saturating_sub(before), snap.max)
}
