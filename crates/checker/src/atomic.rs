//! Atomicity-grade checks: new/old inversions.
//!
//! The paper deliberately trades atomicity away (§I-A: a semi-fast MWMR
//! *atomic* register is impossible, Georgiou et al. \[13\]). This checker
//! makes the sacrifice observable: atomicity requires that two
//! non-concurrent reads never invert write order — if `r1` completes
//! before `r2` begins, `r2` must not return an older write than `r1`
//! (a *new/old inversion*). Safe and regular registers may exhibit such
//! inversions under concurrency; atomic ones never do.
//!
//! Note this is a necessary condition for atomicity, not a full
//! linearizability check — it is exactly the condition the paper's
//! protocols give up, which is what the experiments demonstrate.

use safereg_common::history::{History, OpKind, OpRecord};
use safereg_common::tag::Tag;

use crate::{Violation, ViolationKind};

fn read_tag(r: &OpRecord) -> Option<Tag> {
    match &r.kind {
        OpKind::Read {
            returned_tag: Some(t),
            ..
        } => Some(*t),
        _ => None,
    }
}

/// Reports every new/old inversion between non-concurrent reads.
pub fn check_no_new_old_inversion(history: &History) -> Vec<Violation> {
    let mut violations = Vec::new();
    let reads: Vec<&OpRecord> = history.completed_reads().collect();
    for (i, r1) in reads.iter().enumerate() {
        let t1 = match read_tag(r1) {
            Some(t) => t,
            None => continue,
        };
        for r2 in reads.iter().skip(i + 1) {
            let t2 = match read_tag(r2) {
                Some(t) => t,
                None => continue,
            };
            if r1.precedes(r2) && t2 < t1 {
                violations.push(Violation {
                    op: r2.op,
                    kind: ViolationKind::NewOldInversion,
                    detail: format!(
                        "read {} returned tag {t2} after read {} had returned {t1}",
                        r2.op, r1.op
                    ),
                });
            }
            if r2.precedes(r1) && t1 < t2 {
                violations.push(Violation {
                    op: r1.op,
                    kind: ViolationKind::NewOldInversion,
                    detail: format!(
                        "read {} returned tag {t1} after read {} had returned {t2}",
                        r1.op, r2.op
                    ),
                });
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use safereg_common::ids::{ReaderId, WriterId};
    use safereg_common::msg::OpId;
    use safereg_common::value::Value;

    fn t(num: u64) -> Tag {
        Tag::new(num, WriterId(0))
    }

    fn add_read(h: &mut History, reader: u16, seq: u64, at: u64, tag: Tag) {
        let r = h.begin_read(OpId::new(ReaderId(reader), seq), at);
        h.complete_read(r, Value::from("x"), tag, at + 10);
    }

    #[test]
    fn monotone_reads_pass() {
        let mut h = History::new();
        add_read(&mut h, 0, 1, 0, t(1));
        add_read(&mut h, 1, 1, 20, t(1));
        add_read(&mut h, 0, 2, 40, t(2));
        assert!(check_no_new_old_inversion(&h).is_empty());
    }

    #[test]
    fn inversion_across_readers_is_flagged() {
        let mut h = History::new();
        add_read(&mut h, 0, 1, 0, t(2)); // reader A sees the new write
        add_read(&mut h, 1, 1, 20, t(1)); // reader B, later, sees the old one
        let v = check_no_new_old_inversion(&h);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::NewOldInversion);
    }

    #[test]
    fn concurrent_reads_may_disagree() {
        let mut h = History::new();
        // Overlapping reads: no ordering constraint.
        let r1 = h.begin_read(OpId::new(ReaderId(0), 1), 0);
        let r2 = h.begin_read(OpId::new(ReaderId(1), 1), 5);
        h.complete_read(r1, Value::from("new"), t(2), 20);
        h.complete_read(r2, Value::from("old"), t(1), 25);
        assert!(check_no_new_old_inversion(&h).is_empty());
    }
}
