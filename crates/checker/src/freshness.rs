//! Regularity-grade freshness — the property Theorem 3 shows BSR lacks.
//!
//! The paper's informal "strong consistency" (§II-C: "no stale version of
//! value will be read") and its regularity discussion boil down to: a read
//! must never return something older than the last write that *completed
//! before the read began*. We check it on tags: for every completed read
//! `r`, `returned_tag(r) ≥ max{tag(w) : w completed before r invoked}`.
//!
//! This is deliberately stronger than safeness — a read concurrent with
//! some write still may not regress below the completed prefix. BSR fails
//! this under the Theorem 3 schedule; BSR-H, BSR-2P and the RB baseline
//! satisfy it.

use safereg_common::history::{History, OpKind};
use safereg_common::tag::Tag;

use crate::{Violation, ViolationKind};

/// Checks freshness over every completed read.
///
/// # Examples
///
/// ```
/// use safereg_checker::check_freshness;
/// use safereg_common::history::History;
/// use safereg_common::ids::{ReaderId, WriterId};
/// use safereg_common::msg::OpId;
/// use safereg_common::tag::Tag;
/// use safereg_common::value::Value;
///
/// // A read returning v0 after a completed write is stale — the exact
/// // Theorem 3 outcome.
/// let mut h = History::new();
/// let w = h.begin_write(OpId::new(WriterId(0), 1), Value::from("x"), 0);
/// h.complete_write(w, Tag::new(1, WriterId(0)), 10);
/// let r = h.begin_read(OpId::new(ReaderId(0), 1), 20);
/// h.complete_read(r, Value::initial(), Tag::ZERO, 30);
/// assert_eq!(check_freshness(&h).len(), 1);
/// ```
pub fn check_freshness(history: &History) -> Vec<Violation> {
    let mut violations = Vec::new();
    for read in history.completed_reads() {
        let returned_tag = match &read.kind {
            OpKind::Read {
                returned_tag: Some(t),
                ..
            } => *t,
            _ => continue,
        };
        // The freshness floor: the highest tag among writes that completed
        // strictly before this read was invoked.
        let floor = history
            .completed_writes()
            .filter(|w| w.completed_at.expect("completed") < read.invoked_at)
            .filter_map(|w| match &w.kind {
                OpKind::Write { tag, .. } => *tag,
                OpKind::Read { .. } => None,
            })
            .max()
            .unwrap_or(Tag::ZERO);
        if returned_tag < floor {
            violations.push(Violation {
                op: read.op,
                kind: ViolationKind::StaleTag,
                detail: format!(
                    "read returned tag {returned_tag} below the completed-write floor {floor}"
                ),
            });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use safereg_common::ids::{ReaderId, WriterId};
    use safereg_common::msg::OpId;
    use safereg_common::value::Value;

    fn t(num: u64, w: u16) -> Tag {
        Tag::new(num, WriterId(w))
    }

    #[test]
    fn read_at_or_above_floor_is_fresh() {
        let mut h = History::new();
        let w = h.begin_write(OpId::new(WriterId(1), 1), Value::from("a"), 0);
        h.complete_write(w, t(3, 1), 10);
        let r = h.begin_read(OpId::new(ReaderId(0), 1), 20);
        h.complete_read(r, Value::from("a"), t(3, 1), 30);
        // A newer concurrent tag is also fine.
        let r2 = h.begin_read(OpId::new(ReaderId(0), 2), 40);
        h.complete_read(r2, Value::from("x"), t(4, 2), 50);
        assert!(check_freshness(&h).is_empty());
    }

    #[test]
    fn theorem3_shape_is_flagged() {
        // A write completed before the read began, but the read returned
        // the initial tag — the exact Theorem 3 outcome.
        let mut h = History::new();
        let w = h.begin_write(OpId::new(WriterId(1), 1), Value::from("v1"), 0);
        h.complete_write(w, t(1, 1), 10);
        // Concurrent incomplete writes (they do not raise the floor).
        h.begin_write(OpId::new(WriterId(2), 1), Value::from("v2"), 15);
        let r = h.begin_read(OpId::new(ReaderId(0), 1), 20);
        h.complete_read(r, Value::initial(), Tag::ZERO, 30);
        let v = check_freshness(&h);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::StaleTag);
    }

    #[test]
    fn writes_completing_after_invocation_do_not_raise_the_floor() {
        let mut h = History::new();
        let w = h.begin_write(OpId::new(WriterId(1), 1), Value::from("a"), 0);
        let r = h.begin_read(OpId::new(ReaderId(0), 1), 5); // invoked before w completes
        h.complete_write(w, t(1, 1), 10);
        h.complete_read(r, Value::initial(), Tag::ZERO, 20);
        assert!(check_freshness(&h).is_empty(), "w completed after r began");
    }

    #[test]
    fn reads_with_no_writes_are_fresh() {
        let mut h = History::new();
        let r = h.begin_read(OpId::new(ReaderId(0), 1), 0);
        h.complete_read(r, Value::initial(), Tag::ZERO, 10);
        assert!(check_freshness(&h).is_empty());
    }
}
