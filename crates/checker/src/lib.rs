//! Consistency checkers for recorded histories.
//!
//! Given a [`History`](safereg_common::history::History) recorded by a runtime (simulator or TCP cluster),
//! these checkers decide whether the execution satisfied the paper's
//! correctness conditions:
//!
//! * [`safety::check_safety`] — MWMR safeness (Definition 1): a read that
//!   is not concurrent with any write returns the value of an admissible
//!   (non-superseded) preceding write; any read returns only values that
//!   were actually written (validity, Lemma 5's consequence).
//! * [`freshness::check_freshness`] — the regularity-grade guarantee
//!   Theorem 3 shows BSR lacks: every read returns a tag at least as high
//!   as the last write that completed before the read began.
//! * [`order::check_write_order`] — Lemma 2: completed writes carry
//!   distinct tags and tag order respects real-time order.
//! * [`liveness::check_liveness`] — Theorem 1/4: every invoked operation
//!   completed.
//! * [`rounds::read_round_profile`] — Definition 3 accounting: how many
//!   client-to-server rounds reads used (one-shot protocols must show 1).
//! * [`atomic::check_no_new_old_inversion`] — the atomicity-grade condition
//!   the paper's registers deliberately give up (new/old inversions).
//! * [`window::WindowedChecker`] — the safety check re-cast as an
//!   incremental, memory-bounded pass for soak runs: reads are judged at
//!   completion, superseded writes are pruned, RSS stays flat.
//!
//! Each checker returns the list of [`Violation`]s it found (empty =
//! property held).

pub mod atomic;
pub mod freshness;
pub mod liveness;
pub mod order;
pub mod rounds;
pub mod safety;
pub mod stats;
pub mod timeline;
pub mod window;

use safereg_common::msg::OpId;

pub use atomic::check_no_new_old_inversion;
pub use freshness::check_freshness;
pub use liveness::check_liveness;
pub use order::check_write_order;
pub use rounds::read_round_profile;
pub use safety::check_safety;
pub use stats::{latency_stats, LatencyStats};
pub use timeline::render_timeline;
pub use window::{WinHandle, WindowedChecker};

/// Which property a violation breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A non-concurrent read returned a superseded or initial value
    /// (Definition 1(i) broken).
    StaleRead,
    /// A read returned a value never written (validity broken).
    InvalidValue,
    /// A read returned a tag older than the last completed write
    /// (regularity-grade freshness broken — the Theorem 3 phenomenon).
    StaleTag,
    /// Two completed writes share a tag (Lemma 2 uniqueness broken).
    DuplicateTag,
    /// Tag order contradicts real-time order (Lemma 2 broken).
    OrderInversion,
    /// An invoked operation never completed (liveness broken).
    Incomplete,
    /// A later read returned an older write than an earlier read — allowed
    /// for safe/regular registers, forbidden for atomic ones.
    NewOldInversion,
}

/// One property violation found in a history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The operation at fault.
    pub op: OpId,
    /// The property broken.
    pub kind: ViolationKind,
    /// Human-readable explanation for reports.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?} at {}: {}", self.kind, self.op, self.detail)
    }
}

/// Summary of all checks over one history.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckSummary {
    /// Safety violations (Definition 1).
    pub safety: Vec<Violation>,
    /// Freshness violations (regularity-grade).
    pub freshness: Vec<Violation>,
    /// Write-order violations (Lemma 2).
    pub order: Vec<Violation>,
    /// Liveness violations.
    pub liveness: Vec<Violation>,
}

impl CheckSummary {
    /// Runs every checker.
    pub fn check_all(history: &safereg_common::history::History) -> Self {
        CheckSummary {
            safety: check_safety(history),
            freshness: check_freshness(history),
            order: check_write_order(history),
            liveness: check_liveness(history),
        }
    }

    /// `true` when the execution was safe (Definition 1) — freshness and
    /// liveness are reported separately because safe-but-not-regular and
    /// starved runs are expected outcomes in several experiments.
    pub fn is_safe(&self) -> bool {
        self.safety.is_empty() && self.order.is_empty()
    }

    /// `true` when the execution also satisfied the regularity-grade
    /// freshness property.
    pub fn is_fresh(&self) -> bool {
        self.freshness.is_empty()
    }
}
