//! Liveness (Theorems 1 and 4): every invoked operation completes.
//!
//! Meaningful only on histories whose runtime ran to quiescence — an
//! operation that is still incomplete then is starved for good (e.g. more
//! than `f` servers stopped responding).

use safereg_common::history::History;

use crate::{Violation, ViolationKind};

/// Reports every incomplete operation.
///
/// # Examples
///
/// ```
/// use safereg_checker::check_liveness;
/// use safereg_common::history::History;
/// use safereg_common::ids::WriterId;
/// use safereg_common::msg::OpId;
/// use safereg_common::value::Value;
///
/// let mut h = History::new();
/// h.begin_write(OpId::new(WriterId(0), 1), Value::from("starved"), 0);
/// assert_eq!(check_liveness(&h).len(), 1);
/// ```
pub fn check_liveness(history: &History) -> Vec<Violation> {
    history
        .records()
        .iter()
        .filter(|r| !r.is_complete())
        .map(|r| Violation {
            op: r.op,
            kind: ViolationKind::Incomplete,
            detail: format!(
                "{} invoked at {} never completed",
                if r.kind.is_write() { "write" } else { "read" },
                r.invoked_at
            ),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use safereg_common::ids::{ReaderId, WriterId};
    use safereg_common::msg::OpId;
    use safereg_common::tag::Tag;
    use safereg_common::value::Value;

    #[test]
    fn complete_history_is_live() {
        let mut h = History::new();
        let w = h.begin_write(OpId::new(WriterId(1), 1), Value::from("a"), 0);
        h.complete_write(w, Tag::new(1, WriterId(1)), 10);
        assert!(check_liveness(&h).is_empty());
    }

    #[test]
    fn starved_operations_are_reported() {
        let mut h = History::new();
        h.begin_write(OpId::new(WriterId(1), 1), Value::from("a"), 0);
        h.begin_read(OpId::new(ReaderId(0), 1), 5);
        let v = check_liveness(&h);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|x| x.kind == ViolationKind::Incomplete));
    }
}
