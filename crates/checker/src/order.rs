//! Write total order (Lemma 2).
//!
//! Completed writes must carry pairwise-distinct tags, and whenever one
//! write really precedes another, the earlier write's tag must be smaller.
//! Together with the tag total order this yields the total order on writes
//! the safety construction of Theorem 2 relies on.

use safereg_common::history::{History, OpKind, OpRecord};
use safereg_common::tag::Tag;

use crate::{Violation, ViolationKind};

fn tag_of(w: &OpRecord) -> Option<Tag> {
    match &w.kind {
        OpKind::Write { tag, .. } => *tag,
        OpKind::Read { .. } => None,
    }
}

/// Checks tag uniqueness and real-time consistency over completed writes.
///
/// # Examples
///
/// ```
/// use safereg_checker::check_write_order;
/// use safereg_common::history::History;
/// use safereg_common::ids::WriterId;
/// use safereg_common::msg::OpId;
/// use safereg_common::tag::Tag;
/// use safereg_common::value::Value;
///
/// let mut h = History::new();
/// let w1 = h.begin_write(OpId::new(WriterId(0), 1), Value::from("a"), 0);
/// h.complete_write(w1, Tag::new(1, WriterId(0)), 10);
/// let w2 = h.begin_write(OpId::new(WriterId(1), 1), Value::from("b"), 20);
/// h.complete_write(w2, Tag::new(2, WriterId(1)), 30);
/// assert!(check_write_order(&h).is_empty());
/// ```
pub fn check_write_order(history: &History) -> Vec<Violation> {
    let mut violations = Vec::new();
    let writes: Vec<&OpRecord> = history.completed_writes().collect();

    for (i, a) in writes.iter().enumerate() {
        let ta = match tag_of(a) {
            Some(t) => t,
            None => continue,
        };
        for b in writes.iter().skip(i + 1) {
            let tb = match tag_of(b) {
                Some(t) => t,
                None => continue,
            };
            if ta == tb {
                violations.push(Violation {
                    op: b.op,
                    kind: ViolationKind::DuplicateTag,
                    detail: format!("writes {} and {} share tag {ta}", a.op, b.op),
                });
                continue;
            }
            if a.precedes(b) && ta > tb {
                violations.push(Violation {
                    op: b.op,
                    kind: ViolationKind::OrderInversion,
                    detail: format!(
                        "{} (tag {ta}) precedes {} (tag {tb}) but tags say otherwise",
                        a.op, b.op
                    ),
                });
            }
            if b.precedes(a) && tb > ta {
                violations.push(Violation {
                    op: a.op,
                    kind: ViolationKind::OrderInversion,
                    detail: format!(
                        "{} (tag {tb}) precedes {} (tag {ta}) but tags say otherwise",
                        b.op, a.op
                    ),
                });
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use safereg_common::ids::{ReaderId, WriterId};
    use safereg_common::msg::OpId;
    use safereg_common::value::Value;

    fn t(num: u64, w: u16) -> Tag {
        Tag::new(num, WriterId(w))
    }

    #[test]
    fn sequential_writes_with_growing_tags_pass() {
        let mut h = History::new();
        let w1 = h.begin_write(OpId::new(WriterId(1), 1), Value::from("a"), 0);
        h.complete_write(w1, t(1, 1), 10);
        let w2 = h.begin_write(OpId::new(WriterId(2), 1), Value::from("b"), 20);
        h.complete_write(w2, t(2, 2), 30);
        assert!(check_write_order(&h).is_empty());
    }

    #[test]
    fn concurrent_writes_may_order_either_way() {
        let mut h = History::new();
        let w1 = h.begin_write(OpId::new(WriterId(1), 1), Value::from("a"), 0);
        let w2 = h.begin_write(OpId::new(WriterId(2), 1), Value::from("b"), 5);
        h.complete_write(w2, t(1, 2), 20);
        h.complete_write(w1, t(2, 1), 25); // higher tag completes later; both overlap
        assert!(check_write_order(&h).is_empty());
    }

    #[test]
    fn duplicate_tags_are_flagged() {
        let mut h = History::new();
        let w1 = h.begin_write(OpId::new(WriterId(1), 1), Value::from("a"), 0);
        h.complete_write(w1, t(1, 1), 10);
        let w2 = h.begin_write(OpId::new(WriterId(2), 1), Value::from("b"), 20);
        h.complete_write(w2, t(1, 1), 30);
        let v = check_write_order(&h);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::DuplicateTag);
    }

    #[test]
    fn real_time_inversion_is_flagged() {
        let mut h = History::new();
        let w1 = h.begin_write(OpId::new(WriterId(1), 1), Value::from("a"), 0);
        h.complete_write(w1, t(5, 1), 10);
        let w2 = h.begin_write(OpId::new(WriterId(2), 1), Value::from("b"), 20);
        h.complete_write(w2, t(3, 2), 30); // later write, smaller tag
        let v = check_write_order(&h);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::OrderInversion);
    }

    #[test]
    fn reads_are_ignored() {
        let mut h = History::new();
        let r = h.begin_read(OpId::new(ReaderId(0), 1), 0);
        h.complete_read(r, Value::initial(), Tag::ZERO, 5);
        assert!(check_write_order(&h).is_empty());
    }
}
