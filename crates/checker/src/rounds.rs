//! Round accounting (Definition 3).
//!
//! A *one-shot* read completes in exactly one round of client-to-server
//! communication. The runtimes record per-operation round counts; this
//! module summarises them so experiments can assert, e.g., that every BSR
//! and BCSR read used one round while BSR-2P reads used at least two.

use safereg_common::history::History;

/// Distribution of rounds used by completed reads.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundProfile {
    /// Number of completed reads.
    pub reads: usize,
    /// Minimum rounds over completed reads (0 when there are none).
    pub min: u32,
    /// Maximum rounds over completed reads.
    pub max: u32,
    /// Sum of rounds (for means).
    pub total: u64,
}

impl RoundProfile {
    /// `true` when every read was one-shot (Definition 3).
    pub fn all_one_shot(&self) -> bool {
        self.reads > 0 && self.min == 1 && self.max == 1
    }

    /// Mean rounds per read.
    pub fn mean(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.total as f64 / self.reads as f64
        }
    }
}

/// Profiles the rounds of all completed reads in a history.
pub fn read_round_profile(history: &History) -> RoundProfile {
    let mut profile = RoundProfile::default();
    for read in history.completed_reads() {
        profile.reads += 1;
        profile.total += u64::from(read.rounds);
        profile.max = profile.max.max(read.rounds);
        profile.min = if profile.reads == 1 {
            read.rounds
        } else {
            profile.min.min(read.rounds)
        };
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use safereg_common::history::OpHandle;
    use safereg_common::ids::ReaderId;
    use safereg_common::msg::OpId;
    use safereg_common::tag::Tag;
    use safereg_common::value::Value;

    fn read_with_rounds(h: &mut History, seq: u64, rounds: u32) -> OpHandle {
        let r = h.begin_read(OpId::new(ReaderId(0), seq), seq * 10);
        h.add_cost(r, rounds, 0, 0);
        h.complete_read(r, Value::initial(), Tag::ZERO, seq * 10 + 5);
        r
    }

    #[test]
    fn one_shot_profile() {
        let mut h = History::new();
        read_with_rounds(&mut h, 1, 1);
        read_with_rounds(&mut h, 2, 1);
        let p = read_round_profile(&h);
        assert!(p.all_one_shot());
        assert_eq!(p.mean(), 1.0);
        assert_eq!((p.min, p.max, p.reads), (1, 1, 2));
    }

    #[test]
    fn mixed_rounds_profile() {
        let mut h = History::new();
        read_with_rounds(&mut h, 1, 1);
        read_with_rounds(&mut h, 2, 3);
        let p = read_round_profile(&h);
        assert!(!p.all_one_shot());
        assert_eq!(p.mean(), 2.0);
        assert_eq!((p.min, p.max), (1, 3));
    }

    #[test]
    fn empty_history_profile() {
        let p = read_round_profile(&History::new());
        assert!(!p.all_one_shot());
        assert_eq!(p.mean(), 0.0);
    }
}
