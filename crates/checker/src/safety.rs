//! MWMR safeness (Definition 1).
//!
//! (i) A read that is *not* concurrent with any write must return the value
//! of some write `w` that precedes it, as long as no other write falls
//! completely between `w` and the read — i.e. the returned write must not
//! be *superseded*. The initial value `v_0` is admissible only when no
//! completed write precedes the read.
//!
//! (ii) A read concurrent with some write may return any value "within the
//! register's allowed range"; we check the stronger validity our protocols
//! actually provide (a consequence of the `f + 1`-witness rule, Lemma 5):
//! the value was written by *some* operation, or is `v_0`.

use safereg_common::history::{History, OpKind, OpRecord};
use safereg_common::tag::Tag;

use crate::{Violation, ViolationKind};

fn read_outcome(r: &OpRecord) -> Option<(&safereg_common::value::Value, Option<Tag>)> {
    match &r.kind {
        OpKind::Read {
            returned: Some(v),
            returned_tag,
        } => Some((v, *returned_tag)),
        _ => None,
    }
}

/// Checks Definition 1 over every completed read.
///
/// # Examples
///
/// ```
/// use safereg_checker::check_safety;
/// use safereg_common::history::History;
/// use safereg_common::ids::{ReaderId, WriterId};
/// use safereg_common::msg::OpId;
/// use safereg_common::tag::Tag;
/// use safereg_common::value::Value;
///
/// let mut h = History::new();
/// let w = h.begin_write(OpId::new(WriterId(0), 1), Value::from("x"), 0);
/// h.complete_write(w, Tag::new(1, WriterId(0)), 10);
/// let r = h.begin_read(OpId::new(ReaderId(0), 1), 20);
/// h.complete_read(r, Value::from("x"), Tag::new(1, WriterId(0)), 30);
/// assert!(check_safety(&h).is_empty());
/// ```
pub fn check_safety(history: &History) -> Vec<Violation> {
    let mut violations = Vec::new();
    let writes: Vec<&OpRecord> = history
        .records()
        .iter()
        .filter(|r| r.kind.is_write())
        .collect();

    for read in history.completed_reads() {
        violations.extend(check_one_read(read, &writes, |_| false));
    }
    violations
}

/// Checks Definition 1 for a single completed read against a set of write
/// records. Shared between the whole-history pass above and the incremental
/// [`WindowedChecker`](crate::window::WindowedChecker), which judges each
/// read at completion against its live window. `ever_written` answers
/// whether a value was written by some operation *no longer in `writes`*:
/// the unbounded pass holds the whole history and passes `|_| false`; the
/// windowed checker passes its pruned-value digest so Definition 1(ii)
/// validity still sees writes the window has dropped.
pub(crate) fn check_one_read(
    read: &OpRecord,
    writes: &[&OpRecord],
    ever_written: impl Fn(&safereg_common::value::Value) -> bool,
) -> Option<Violation> {
    let (value, tag) = read_outcome(read)?;

    let concurrent = writes.iter().any(|w| w.concurrent_with(read));
    if concurrent {
        // Definition 1(ii) + validity: the value must have been written
        // (by a complete or incomplete write) or be v0.
        let written = value.is_initial()
            || writes.iter().any(|w| match &w.kind {
                OpKind::Write { value: wv, .. } => wv == value,
                OpKind::Read { .. } => false,
            })
            || ever_written(value);
        if !written {
            return Some(Violation {
                op: read.op,
                kind: ViolationKind::InvalidValue,
                detail: format!("read returned never-written value {value}"),
            });
        }
        return None;
    }

    // Definition 1(i): the admissible writes are the completed
    // predecessors not entirely superseded by another completed
    // predecessor.
    let preceding: Vec<&OpRecord> = writes
        .iter()
        .copied()
        .filter(|w| w.is_complete() && w.precedes(read))
        .collect();
    let admissible: Vec<&OpRecord> = preceding
        .iter()
        .copied()
        .filter(|w| {
            !preceding.iter().any(|between| {
                !std::ptr::eq(*between, *w) && w.precedes(between) && between.precedes(read)
            })
        })
        .collect();

    if admissible.is_empty() {
        // No write precedes the read: only v0 is admissible.
        if !value.is_initial() {
            return Some(Violation {
                op: read.op,
                kind: ViolationKind::InvalidValue,
                detail: format!("read with no preceding write returned {value}"),
            });
        }
        return None;
    }

    let matches_admissible = admissible.iter().any(|w| match &w.kind {
        OpKind::Write {
            value: wv,
            tag: wtag,
        } => wv == value && (tag.is_none() || *wtag == tag),
        OpKind::Read { .. } => false,
    });
    if !matches_admissible {
        let admissible_tags: Vec<String> = admissible
            .iter()
            .filter_map(|w| match &w.kind {
                OpKind::Write { tag: Some(t), .. } => Some(t.to_string()),
                _ => None,
            })
            .collect();
        return Some(Violation {
            op: read.op,
            kind: ViolationKind::StaleRead,
            detail: format!(
                "non-concurrent read returned {value} (tag {:?}), admissible writes: [{}]",
                tag,
                admissible_tags.join(", ")
            ),
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use safereg_common::ids::{ReaderId, WriterId};
    use safereg_common::msg::OpId;
    use safereg_common::value::Value;

    fn t(num: u64, w: u16) -> Tag {
        Tag::new(num, WriterId(w))
    }

    /// w1 completes, then w2 completes, then a read returns w2's value: safe.
    #[test]
    fn fresh_read_is_safe() {
        let mut h = History::new();
        let w1 = h.begin_write(OpId::new(WriterId(1), 1), Value::from("a"), 0);
        h.complete_write(w1, t(1, 1), 10);
        let w2 = h.begin_write(OpId::new(WriterId(2), 1), Value::from("b"), 20);
        h.complete_write(w2, t(2, 2), 30);
        let r = h.begin_read(OpId::new(ReaderId(0), 1), 40);
        h.complete_read(r, Value::from("b"), t(2, 2), 50);
        assert!(check_safety(&h).is_empty());
    }

    /// The Theorem 5 shape: returning the superseded value is a violation.
    #[test]
    fn superseded_value_is_flagged() {
        let mut h = History::new();
        let w1 = h.begin_write(OpId::new(WriterId(1), 1), Value::from("a"), 0);
        h.complete_write(w1, t(1, 1), 10);
        let w2 = h.begin_write(OpId::new(WriterId(2), 1), Value::from("b"), 20);
        h.complete_write(w2, t(2, 2), 30);
        let r = h.begin_read(OpId::new(ReaderId(0), 1), 40);
        h.complete_read(r, Value::from("a"), t(1, 1), 50);
        let v = check_safety(&h);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::StaleRead);
    }

    /// Returning v0 after a completed write is also stale.
    #[test]
    fn initial_value_after_completed_write_is_flagged() {
        let mut h = History::new();
        let w = h.begin_write(OpId::new(WriterId(1), 1), Value::from("a"), 0);
        h.complete_write(w, t(1, 1), 10);
        let r = h.begin_read(OpId::new(ReaderId(0), 1), 20);
        h.complete_read(r, Value::initial(), Tag::ZERO, 30);
        let v = check_safety(&h);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::StaleRead);
    }

    /// A read concurrent with a write may return the old, the new, or v0.
    #[test]
    fn concurrent_read_is_permissive() {
        for returned in [Value::from("old"), Value::from("new"), Value::initial()] {
            let mut h = History::new();
            let w0 = h.begin_write(OpId::new(WriterId(1), 1), Value::from("old"), 0);
            h.complete_write(w0, t(1, 1), 10);
            // Concurrent write, incomplete.
            h.begin_write(OpId::new(WriterId(2), 1), Value::from("new"), 20);
            let r = h.begin_read(OpId::new(ReaderId(0), 1), 30);
            let tag = if returned == Value::from("old") {
                t(1, 1)
            } else {
                t(2, 2)
            };
            let tag = if returned.is_initial() {
                Tag::ZERO
            } else {
                tag
            };
            h.complete_read(r, returned, tag, 40);
            assert!(
                check_safety(&h).is_empty(),
                "concurrent reads are unconstrained in value"
            );
        }
    }

    /// But a concurrent read may not return a never-written value.
    #[test]
    fn fabricated_value_is_flagged_even_under_concurrency() {
        let mut h = History::new();
        h.begin_write(OpId::new(WriterId(1), 1), Value::from("real"), 0);
        let r = h.begin_read(OpId::new(ReaderId(0), 1), 5);
        h.complete_read(r, Value::from("forged"), t(9, 9), 15);
        let v = check_safety(&h);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::InvalidValue);
    }

    /// With two admissible concurrent-with-each-other completed writes,
    /// either value passes.
    #[test]
    fn either_of_two_concurrent_writes_is_admissible() {
        for val in ["a", "b"] {
            let mut h = History::new();
            let w1 = h.begin_write(OpId::new(WriterId(1), 1), Value::from("a"), 0);
            let w2 = h.begin_write(OpId::new(WriterId(2), 1), Value::from("b"), 5);
            h.complete_write(w1, t(1, 1), 20);
            h.complete_write(w2, t(1, 2), 20);
            let r = h.begin_read(OpId::new(ReaderId(0), 1), 30);
            let tag = if val == "a" { t(1, 1) } else { t(1, 2) };
            h.complete_read(r, Value::from(val), tag, 40);
            assert!(
                check_safety(&h).is_empty(),
                "value {val} should be admissible"
            );
        }
    }

    /// A read before any write must return v0.
    #[test]
    fn read_before_all_writes_returns_v0() {
        let mut h = History::new();
        let r = h.begin_read(OpId::new(ReaderId(0), 1), 0);
        h.complete_read(r, Value::initial(), Tag::ZERO, 10);
        let w = h.begin_write(OpId::new(WriterId(1), 1), Value::from("later"), 20);
        h.complete_write(w, t(1, 1), 30);
        assert!(check_safety(&h).is_empty());
    }

    /// Value matches but tag does not: flagged (the value was reincarnated
    /// under a wrong tag).
    #[test]
    fn tag_mismatch_is_flagged() {
        let mut h = History::new();
        let w = h.begin_write(OpId::new(WriterId(1), 1), Value::from("a"), 0);
        h.complete_write(w, t(1, 1), 10);
        let r = h.begin_read(OpId::new(ReaderId(0), 1), 20);
        h.complete_read(r, Value::from("a"), t(7, 7), 30);
        let v = check_safety(&h);
        assert_eq!(v.len(), 1);
    }
}
