//! Latency statistics over histories.
//!
//! Experiment reports quote mean and tail latencies per operation class;
//! this module computes them from recorded [`History`] latencies
//! (simulated ticks or wall-clock units — the math doesn't care).

use safereg_common::history::{History, OpRecord};

/// Summary statistics of a latency sample.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Smallest latency.
    pub min: u64,
    /// Largest latency.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (p50).
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl LatencyStats {
    /// Computes statistics from raw samples. Returns `None` for an empty
    /// sample.
    pub fn from_samples(mut samples: Vec<u64>) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        let count = samples.len();
        let sum: u64 = samples.iter().sum();
        // Nearest-rank percentiles (ceil(p/100 * N), 1-indexed).
        let rank = |p: f64| -> u64 {
            let idx = ((p / 100.0 * count as f64).ceil() as usize).clamp(1, count);
            samples[idx - 1]
        };
        Some(LatencyStats {
            count,
            min: samples[0],
            max: samples[count - 1],
            mean: sum as f64 / count as f64,
            p50: rank(50.0),
            p99: rank(99.0),
        })
    }
}

/// Latency statistics of completed operations matching `pred`.
pub fn latency_stats(history: &History, pred: impl Fn(&OpRecord) -> bool) -> Option<LatencyStats> {
    let samples: Vec<u64> = history
        .records()
        .iter()
        .filter(|r| r.is_complete() && pred(r))
        .filter_map(OpRecord::latency)
        .collect();
    LatencyStats::from_samples(samples)
}

/// Convenience: read-latency statistics.
pub fn read_latency_stats(history: &History) -> Option<LatencyStats> {
    latency_stats(history, |r| r.kind.is_read())
}

/// Convenience: write-latency statistics.
pub fn write_latency_stats(history: &History) -> Option<LatencyStats> {
    latency_stats(history, |r| r.kind.is_write())
}

#[cfg(test)]
mod tests {
    use super::*;
    use safereg_common::ids::{ReaderId, WriterId};
    use safereg_common::msg::OpId;
    use safereg_common::tag::Tag;
    use safereg_common::value::Value;

    #[test]
    fn empty_sample_is_none() {
        assert!(LatencyStats::from_samples(Vec::new()).is_none());
        assert!(read_latency_stats(&History::new()).is_none());
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let stats = LatencyStats::from_samples((1..=100).collect()).unwrap();
        assert_eq!(stats.count, 100);
        assert_eq!((stats.min, stats.max), (1, 100));
        assert_eq!(stats.p50, 50);
        assert_eq!(stats.p99, 99);
        assert!((stats.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn single_sample_is_every_statistic() {
        let stats = LatencyStats::from_samples(vec![42]).unwrap();
        assert_eq!(
            (stats.min, stats.max, stats.p50, stats.p99),
            (42, 42, 42, 42)
        );
        assert_eq!(stats.mean, 42.0);
    }

    #[test]
    fn history_split_by_kind() {
        let mut h = History::new();
        let w = h.begin_write(OpId::new(WriterId(0), 1), Value::from("x"), 0);
        h.complete_write(w, Tag::new(1, WriterId(0)), 40);
        let r = h.begin_read(OpId::new(ReaderId(0), 1), 100);
        h.complete_read(r, Value::from("x"), Tag::new(1, WriterId(0)), 120);

        assert_eq!(write_latency_stats(&h).unwrap().mean, 40.0);
        assert_eq!(read_latency_stats(&h).unwrap().mean, 20.0);
    }
}
