//! Latency statistics over histories.
//!
//! Experiment reports quote mean and tail latencies per operation class;
//! this module computes them from recorded [`History`] latencies
//! (simulated ticks or wall-clock units — the math doesn't care).

use safereg_common::history::{History, OpRecord};

/// Summary statistics of a latency sample.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Smallest latency.
    pub min: u64,
    /// Largest latency.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (p50).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

impl LatencyStats {
    /// Computes statistics from raw samples. Returns `None` for an empty
    /// sample.
    pub fn from_samples(mut samples: Vec<u64>) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        let count = samples.len();
        let sum: u64 = samples.iter().sum();
        // Nearest-rank percentiles (ceil(p/100 * N), 1-indexed).
        let rank = |p: f64| -> u64 {
            let idx = ((p / 100.0 * count as f64).ceil() as usize).clamp(1, count);
            samples[idx - 1]
        };
        Some(LatencyStats {
            count,
            min: samples[0],
            max: samples[count - 1],
            mean: sum as f64 / count as f64,
            p50: rank(50.0),
            p90: rank(90.0),
            p99: rank(99.0),
            p999: rank(99.9),
        })
    }

    /// Computes statistics from a pre-aggregated `(value, count)` sample,
    /// e.g. the buckets of an `obs` histogram where `value` is the bucket's
    /// representative (upper bound). Nearest-rank percentiles over the
    /// expanded multiset, computed from cumulative counts without
    /// materialising it. Returns `None` when every count is zero.
    pub fn from_bucketed(buckets: &[(u64, u64)]) -> Option<Self> {
        let mut buckets: Vec<(u64, u64)> =
            buckets.iter().copied().filter(|(_, c)| *c > 0).collect();
        if buckets.is_empty() {
            return None;
        }
        buckets.sort_unstable();
        let count: u64 = buckets.iter().map(|(_, c)| c).sum();
        let sum: f64 = buckets.iter().map(|(v, c)| *v as f64 * *c as f64).sum();
        // Nearest rank over the implied sorted multiset: the target rank is
        // ceil(p/100 * N); walk cumulative counts to the bucket holding it.
        let rank = |p: f64| -> u64 {
            let target = ((p / 100.0 * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (v, c) in &buckets {
                seen += c;
                if seen >= target {
                    return *v;
                }
            }
            buckets[buckets.len() - 1].0
        };
        Some(LatencyStats {
            count: count as usize,
            min: buckets[0].0,
            max: buckets[buckets.len() - 1].0,
            mean: sum / count as f64,
            p50: rank(50.0),
            p90: rank(90.0),
            p99: rank(99.0),
            p999: rank(99.9),
        })
    }

    /// Combines two summaries. Count, min, max and mean are exact; the
    /// percentiles of the union are not recoverable from two summaries, so
    /// each is taken as the **maximum** of the two inputs — a conservative
    /// upper bound (never optimistic about tails), which is the safe
    /// direction for latency reporting.
    #[must_use]
    pub fn merge(&self, other: &LatencyStats) -> LatencyStats {
        let count = self.count + other.count;
        LatencyStats {
            count,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            mean: (self.mean * self.count as f64 + other.mean * other.count as f64)
                / count.max(1) as f64,
            p50: self.p50.max(other.p50),
            p90: self.p90.max(other.p90),
            p99: self.p99.max(other.p99),
            p999: self.p999.max(other.p999),
        }
    }
}

/// Latency statistics of completed operations matching `pred`.
pub fn latency_stats(history: &History, pred: impl Fn(&OpRecord) -> bool) -> Option<LatencyStats> {
    let samples: Vec<u64> = history
        .records()
        .iter()
        .filter(|r| r.is_complete() && pred(r))
        .filter_map(OpRecord::latency)
        .collect();
    LatencyStats::from_samples(samples)
}

/// Convenience: read-latency statistics.
pub fn read_latency_stats(history: &History) -> Option<LatencyStats> {
    latency_stats(history, |r| r.kind.is_read())
}

/// Convenience: write-latency statistics.
pub fn write_latency_stats(history: &History) -> Option<LatencyStats> {
    latency_stats(history, |r| r.kind.is_write())
}

#[cfg(test)]
mod tests {
    use super::*;
    use safereg_common::ids::{ReaderId, WriterId};
    use safereg_common::msg::OpId;
    use safereg_common::tag::Tag;
    use safereg_common::value::Value;

    #[test]
    fn empty_sample_is_none() {
        assert!(LatencyStats::from_samples(Vec::new()).is_none());
        assert!(read_latency_stats(&History::new()).is_none());
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let stats = LatencyStats::from_samples((1..=100).collect()).unwrap();
        assert_eq!(stats.count, 100);
        assert_eq!((stats.min, stats.max), (1, 100));
        assert_eq!(stats.p50, 50);
        assert_eq!(stats.p90, 90);
        assert_eq!(stats.p99, 99);
        assert_eq!(stats.p999, 100, "ceil(0.999 * 100) = 100");
        assert!((stats.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn bucketed_matches_expanded_samples() {
        // (value, count) pairs and the equivalent flat sample must agree on
        // every statistic — from_bucketed is the same nearest-rank math.
        let buckets = [(5u64, 3u64), (10, 95), (40, 1), (700, 1)];
        let mut flat = Vec::new();
        for (v, c) in buckets {
            flat.extend(std::iter::repeat_n(v, c as usize));
        }
        let a = LatencyStats::from_bucketed(&buckets).unwrap();
        let b = LatencyStats::from_samples(flat).unwrap();
        assert_eq!(a, b);
        assert_eq!((a.p50, a.p90, a.p99, a.p999), (10, 10, 40, 700));
        assert!(LatencyStats::from_bucketed(&[(9, 0)]).is_none());
        // Unsorted input is sorted internally.
        let c = LatencyStats::from_bucketed(&[(700, 1), (10, 95), (40, 1), (5, 3)]).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn merge_is_exact_on_moments_conservative_on_tails() {
        let a = LatencyStats::from_samples(vec![1, 2, 3, 4]).unwrap();
        let b = LatencyStats::from_samples(vec![100]).unwrap();
        let m = a.merge(&b);
        assert_eq!(m.count, 5);
        assert_eq!((m.min, m.max), (1, 100));
        assert!((m.mean - 22.0).abs() < 1e-9);
        // Tails are upper-bounded, never optimistic.
        let exact = LatencyStats::from_samples(vec![1, 2, 3, 4, 100]).unwrap();
        assert!(m.p50 >= exact.p50 && m.p99 >= exact.p99 && m.p999 >= exact.p999);
    }

    #[test]
    fn single_sample_is_every_statistic() {
        let stats = LatencyStats::from_samples(vec![42]).unwrap();
        assert_eq!(
            (stats.min, stats.max, stats.p50, stats.p99),
            (42, 42, 42, 42)
        );
        assert_eq!(stats.mean, 42.0);
    }

    #[test]
    fn history_split_by_kind() {
        let mut h = History::new();
        let w = h.begin_write(OpId::new(WriterId(0), 1), Value::from("x"), 0);
        h.complete_write(w, Tag::new(1, WriterId(0)), 40);
        let r = h.begin_read(OpId::new(ReaderId(0), 1), 100);
        h.complete_read(r, Value::from("x"), Tag::new(1, WriterId(0)), 120);

        assert_eq!(write_latency_stats(&h).unwrap().mean, 40.0);
        assert_eq!(read_latency_stats(&h).unwrap().mean, 20.0);
    }
}
