//! Human-readable execution timelines.
//!
//! Renders a [`History`] as an ASCII timeline — one line per operation with
//! its interval, outcome and cost — which the examples and harness print
//! when a checker reports a violation, so the offending schedule can be
//! read off directly.

use safereg_common::history::{History, OpKind, OpRecord};

fn describe(op: &OpRecord) -> String {
    match &op.kind {
        OpKind::Write { value, tag } => match tag {
            Some(t) => format!("write {value} -> {t}"),
            None => format!("write {value} (incomplete)"),
        },
        OpKind::Read {
            returned,
            returned_tag,
        } => match (returned, returned_tag) {
            (Some(v), Some(t)) => format!("read -> {v} @ {t}"),
            _ => "read (incomplete)".to_string(),
        },
    }
}

/// Renders the history as one line per operation, in invocation order.
///
/// # Examples
///
/// ```
/// use safereg_checker::timeline::render_timeline;
/// use safereg_common::history::History;
/// use safereg_common::ids::WriterId;
/// use safereg_common::msg::OpId;
/// use safereg_common::tag::Tag;
/// use safereg_common::value::Value;
///
/// let mut h = History::new();
/// let w = h.begin_write(OpId::new(WriterId(0), 1), Value::from("x"), 0);
/// h.complete_write(w, Tag::new(1, WriterId(0)), 40);
/// let out = render_timeline(&h);
/// assert!(out.contains("w0#1"));
/// assert!(out.contains("[0, 40]"));
/// ```
pub fn render_timeline(history: &History) -> String {
    let mut lines = Vec::with_capacity(history.len());
    for op in history.records() {
        let interval = match op.completed_at {
            Some(done) => format!("[{}, {}]", op.invoked_at, done),
            None => format!("[{}, ...]", op.invoked_at),
        };
        lines.push(format!(
            "{:<8} {:<16} {} ({} rounds, {} msgs, {} B)",
            op.op.to_string(),
            interval,
            describe(op),
            op.rounds,
            op.msgs,
            op.bytes
        ));
    }
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use safereg_common::ids::{ReaderId, WriterId};
    use safereg_common::msg::OpId;
    use safereg_common::tag::Tag;
    use safereg_common::value::Value;

    #[test]
    fn renders_complete_and_incomplete_ops() {
        let mut h = History::new();
        let w = h.begin_write(OpId::new(WriterId(1), 1), Value::from("committed"), 0);
        h.complete_write(w, Tag::new(1, WriterId(1)), 40);
        h.begin_write(OpId::new(WriterId(2), 1), Value::from("phantom"), 10);
        let r = h.begin_read(OpId::new(ReaderId(0), 1), 50);
        h.complete_read(r, Value::from("committed"), Tag::new(1, WriterId(1)), 70);

        let out = render_timeline(&h);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("w1#1") && lines[0].contains("[0, 40]"));
        assert!(lines[1].contains("(incomplete)") && lines[1].contains("[10, ...]"));
        assert!(lines[2].contains("r0#1") && lines[2].contains("@ (1,w1)"));
    }

    #[test]
    fn empty_history_renders_empty() {
        assert!(render_timeline(&History::new()).is_empty());
    }
}
