//! Memory-bounded incremental safety checking.
//!
//! [`check_safety`](crate::check_safety) holds the whole history in memory,
//! which is exactly wrong for a soak run that wants to execute tens of
//! millions of operations: the history *is* the memory leak. The
//! [`WindowedChecker`] keeps only the live *window* of a single key's
//! history and judges each read the moment it completes.
//!
//! Why that is sound: by the time a read completes, every fact Definition 1
//! consults about it is settled, provided operations are fed in real-time
//! order. Its preceding-write set is fixed at invocation (a write precedes
//! the read iff it completed before the read was invoked), the superseded
//! relation among those writes is likewise in the past, and no write
//! invoked after the read completes can ever be concurrent with it. So a
//! read is checked once, at completion, and immediately forgotten — reads
//! never participate in other operations' checks.
//!
//! Completed writes must stick around longer: a later read may still return
//! them. The pruning rule mirrors admissibility. Let the *frontier* be the
//! smallest invocation instant among still-incomplete operations (or the
//! latest event fed, when none are in flight). A completed write `w` can be
//! dropped once some other completed write `w'` supersedes it *below the
//! frontier* — `w` completed before `w'` was invoked and `w'` completed
//! before the frontier — because every current and future read then sees
//! `w'` (or something newer) strictly between `w` and itself, making `w`
//! inadmissible forever.
//!
//! Pruning alone would make the checker **strictly stricter** than the
//! unbounded one for concurrent reads: Definition 1(ii) lets a concurrent
//! read return any previously written value, and a value written
//! arbitrarily long ago may have been pruned. Live Byzantine replicas
//! produce exactly that history — a faulty server replaying epochs-old
//! state next to a correct-but-behind replica can legitimately witness a
//! long-superseded value. The checker therefore keeps a *validity digest*:
//! an 8-byte FNV-1a fingerprint of every value ever handed to
//! [`begin_write`](WindowedChecker::begin_write), consulted by the
//! Definition 1(ii) validity test after the window itself misses. The
//! window stays bounded by concurrency; the digest grows 8 bytes per
//! write — two orders of magnitude below a retained [`OpRecord`] — and a
//! fingerprint collision (odds ~`n²/2⁶⁴`) can only suppress a violation,
//! never invent one. With the digest the windowed checker is **exact**:
//! the property test in this module drives both checkers over randomized
//! schedules, including concurrent reads of long-pruned values, and
//! demands identical verdicts.

use std::collections::BTreeMap;

use safereg_common::history::{Instant, OpKind, OpRecord};
use safereg_common::msg::OpId;
use safereg_common::tag::Tag;
use safereg_common::value::Value;

use crate::safety::check_one_read;
use crate::Violation;

/// FNV-1a 64-bit over the value bytes: the validity digest's fingerprint.
fn fingerprint(value: &Value) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in value.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Handle to an operation in flight inside a [`WindowedChecker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WinHandle(u64);

/// An incremental, memory-bounded MWMR-safeness checker for one key.
///
/// Feed invocations and responses in real-time order; each read is judged
/// at completion against the live window and the verdicts accumulate in
/// [`violations`](Self::violations). Call [`prune`](Self::prune)
/// periodically (every few completions is fine) to drop writes that can no
/// longer matter; [`peak_window`](Self::peak_window) reports the high-water
/// mark, which stays bounded by the degree of concurrency rather than the
/// length of the run.
#[derive(Debug, Default)]
pub struct WindowedChecker {
    next: u64,
    window: BTreeMap<u64, OpRecord>,
    /// Abandoned writes: kept in the window (their value may yet be
    /// witnessed by a reader) but excluded from the frontier so they do
    /// not block pruning forever.
    zombies: std::collections::BTreeSet<u64>,
    /// FNV-1a fingerprints of every value ever written, surviving pruning
    /// so Definition 1(ii) validity stays exact for concurrent reads that
    /// return values the window has long dropped.
    ever_written: std::collections::BTreeSet<u64>,
    violations: Vec<Violation>,
    /// Latest event instant fed; the frontier when nothing is in flight.
    now: Instant,
    checked: u64,
    pruned: u64,
    peak: usize,
}

impl WindowedChecker {
    /// Creates an empty checker.
    pub fn new() -> Self {
        Self::default()
    }

    fn insert(&mut self, rec: OpRecord) -> WinHandle {
        let id = self.next;
        self.next += 1;
        self.window.insert(id, rec);
        self.peak = self.peak.max(self.window.len());
        WinHandle(id)
    }

    /// Records a write invocation.
    pub fn begin_write(&mut self, op: OpId, value: Value, at: Instant) -> WinHandle {
        self.now = self.now.max(at);
        self.ever_written.insert(fingerprint(&value));
        self.insert(OpRecord {
            op,
            kind: OpKind::Write { value, tag: None },
            invoked_at: at,
            completed_at: None,
            rounds: 0,
            msgs: 0,
            bytes: 0,
        })
    }

    /// Records a write response.
    ///
    /// # Panics
    ///
    /// Panics on a stale or read handle — a harness bug, not bad input.
    pub fn complete_write(&mut self, h: WinHandle, tag: Tag, at: Instant) {
        self.now = self.now.max(at);
        let rec = self.window.get_mut(&h.0).expect("live write handle");
        match &mut rec.kind {
            OpKind::Write { tag: slot, .. } => *slot = Some(tag),
            OpKind::Read { .. } => panic!("complete_write on a read handle"),
        }
        rec.completed_at = Some(at);
    }

    /// Records a read invocation.
    pub fn begin_read(&mut self, op: OpId, at: Instant) -> WinHandle {
        self.now = self.now.max(at);
        self.insert(OpRecord {
            op,
            kind: OpKind::Read {
                returned: None,
                returned_tag: None,
            },
            invoked_at: at,
            completed_at: None,
            rounds: 0,
            msgs: 0,
            bytes: 0,
        })
    }

    /// Records a read response, judges the read against the live window,
    /// and forgets it.
    ///
    /// # Panics
    ///
    /// Panics on a stale or write handle.
    pub fn complete_read(&mut self, h: WinHandle, value: Value, tag: Tag, at: Instant) {
        self.now = self.now.max(at);
        let mut rec = self.window.remove(&h.0).expect("live read handle");
        match &mut rec.kind {
            OpKind::Read {
                returned,
                returned_tag,
            } => {
                *returned = Some(value);
                *returned_tag = Some(tag);
            }
            OpKind::Write { .. } => panic!("complete_read on a write handle"),
        }
        rec.completed_at = Some(at);
        let writes: Vec<&OpRecord> = self.window.values().filter(|r| r.kind.is_write()).collect();
        self.checked += 1;
        let digest = &self.ever_written;
        if let Some(v) = check_one_read(&rec, &writes, |v| digest.contains(&fingerprint(v))) {
            self.violations.push(v);
        }
    }

    /// Gives up on an operation whose client stopped driving it (op retry
    /// budget exhausted, thread shut down).
    ///
    /// An abandoned *read* is simply forgotten — it was never judged and
    /// influences nothing. An abandoned *write* is different: its frames
    /// may have partially reached the replicas, so a later read can
    /// legitimately return its value under Definition 1(ii) (the write is
    /// incomplete, hence concurrent with every later read). It therefore
    /// stays in the window as a permanently-incomplete "zombie", but stops
    /// pinning the frontier so pruning continues around it.
    pub fn abandon(&mut self, h: WinHandle) {
        let Some(rec) = self.window.get(&h.0) else {
            return;
        };
        if rec.is_complete() {
            return;
        }
        if rec.kind.is_read() {
            self.window.remove(&h.0);
        } else {
            self.zombies.insert(h.0);
        }
    }

    /// The smallest invocation instant among in-flight operations, or the
    /// latest fed event when none are in flight: no *future* operation can
    /// be invoked before this. Zombie writes are exempt — they will never
    /// complete, so they constrain nothing a future read can observe
    /// beyond their (retained) value.
    fn frontier(&self) -> Instant {
        self.window
            .iter()
            .filter(|(id, r)| !r.is_complete() && !self.zombies.contains(id))
            .map(|(_, r)| r.invoked_at)
            .min()
            .unwrap_or(self.now)
    }

    /// Drops every completed write superseded below the frontier. Returns
    /// how many records were pruned.
    pub fn prune(&mut self) -> usize {
        let frontier = self.frontier();
        // A write `w` dies when some completed `w'` both follows it
        // (w.completed < w'.invoked) and completed before the frontier:
        // every read invoked from here on sees `w'` strictly between
        // itself and `w`.
        let doomed: Vec<u64> = self
            .window
            .iter()
            .filter(|(_, w)| w.kind.is_write() && w.is_complete())
            .filter(|(_, w)| {
                let done = w.completed_at.expect("filtered complete");
                self.window.values().any(|w2| {
                    w2.kind.is_write()
                        && w2
                            .completed_at
                            .is_some_and(|d2| done < w2.invoked_at && d2 < frontier)
                })
            })
            .map(|(id, _)| *id)
            .collect();
        for id in &doomed {
            self.window.remove(id);
        }
        self.pruned += doomed.len() as u64;
        doomed.len()
    }

    /// Violations found so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Takes the accumulated violations, leaving the checker running.
    pub fn take_violations(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.violations)
    }

    /// Completed reads judged so far.
    pub fn reads_checked(&self) -> u64 {
        self.checked
    }

    /// Records pruned so far.
    pub fn pruned(&self) -> u64 {
        self.pruned
    }

    /// Current number of retained records.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// High-water mark of retained records across the whole run.
    pub fn peak_window(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_safety, ViolationKind};
    use safereg_common::history::History;
    use safereg_common::ids::{ReaderId, WriterId};
    use safereg_common::rng::DetRng;

    fn t(num: u64, w: u16) -> Tag {
        Tag::new(num, WriterId(w))
    }

    #[test]
    fn sequential_history_stays_tiny_and_clean() {
        let mut c = WindowedChecker::new();
        let mut at = 0u64;
        for i in 1..=1_000u64 {
            let w = c.begin_write(
                OpId::new(WriterId(0), i),
                Value::from(format!("v{i}").into_bytes()),
                at,
            );
            c.complete_write(w, t(i, 0), at + 1);
            let r = c.begin_read(OpId::new(ReaderId(0), i), at + 2);
            c.complete_read(
                r,
                Value::from(format!("v{i}").into_bytes()),
                t(i, 0),
                at + 3,
            );
            c.prune();
            at += 4;
        }
        assert!(c.violations().is_empty());
        assert_eq!(c.reads_checked(), 1_000);
        assert!(
            c.peak_window() <= 4,
            "sequential window stays O(1), got {}",
            c.peak_window()
        );
        assert!(c.pruned() >= 990);
    }

    #[test]
    fn stale_read_is_caught_after_pruning_started() {
        let mut c = WindowedChecker::new();
        let w1 = c.begin_write(OpId::new(WriterId(0), 1), Value::from("a"), 0);
        c.complete_write(w1, t(1, 0), 10);
        let w2 = c.begin_write(OpId::new(WriterId(0), 2), Value::from("b"), 20);
        c.complete_write(w2, t(2, 0), 30);
        c.prune();
        let r = c.begin_read(OpId::new(ReaderId(0), 1), 40);
        c.complete_read(r, Value::from("a"), t(1, 0), 50);
        let v = c.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::StaleRead);
    }

    #[test]
    fn in_flight_read_holds_the_frontier() {
        let mut c = WindowedChecker::new();
        let w1 = c.begin_write(OpId::new(WriterId(0), 1), Value::from("a"), 0);
        c.complete_write(w1, t(1, 0), 10);
        // A slow read invoked while w1 is the latest write…
        let r = c.begin_read(OpId::new(ReaderId(0), 1), 20);
        // …must keep w1 admissible even as later writes land and pruning
        // runs: the frontier is pinned at the read's invocation.
        let w2 = c.begin_write(OpId::new(WriterId(0), 2), Value::from("b"), 30);
        c.complete_write(w2, t(2, 0), 40);
        let w3 = c.begin_write(OpId::new(WriterId(0), 3), Value::from("c"), 50);
        c.complete_write(w3, t(3, 0), 60);
        c.prune();
        c.complete_read(r, Value::from("a"), t(1, 0), 70);
        assert!(
            c.violations().is_empty(),
            "read concurrent with w2/w3 may return w1: {:?}",
            c.violations()
        );
    }

    /// Randomized equivalence: the windowed checker accepts exactly the
    /// histories the unbounded checker accepts and flags exactly the reads
    /// it flags — including concurrent reads that resurrect values written
    /// (and pruned) arbitrarily long ago, which Definition 1(ii) allows
    /// and the validity digest must remember.
    #[test]
    fn pruned_checker_matches_unbounded_on_random_traces() {
        for seed in 0..8u64 {
            let mut rng = DetRng::seed_from(0xC0FFEE ^ seed);
            let mut h = History::new();
            let mut c = WindowedChecker::new();
            let mut at = 0u64;
            let mut seq = 0u64;
            // (value, tag, completed_at, invoked_at) of completed writes,
            // newest last — the generator's own record, not the checker's.
            let mut done: Vec<(Value, Tag, u64, u64)> = Vec::new();
            // One possibly in-flight write: (handles, value, tag, invoked).
            let mut open: Option<(
                crate::window::WinHandle,
                safereg_common::history::OpHandle,
                Value,
                Tag,
                u64,
            )> = None;

            for _ in 0..10_000 {
                at += 1 + rng.range_u64(0..3);
                let roll = rng.range_u64(0..100);
                if roll < 40 {
                    // Start or land a write.
                    if let Some((wh, hh, v, tag, _inv)) = open.take() {
                        c.complete_write(wh, tag, at);
                        h.complete_write(hh, tag, at);
                        done.push((v, tag, at, _inv));
                    } else {
                        seq += 1;
                        let v = Value::from(format!("v{seq}").into_bytes());
                        let tag = t(seq, 0);
                        let op = OpId::new(WriterId(0), seq);
                        let wh = c.begin_write(op, v.clone(), at);
                        let hh = h.begin_write(op, v.clone(), at);
                        open = Some((wh, hh, v, tag, at));
                    }
                } else if !done.is_empty() || open.is_some() {
                    // A read. Usually returns the newest completed write
                    // (or the in-flight one's value, which is valid under
                    // concurrency); rarely returns a deliberately stale
                    // value to plant a violation both checkers must flag.
                    let op = OpId::new(ReaderId(0), at);
                    let rh = c.begin_read(op, at);
                    let hh = h.begin_read(op, at);
                    at += 1 + rng.range_u64(0..2);
                    let stale = rng.range_u64(0..100) < 3 && done.len() >= 2 && open.is_none();
                    // Concurrent reads may resurrect the *oldest* value —
                    // long pruned from the window — and both checkers must
                    // accept (Definition 1(ii) validity via the digest).
                    let ancient = rng.range_u64(0..100) < 3 && done.len() >= 4 && open.is_some();
                    let (v, tag) = if ancient {
                        let (v, tag, ..) = &done[0];
                        (v.clone(), *tag)
                    } else if stale {
                        let (v, tag, ..) = &done[done.len() - 2];
                        (v.clone(), *tag)
                    } else if let Some((_, _, v, tag, _)) = &open {
                        (v.clone(), *tag)
                    } else {
                        let (v, tag, ..) = done.last().expect("non-empty");
                        (v.clone(), *tag)
                    };
                    c.complete_read(rh, v.clone(), tag, at);
                    h.complete_read(hh, v, tag, at);
                }
                if rng.range_u64(0..4) == 0 {
                    c.prune();
                }
            }
            if let Some((wh, hh, _, tag, _)) = open.take() {
                at += 1;
                c.complete_write(wh, tag, at);
                h.complete_write(hh, tag, at);
            }
            c.prune();

            let unbounded: Vec<(OpId, ViolationKind)> =
                check_safety(&h).iter().map(|v| (v.op, v.kind)).collect();
            let windowed: Vec<(OpId, ViolationKind)> =
                c.violations().iter().map(|v| (v.op, v.kind)).collect();
            assert_eq!(
                windowed, unbounded,
                "seed {seed}: windowed and unbounded verdicts diverge"
            );
            assert!(
                c.peak_window() < 16,
                "seed {seed}: window grew to {}",
                c.peak_window()
            );
        }
    }
}
