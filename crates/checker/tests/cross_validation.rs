//! Cross-validation of the checkers: well-formed sequential histories pass
//! every checker, and targeted mutations are flagged by exactly the checker
//! that owns the broken property.
//!
//! The always-on suite generates histories from the deterministic
//! [`DetRng`] and exhausts all four mutation kinds every round; the
//! original proptest suite sits behind the off-by-default `proptests`
//! feature.

use safereg_checker::{
    check_freshness, check_liveness, check_no_new_old_inversion, check_safety, check_write_order,
    CheckSummary, ViolationKind,
};
use safereg_common::history::History;
use safereg_common::ids::{ReaderId, WriterId};
use safereg_common::msg::OpId;
use safereg_common::rng::DetRng;
use safereg_common::tag::Tag;
use safereg_common::value::Value;

/// Builds a perfectly sequential history: writes and reads alternate, each
/// read returning the latest completed write.
fn sequential_history(ops: &[(bool, u8)]) -> History {
    let mut h = History::new();
    let mut t = 0u64;
    let mut wseq = 0u64;
    let mut rseq = 0u64;
    let mut latest = (Tag::ZERO, Value::initial());
    for (is_write, byte) in ops {
        if *is_write {
            wseq += 1;
            let tag = Tag::new(wseq, WriterId(0));
            let value = Value::from(vec![*byte]);
            let w = h.begin_write(OpId::new(WriterId(0), wseq), value.clone(), t);
            h.complete_write(w, tag, t + 10);
            latest = (tag, value);
        } else {
            rseq += 1;
            let r = h.begin_read(OpId::new(ReaderId(0), rseq), t);
            h.add_cost(r, 1, 0, 0);
            h.complete_read(r, latest.1.clone(), latest.0, t + 10);
        }
        t += 20;
    }
    h
}

fn random_ops(rng: &mut DetRng, min: usize, max: usize) -> Vec<(bool, u8)> {
    let len = min + rng.index(max - min);
    (0..len)
        .map(|_| (rng.chance(0.5), rng.next_u64() as u8))
        .collect()
}

#[test]
fn sequential_histories_pass_every_checker() {
    let mut rng = DetRng::seed_from(0xC205_57A1);
    for _ in 0..64 {
        let ops = random_ops(&mut rng, 1, 40);
        let h = sequential_history(&ops);
        let summary = CheckSummary::check_all(&h);
        assert!(summary.is_safe(), "{:?}", summary.safety);
        assert!(summary.is_fresh(), "{:?}", summary.freshness);
        assert!(summary.order.is_empty());
        assert!(summary.liveness.is_empty());
        assert!(check_no_new_old_inversion(&h).is_empty());
    }
}

#[test]
fn each_mutation_trips_its_own_checker() {
    let mut rng = DetRng::seed_from(0xC205_57A2);
    for round in 0..64 {
        // Base history with at least one write and one trailing read; every
        // round exercises all four mutations (round-robin beats sampling).
        let which = round % 4;
        let mut ops = random_ops(&mut rng, 4, 20);
        ops.insert(0, (true, 1));
        ops.push((false, 0));
        let mut h = sequential_history(&ops);
        let t_end = 10_000;

        match which {
            0 => {
                // Stale read after all writes: safety + freshness flag it.
                let r = h.begin_read(OpId::new(ReaderId(9), 1), t_end);
                h.complete_read(r, Value::initial(), Tag::ZERO, t_end + 10);
                assert!(!check_safety(&h).is_empty());
                assert!(!check_freshness(&h).is_empty());
            }
            1 => {
                // Duplicate tag: write order flags it.
                let w = h.begin_write(OpId::new(WriterId(9), 1), Value::from("dup"), t_end);
                h.complete_write(w, Tag::new(1, WriterId(0)), t_end + 10);
                let v = check_write_order(&h);
                assert!(v.iter().any(|x| x.kind == ViolationKind::DuplicateTag));
            }
            2 => {
                // Starved op: liveness flags it (and only it).
                h.begin_write(OpId::new(WriterId(9), 1), Value::from("starved"), t_end);
                assert_eq!(check_liveness(&h).len(), 1);
                assert!(check_safety(&h).is_empty());
            }
            _ => {
                // New/old inversion between two fresh readers.
                let hi = Tag::new(999, WriterId(9));
                let w = h.begin_write(OpId::new(WriterId(9), 1), Value::from("hi"), t_end);
                h.complete_write(w, hi, t_end + 10);
                let r1 = h.begin_read(OpId::new(ReaderId(8), 1), t_end + 20);
                h.complete_read(r1, Value::from("hi"), hi, t_end + 30);
                let r2 = h.begin_read(OpId::new(ReaderId(7), 1), t_end + 40);
                // Returns an older (but previously valid) write.
                h.complete_read(
                    r2,
                    Value::from(vec![1]),
                    Tag::new(1, WriterId(0)),
                    t_end + 50,
                );
                assert!(!check_no_new_old_inversion(&h).is_empty());
            }
        }
    }
}

/// Original proptest suite; requires re-adding `proptest` as a
/// dev-dependency (see the `proptests` feature note in Cargo.toml).
#[cfg(feature = "proptests")]
mod proptest_suite {
    use proptest::prelude::*;
    use safereg_checker::{check_no_new_old_inversion, CheckSummary};

    use super::sequential_history;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn sequential_histories_pass_every_checker(
            ops in proptest::collection::vec((any::<bool>(), any::<u8>()), 1..40),
        ) {
            let h = sequential_history(&ops);
            let summary = CheckSummary::check_all(&h);
            prop_assert!(summary.is_safe(), "{:?}", summary.safety);
            prop_assert!(summary.is_fresh(), "{:?}", summary.freshness);
            prop_assert!(summary.order.is_empty());
            prop_assert!(summary.liveness.is_empty());
            prop_assert!(check_no_new_old_inversion(&h).is_empty());
        }
    }
}
