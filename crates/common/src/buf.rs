//! Cheap-to-clone immutable byte buffers.
//!
//! The workspace's values are replicated `n` times per write and staged in
//! several per-server maps along the way, so cloning a value must be O(1).
//! [`Bytes`] is an `Arc<[u8]>`-backed immutable buffer: `clone` bumps a
//! reference count, and [`Bytes::slice`] produces a zero-copy view sharing
//! the same allocation. It implements the subset of the `bytes::Bytes` API
//! the workspace uses, keeping the hot path free of third-party code per
//! DESIGN.md §"Third-party crates".
//!
//! # Examples
//!
//! ```
//! use safereg_common::buf::Bytes;
//!
//! let b = Bytes::from(vec![1u8, 2, 3, 4]);
//! let c = b.clone(); // O(1): shared allocation
//! assert_eq!(c.as_ref(), &[1, 2, 3, 4]);
//! let mid = b.slice(1..3); // zero-copy view
//! assert_eq!(mid.as_ref(), &[2, 3]);
//! ```

use std::borrow::Borrow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Backing storage: either borrowed `'static` data (no allocation, no
/// reference count) or a shared heap allocation.
///
/// The shared variant wraps the `Vec` itself rather than `Arc<[u8]>` so that
/// `Bytes::from(Vec<u8>)` reuses the vector's existing heap buffer: the only
/// cost is the `Arc` control block, never a second copy of the payload. The
/// wire path depends on this — encode-once hands the same allocation to every
/// destination.
#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

/// An immutable, cheaply cloneable, zero-copy-sliceable byte buffer.
///
/// `clone` is O(1) (it shares the backing allocation) and `slice` returns a
/// view into the same allocation. The buffer never exposes mutation; build
/// the bytes in a `Vec<u8>` first and convert with [`Bytes::from`].
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    off: usize,
    len: usize,
}

impl Bytes {
    /// Creates an empty buffer without allocating.
    pub const fn new() -> Self {
        Bytes {
            repr: Repr::Static(&[]),
            off: 0,
            len: 0,
        }
    }

    /// Wraps a `'static` slice without copying or allocating.
    pub const fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            repr: Repr::Static(data),
            off: 0,
            len: data.len(),
        }
    }

    /// Copies `data` into a fresh shared allocation.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a zero-copy view of a subrange, sharing the allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is decreasing or extends past `self.len()`,
    /// matching slice-indexing semantics; the message carries the full buffer
    /// bounds (see [`SliceOutOfBounds`]). Use [`Bytes::try_slice`] where the
    /// range is derived from untrusted or computed input.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        match self.try_slice(range) {
            Ok(b) => b,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`Bytes::slice`]: returns the zero-copy view, or a
    /// [`SliceOutOfBounds`] carrying the requested range and the buffer
    /// length instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`SliceOutOfBounds`] when the range is decreasing or its end
    /// exceeds `self.len()`.
    pub fn try_slice(&self, range: impl RangeBounds<usize>) -> Result<Self, SliceOutOfBounds> {
        let start = match range.start_bound() {
            Bound::Included(&b) => b,
            Bound::Excluded(&b) => b + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&b) => b + 1,
            Bound::Excluded(&b) => b,
            Bound::Unbounded => self.len,
        };
        if start > end || end > self.len {
            return Err(SliceOutOfBounds {
                start,
                end,
                len: self.len,
            });
        }
        Ok(Bytes {
            repr: self.repr.clone(),
            off: self.off + start,
            len: end - start,
        })
    }

    /// Borrows the underlying bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => &s[self.off..self.off + self.len],
            Repr::Shared(a) => &a[self.off..self.off + self.len],
        }
    }
}

/// Error from [`Bytes::try_slice`]: the requested range does not fit the
/// buffer. Carries the full context (range and buffer length), unlike the
/// bare index of a slice-indexing panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceOutOfBounds {
    /// Resolved start of the requested range.
    pub start: usize,
    /// Resolved (exclusive) end of the requested range.
    pub end: usize,
    /// Length of the buffer being sliced.
    pub len: usize,
}

impl fmt::Display for SliceOutOfBounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.start > self.end {
            write!(
                f,
                "slice range starts at {} but ends at {} (buffer length {})",
                self.start, self.end, self.len
            )
        } else {
            write!(
                f,
                "slice range {}..{} end out of bounds for length {}",
                self.start, self.end, self.len
            )
        }
    }
}

impl std::error::Error for SliceOutOfBounds {}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    /// Wraps the vector's existing allocation; no bytes are copied.
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            repr: Repr::Shared(Arc::new(v)),
            off: 0,
            len,
        }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes::from(b.into_vec())
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<&Bytes> for Bytes {
    /// O(1): shares the backing allocation, so `impl Into<Bytes>` entry
    /// points accept `&Bytes` without copying.
    fn from(b: &Bytes) -> Self {
        b.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_ref()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            // Escape like a byte-string literal so traces stay readable.
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                b'\n' => write!(f, "\\n")?,
                b'\r' => write!(f, "\\r")?,
                b'\t' => write!(f, "\\t")?,
                0x20..=0x7E => write!(f, "{}", b as char)?,
                _ => write!(f, "\\x{b:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_the_allocation() {
        let a = Bytes::from(vec![7u8; 4096]);
        let b = a.clone();
        assert_eq!(a.as_ref().as_ptr(), b.as_ref().as_ptr());
        assert_eq!(a, b);
    }

    #[test]
    fn slice_is_zero_copy_and_respects_bounds() {
        let a = Bytes::from((0u8..100).collect::<Vec<_>>());
        let mid = a.slice(10..20);
        assert_eq!(mid.len(), 10);
        assert_eq!(mid.as_ref(), &(10u8..20).collect::<Vec<_>>()[..]);
        // The view points into the original allocation.
        assert_eq!(mid.as_ref().as_ptr(), a.as_ref()[10..].as_ptr());
        // Slicing a slice composes offsets.
        let inner = mid.slice(2..=4);
        assert_eq!(inner.as_ref(), &[12, 13, 14]);
        // Unbounded forms.
        assert_eq!(a.slice(..).len(), 100);
        assert_eq!(a.slice(95..).as_ref(), &[95, 96, 97, 98, 99]);
        assert_eq!(a.slice(..2).as_ref(), &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_past_the_end_panics() {
        Bytes::from(vec![1u8, 2, 3]).slice(1..5);
    }

    #[test]
    #[should_panic(expected = "starts at")]
    fn decreasing_slice_panics() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        #[allow(clippy::reversed_empty_ranges)]
        let _ = b.slice(2..1);
    }

    #[test]
    fn static_buffers_do_not_allocate_and_still_slice() {
        const GREETING: &[u8] = b"hello world";
        let b = Bytes::from_static(GREETING);
        assert_eq!(b.as_ref().as_ptr(), GREETING.as_ptr());
        let world = b.slice(6..);
        assert_eq!(world.as_ref(), b"world");
        assert_eq!(world.as_ref().as_ptr(), GREETING[6..].as_ptr());
    }

    #[test]
    fn equality_ordering_and_hashing_follow_content() {
        use std::collections::BTreeMap;
        let a = Bytes::from(vec![1u8, 2]);
        let b = Bytes::copy_from_slice(&[1, 2]);
        let c = Bytes::from_static(b"\x01\x03");
        assert_eq!(a, b);
        assert!(a < c);
        assert_eq!(a, [1u8, 2][..]);
        let mut map: BTreeMap<Bytes, u32> = BTreeMap::new();
        map.insert(a, 1);
        map.insert(c, 2);
        // Borrow<[u8]> lets byte-slice keys look up Bytes entries.
        assert_eq!(map.get(&b[..]), Some(&1));
    }

    #[test]
    fn from_vec_reuses_the_allocation() {
        let v = vec![9u8; 256];
        let data_ptr = v.as_ptr();
        let b = Bytes::from(v);
        // The Vec's heap buffer is wrapped, not copied.
        assert_eq!(b.as_ref().as_ptr(), data_ptr);
    }

    #[test]
    fn try_slice_reports_bounds_instead_of_panicking() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.try_slice(1..3).unwrap().as_ref(), &[2, 3]);
        let err = b.try_slice(1..5).unwrap_err();
        assert_eq!(
            err,
            SliceOutOfBounds {
                start: 1,
                end: 5,
                len: 3
            }
        );
        // The message names the offending range AND the buffer length.
        assert!(err.to_string().contains("1..5"));
        assert!(err.to_string().contains("length 3"));
        #[allow(clippy::reversed_empty_ranges)]
        let err = b.try_slice(2..1).unwrap_err();
        assert!(err.to_string().contains("starts at 2"));
    }

    #[test]
    fn empty_default_and_debug() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::default(), Bytes::new());
        assert_eq!(
            format!("{:?}", Bytes::from_static(b"a\"\n\x01")),
            "b\"a\\\"\\n\\x01\""
        );
    }
}
