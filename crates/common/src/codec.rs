//! Deterministic binary wire codec.
//!
//! The workspace serializes messages with its own small codec instead of a
//! serde format so that (a) the TCP transport and the bandwidth-accounting
//! experiments (E4) agree byte-for-byte on message sizes, and (b) decoding is
//! hardened against malformed input from Byzantine peers: every length is
//! bounds-checked against the remaining buffer before allocation.
//!
//! Encoding rules: fixed-width little-endian integers, `u32` lengths for
//! variable-size payloads, one-byte discriminants for enums. The format has
//! no self-description; both sides must agree on the expected type, which the
//! transport guarantees by framing each [`Wire`] message with its type.
//!
//! # Examples
//!
//! ```
//! use safereg_common::codec::{Wire, WireReader};
//!
//! let xs: Vec<u16> = vec![1, 2, 3];
//! let buf = xs.to_wire_bytes();
//! let back = Vec::<u16>::from_wire_bytes(&buf)?;
//! assert_eq!(back, xs);
//! # Ok::<(), safereg_common::codec::WireError>(())
//! ```

use std::error::Error;
use std::fmt;

use crate::buf::Bytes;

/// Maximum length accepted for a single variable-size field (64 MiB).
///
/// A Byzantine peer can claim any length; this cap bounds the allocation a
/// forged header can trigger before the bounds check against the actual
/// buffer rejects it.
pub const MAX_FIELD_LEN: usize = 64 << 20;

/// Error produced when decoding malformed wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the field was complete.
    Truncated {
        /// Bytes needed by the field being decoded.
        needed: usize,
        /// Bytes remaining in the buffer.
        remaining: usize,
    },
    /// An enum discriminant byte had no corresponding variant.
    BadDiscriminant {
        /// Type being decoded.
        ty: &'static str,
        /// The offending discriminant value.
        got: u8,
    },
    /// A length prefix exceeded [`MAX_FIELD_LEN`].
    LengthOverflow {
        /// The claimed length.
        claimed: usize,
    },
    /// Trailing bytes remained after a complete decode.
    TrailingBytes {
        /// Number of unconsumed bytes.
        count: usize,
    },
    /// A field held an invalid value (e.g. non-UTF-8 string bytes).
    Invalid {
        /// Description of the invalid content.
        what: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "truncated input: needed {needed} bytes, {remaining} remaining"
                )
            }
            WireError::BadDiscriminant { ty, got } => {
                write!(f, "invalid discriminant {got} for {ty}")
            }
            WireError::LengthOverflow { claimed } => {
                write!(f, "length prefix {claimed} exceeds maximum field size")
            }
            WireError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after complete message")
            }
            WireError::Invalid { what } => write!(f, "invalid field content: {what}"),
        }
    }
}

impl Error for WireError {}

/// Cursor over a byte buffer being decoded.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Creates a reader over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Returns `true` once every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes the next `n` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u32` length prefix, validating it against both
    /// [`MAX_FIELD_LEN`] and the remaining buffer.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::LengthOverflow`] for oversized claims and
    /// [`WireError::Truncated`] when the buffer cannot hold the claimed
    /// length.
    pub fn take_len(&mut self) -> Result<usize, WireError> {
        let len = u32::decode_from(self)? as usize;
        if len > MAX_FIELD_LEN {
            return Err(WireError::LengthOverflow { claimed: len });
        }
        if len > self.remaining() {
            return Err(WireError::Truncated {
                needed: len,
                remaining: self.remaining(),
            });
        }
        Ok(len)
    }
}

/// Types that can be serialized to and deserialized from the workspace wire
/// format.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode_to(&self, buf: &mut Vec<u8>);

    /// Decodes a value from the reader, advancing it.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] describing the first malformed field.
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// Encodes `self` into a fresh byte vector.
    fn to_wire_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode_to(&mut buf);
        buf
    }

    /// Decodes a value that must span the entire buffer.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::TrailingBytes`] when the buffer is longer than
    /// the encoding, in addition to any decode error.
    fn from_wire_bytes(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(buf);
        let v = Self::decode_from(&mut r)?;
        if !r.is_empty() {
            return Err(WireError::TrailingBytes {
                count: r.remaining(),
            });
        }
        Ok(v)
    }

    /// Number of bytes the encoding of `self` occupies.
    ///
    /// Used by the bandwidth-accounting experiments; the default encodes into
    /// a scratch buffer.
    fn wire_len(&self) -> usize {
        self.to_wire_bytes().len()
    }
}

macro_rules! impl_wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode_to(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }

            fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                let n = std::mem::size_of::<$t>();
                let bytes = r.take(n)?;
                let mut arr = [0u8; std::mem::size_of::<$t>()];
                arr.copy_from_slice(bytes);
                Ok(<$t>::from_le_bytes(arr))
            }

            fn wire_len(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        }
    )*};
}

impl_wire_int!(u8, u16, u32, u64, i64);

impl Wire for bool {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode_from(r)? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadDiscriminant { ty: "bool", got: t }),
        }
    }

    fn wire_len(&self) -> usize {
        1
    }
}

impl Wire for Bytes {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode_to(buf);
        buf.extend_from_slice(self);
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = r.take_len()?;
        Ok(Bytes::copy_from_slice(r.take(len)?))
    }

    fn wire_len(&self) -> usize {
        4 + self.len()
    }
}

impl Wire for String {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode_to(buf);
        buf.extend_from_slice(self.as_bytes());
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = r.take_len()?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Invalid {
            what: "utf-8 string",
        })
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode_to(buf);
        for item in self {
            item.encode_to(buf);
        }
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let count = u32::decode_from(r)? as usize;
        if count > MAX_FIELD_LEN {
            return Err(WireError::LengthOverflow { claimed: count });
        }
        // Each element consumes at least one byte; reject counts the buffer
        // can never satisfy before allocating.
        if count > r.remaining() {
            return Err(WireError::Truncated {
                needed: count,
                remaining: r.remaining(),
            });
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(T::decode_from(r)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode_to(buf);
            }
        }
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode_from(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode_from(r)?)),
            t => Err(WireError::BadDiscriminant {
                ty: "Option",
                got: t,
            }),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        self.0.encode_to(buf);
        self.1.encode_to(buf);
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode_from(r)?, B::decode_from(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_roundtrip_little_endian() {
        let mut buf = Vec::new();
        0xABCDu16.encode_to(&mut buf);
        assert_eq!(buf, [0xCD, 0xAB]);
        assert_eq!(u16::from_wire_bytes(&buf).unwrap(), 0xABCD);
    }

    #[test]
    fn vec_roundtrips_and_reports_wire_len() {
        let v: Vec<u32> = (0..10).collect();
        let buf = v.to_wire_bytes();
        assert_eq!(buf.len(), 4 + 10 * 4);
        assert_eq!(v.wire_len(), buf.len());
        assert_eq!(Vec::<u32>::from_wire_bytes(&buf).unwrap(), v);
    }

    #[test]
    fn truncated_input_is_detected() {
        let buf = 0xDEADBEEFu32.to_wire_bytes();
        assert!(matches!(
            u64::from_wire_bytes(&buf),
            Err(WireError::Truncated {
                needed: 8,
                remaining: 4
            })
        ));
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut buf = 7u8.to_wire_bytes();
        buf.push(0);
        assert!(matches!(
            u8::from_wire_bytes(&buf),
            Err(WireError::TrailingBytes { count: 1 })
        ));
    }

    #[test]
    fn forged_length_prefix_is_rejected_before_allocation() {
        // Claim a 4 GiB Bytes field backed by a 2-byte buffer.
        let buf = u32::MAX.to_wire_bytes();
        assert!(matches!(
            Bytes::from_wire_bytes(&buf),
            Err(WireError::LengthOverflow { .. })
        ));
        // Claim a count of elements larger than the buffer could hold.
        let mut vbuf = Vec::new();
        1_000_000u32.encode_to(&mut vbuf);
        assert!(matches!(
            Vec::<u8>::from_wire_bytes(&vbuf),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn option_and_tuple_roundtrip() {
        let v: Option<(u16, Bytes)> = Some((3, Bytes::from_static(b"xyz")));
        let buf = v.to_wire_bytes();
        let back = Option::<(u16, Bytes)>::from_wire_bytes(&buf).unwrap();
        assert_eq!(back, v);
        assert_eq!(Option::<u8>::from_wire_bytes(&[0]).unwrap(), None);
    }

    #[test]
    fn string_requires_utf8() {
        let mut buf = Vec::new();
        2u32.encode_to(&mut buf);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert!(matches!(
            String::from_wire_bytes(&buf),
            Err(WireError::Invalid {
                what: "utf-8 string"
            })
        ));
    }

    #[test]
    fn wire_error_display_is_informative() {
        let e = WireError::Truncated {
            needed: 8,
            remaining: 2,
        };
        assert!(e.to_string().contains("needed 8"));
        assert!(WireError::BadDiscriminant { ty: "bool", got: 7 }
            .to_string()
            .contains("bool"));
    }
}
