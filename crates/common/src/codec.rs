//! Deterministic binary wire codec.
//!
//! The workspace serializes messages with its own small codec instead of a
//! serde format so that (a) the TCP transport and the bandwidth-accounting
//! experiments (E4) agree byte-for-byte on message sizes, and (b) decoding is
//! hardened against malformed input from Byzantine peers: every length is
//! bounds-checked against the remaining buffer before allocation.
//!
//! Encoding rules: fixed-width little-endian integers, `u32` lengths for
//! variable-size payloads, one-byte discriminants for enums. The format has
//! no self-description; both sides must agree on the expected type, which the
//! transport guarantees by framing each [`Wire`] message with its type.
//!
//! Decoding comes in two flavors. The original [`WireReader`] path copies
//! variable-size payloads into fresh allocations. The [`BytesReader`] path
//! borrows: when the input is already a [`Bytes`] buffer (as every framed
//! message is), `Bytes` fields decode as O(1) slices of that buffer, so a
//! relayed payload is never copied. [`payload_bytes_copied`] counts the bytes
//! the copying path moves, which the transport surfaces as the
//! `wire.bytes_copied` metric.
//!
//! # Examples
//!
//! ```
//! use safereg_common::codec::Wire;
//!
//! let xs: Vec<u16> = vec![1, 2, 3];
//! let buf = xs.to_bytes();
//! let back = Vec::<u16>::from_bytes(&buf)?;
//! assert_eq!(back, xs);
//! # Ok::<(), safereg_common::codec::WireError>(())
//! ```

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::buf::Bytes;

/// Payload bytes copied out of buffers by the *copying* decode path
/// ([`Wire::decode_from`] on [`Bytes`] fields). The borrowing path
/// ([`Wire::decode_borrowed`]) never bumps this. Process-global and
/// monotonic; consumers read deltas.
static PAYLOAD_BYTES_COPIED: AtomicU64 = AtomicU64::new(0);

/// Running total of payload bytes the copying decode path has duplicated.
///
/// Zero-copy proofs (the `wire.bytes_copied` metric, the `paper_harness
/// wire` gate) assert the delta across a borrowing decode stays 0.
pub fn payload_bytes_copied() -> u64 {
    PAYLOAD_BYTES_COPIED.load(Ordering::Relaxed)
}

/// Maximum length accepted for a single variable-size field (64 MiB).
///
/// A Byzantine peer can claim any length; this cap bounds the allocation a
/// forged header can trigger before the bounds check against the actual
/// buffer rejects it.
pub const MAX_FIELD_LEN: usize = 64 << 20;

/// Error produced when decoding malformed wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the field was complete.
    Truncated {
        /// Bytes needed by the field being decoded.
        needed: usize,
        /// Bytes remaining in the buffer.
        remaining: usize,
    },
    /// An enum discriminant byte had no corresponding variant.
    BadDiscriminant {
        /// Type being decoded.
        ty: &'static str,
        /// The offending discriminant value.
        got: u8,
    },
    /// A length prefix exceeded [`MAX_FIELD_LEN`].
    LengthOverflow {
        /// The claimed length.
        claimed: usize,
    },
    /// Trailing bytes remained after a complete decode.
    TrailingBytes {
        /// Number of unconsumed bytes.
        count: usize,
    },
    /// A field held an invalid value (e.g. non-UTF-8 string bytes).
    Invalid {
        /// Description of the invalid content.
        what: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "truncated input: needed {needed} bytes, {remaining} remaining"
                )
            }
            WireError::BadDiscriminant { ty, got } => {
                write!(f, "invalid discriminant {got} for {ty}")
            }
            WireError::LengthOverflow { claimed } => {
                write!(f, "length prefix {claimed} exceeds maximum field size")
            }
            WireError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after complete message")
            }
            WireError::Invalid { what } => write!(f, "invalid field content: {what}"),
        }
    }
}

impl Error for WireError {}

/// Cursor over a byte buffer being decoded.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Creates a reader over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Returns `true` once every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes the next `n` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u32` length prefix, validating it against both
    /// [`MAX_FIELD_LEN`] and the remaining buffer.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::LengthOverflow`] for oversized claims and
    /// [`WireError::Truncated`] when the buffer cannot hold the claimed
    /// length.
    pub fn take_len(&mut self) -> Result<usize, WireError> {
        let len = u32::decode_from(self)? as usize;
        if len > MAX_FIELD_LEN {
            return Err(WireError::LengthOverflow { claimed: len });
        }
        if len > self.remaining() {
            return Err(WireError::Truncated {
                needed: len,
                remaining: self.remaining(),
            });
        }
        Ok(len)
    }

    /// Number of bytes consumed so far.
    pub fn consumed(&self) -> usize {
        self.pos
    }
}

/// Cursor over a [`Bytes`] buffer being decoded *borrowingly*: variable-size
/// fields come back as zero-copy slices of the underlying buffer instead of
/// fresh allocations.
///
/// Mirrors [`WireReader`]'s hardening: every length prefix is checked against
/// [`MAX_FIELD_LEN`] and the remaining buffer before any slice is taken.
#[derive(Debug)]
pub struct BytesReader<'a> {
    src: &'a Bytes,
    pos: usize,
}

impl<'a> BytesReader<'a> {
    /// Creates a reader over `src` starting at offset 0.
    pub fn new(src: &'a Bytes) -> Self {
        BytesReader { src, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.src.len() - self.pos
    }

    /// Returns `true` once every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Number of bytes consumed so far.
    pub fn consumed(&self) -> usize {
        self.pos
    }

    /// Borrows the unconsumed tail of the buffer without advancing.
    pub fn rest(&self) -> &'a [u8] {
        &self.src.as_slice()[self.pos..]
    }

    /// Advances the cursor by `n` already-validated bytes.
    ///
    /// Used by the bridging default of [`Wire::decode_borrowed`] after a
    /// copying decode ran over [`BytesReader::rest`].
    pub fn advance(&mut self, n: usize) {
        debug_assert!(n <= self.remaining());
        self.pos += n.min(self.remaining());
    }

    /// Takes the next `n` bytes as a borrowed slice.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.src.as_slice()[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Takes the next `n` bytes as a zero-copy [`Bytes`] view sharing the
    /// source allocation.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if fewer than `n` bytes remain.
    pub fn take_bytes(&mut self, n: usize) -> Result<Bytes, WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let b = self.src.slice(self.pos..self.pos + n);
        self.pos += n;
        Ok(b)
    }

    /// Reads a `u32` length prefix, validating it against both
    /// [`MAX_FIELD_LEN`] and the remaining buffer.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::LengthOverflow`] for oversized claims and
    /// [`WireError::Truncated`] when the buffer cannot hold the claimed
    /// length.
    pub fn take_len(&mut self) -> Result<usize, WireError> {
        let len = u32::decode_borrowed(self)? as usize;
        if len > MAX_FIELD_LEN {
            return Err(WireError::LengthOverflow { claimed: len });
        }
        if len > self.remaining() {
            return Err(WireError::Truncated {
                needed: len,
                remaining: self.remaining(),
            });
        }
        Ok(len)
    }
}

/// Types that can be serialized to and deserialized from the workspace wire
/// format.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode_to(&self, buf: &mut Vec<u8>);

    /// Decodes a value from the reader, advancing it. Variable-size fields
    /// are copied out of the buffer; prefer [`Wire::decode_borrowed`] when
    /// the input is a [`Bytes`] buffer.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] describing the first malformed field.
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// Decodes a value from a [`BytesReader`], advancing it. `Bytes` fields
    /// come back as zero-copy views of the source buffer.
    ///
    /// The default bridges to [`Wire::decode_from`] (copying), which is
    /// correct for every type; fixed-size and payload-bearing types override
    /// it to stay allocation-free. Overrides must consume exactly the bytes
    /// the copying decode would.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] describing the first malformed field.
    fn decode_borrowed(r: &mut BytesReader<'_>) -> Result<Self, WireError> {
        let mut inner = WireReader::new(r.rest());
        let v = Self::decode_from(&mut inner)?;
        let used = inner.consumed();
        r.advance(used);
        Ok(v)
    }

    /// Encodes `self` into a fresh immutable [`Bytes`] buffer.
    ///
    /// The buffer is built once and can then be cloned/sliced in O(1) for
    /// each destination — this is the encode-once entry point of the wire
    /// path.
    fn to_bytes(&self) -> Bytes {
        let mut buf = Vec::new();
        self.encode_to(&mut buf);
        Bytes::from(buf)
    }

    /// Decodes a value that must span the entire [`Bytes`] buffer, borrowing
    /// payload fields as zero-copy views.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::TrailingBytes`] when the buffer is longer than
    /// the encoding, in addition to any decode error.
    fn from_bytes(buf: &Bytes) -> Result<Self, WireError> {
        let mut r = BytesReader::new(buf);
        let v = Self::decode_borrowed(&mut r)?;
        if !r.is_empty() {
            return Err(WireError::TrailingBytes {
                count: r.remaining(),
            });
        }
        Ok(v)
    }

    /// Number of bytes the encoding of `self` occupies.
    ///
    /// Used by the bandwidth-accounting experiments; the default encodes into
    /// a scratch buffer.
    fn wire_len(&self) -> usize {
        let mut buf = Vec::new();
        self.encode_to(&mut buf);
        buf.len()
    }
}

macro_rules! impl_wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode_to(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }

            fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                let n = std::mem::size_of::<$t>();
                let bytes = r.take(n)?;
                let mut arr = [0u8; std::mem::size_of::<$t>()];
                arr.copy_from_slice(bytes);
                Ok(<$t>::from_le_bytes(arr))
            }

            fn decode_borrowed(r: &mut BytesReader<'_>) -> Result<Self, WireError> {
                let n = std::mem::size_of::<$t>();
                let bytes = r.take(n)?;
                let mut arr = [0u8; std::mem::size_of::<$t>()];
                arr.copy_from_slice(bytes);
                Ok(<$t>::from_le_bytes(arr))
            }

            fn wire_len(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        }
    )*};
}

impl_wire_int!(u8, u16, u32, u64, i64);

impl Wire for bool {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode_from(r)? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadDiscriminant { ty: "bool", got: t }),
        }
    }

    fn decode_borrowed(r: &mut BytesReader<'_>) -> Result<Self, WireError> {
        match u8::decode_borrowed(r)? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadDiscriminant { ty: "bool", got: t }),
        }
    }

    fn wire_len(&self) -> usize {
        1
    }
}

impl Wire for Bytes {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode_to(buf);
        buf.extend_from_slice(self);
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = r.take_len()?;
        PAYLOAD_BYTES_COPIED.fetch_add(len as u64, Ordering::Relaxed);
        Ok(Bytes::copy_from_slice(r.take(len)?))
    }

    fn decode_borrowed(r: &mut BytesReader<'_>) -> Result<Self, WireError> {
        // Zero-copy: the returned Bytes shares the source allocation, so
        // `payload_bytes_copied()` stays flat on this path.
        let len = r.take_len()?;
        r.take_bytes(len)
    }

    fn wire_len(&self) -> usize {
        4 + self.len()
    }
}

impl Wire for String {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode_to(buf);
        buf.extend_from_slice(self.as_bytes());
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = r.take_len()?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Invalid {
            what: "utf-8 string",
        })
    }

    fn decode_borrowed(r: &mut BytesReader<'_>) -> Result<Self, WireError> {
        // Strings are owned either way; borrowing only avoids the bridge.
        let len = r.take_len()?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Invalid {
            what: "utf-8 string",
        })
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode_to(buf);
        for item in self {
            item.encode_to(buf);
        }
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let count = u32::decode_from(r)? as usize;
        if count > MAX_FIELD_LEN {
            return Err(WireError::LengthOverflow { claimed: count });
        }
        // Each element consumes at least one byte; reject counts the buffer
        // can never satisfy before allocating.
        if count > r.remaining() {
            return Err(WireError::Truncated {
                needed: count,
                remaining: r.remaining(),
            });
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(T::decode_from(r)?);
        }
        Ok(out)
    }

    fn decode_borrowed(r: &mut BytesReader<'_>) -> Result<Self, WireError> {
        let count = u32::decode_borrowed(r)? as usize;
        if count > MAX_FIELD_LEN {
            return Err(WireError::LengthOverflow { claimed: count });
        }
        if count > r.remaining() {
            return Err(WireError::Truncated {
                needed: count,
                remaining: r.remaining(),
            });
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(T::decode_borrowed(r)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode_to(buf);
            }
        }
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode_from(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode_from(r)?)),
            t => Err(WireError::BadDiscriminant {
                ty: "Option",
                got: t,
            }),
        }
    }

    fn decode_borrowed(r: &mut BytesReader<'_>) -> Result<Self, WireError> {
        match u8::decode_borrowed(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode_borrowed(r)?)),
            t => Err(WireError::BadDiscriminant {
                ty: "Option",
                got: t,
            }),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        self.0.encode_to(buf);
        self.1.encode_to(buf);
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode_from(r)?, B::decode_from(r)?))
    }

    fn decode_borrowed(r: &mut BytesReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode_borrowed(r)?, B::decode_borrowed(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_roundtrip_little_endian() {
        let buf = 0xABCDu16.to_bytes();
        assert_eq!(buf.as_ref(), [0xCD, 0xAB]);
        assert_eq!(u16::from_bytes(&buf).unwrap(), 0xABCD);
    }

    #[test]
    fn vec_roundtrips_and_reports_wire_len() {
        let v: Vec<u32> = (0..10).collect();
        let buf = v.to_bytes();
        assert_eq!(buf.len(), 4 + 10 * 4);
        assert_eq!(v.wire_len(), buf.len());
        assert_eq!(Vec::<u32>::from_bytes(&buf).unwrap(), v);
    }

    #[test]
    fn truncated_input_is_detected() {
        let buf = 0xDEADBEEFu32.to_bytes();
        assert!(matches!(
            u64::from_bytes(&buf),
            Err(WireError::Truncated {
                needed: 8,
                remaining: 4
            })
        ));
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut buf = 7u8.to_bytes().to_vec();
        buf.push(0);
        assert!(matches!(
            u8::from_bytes(&Bytes::from(buf)),
            Err(WireError::TrailingBytes { count: 1 })
        ));
    }

    #[test]
    fn forged_length_prefix_is_rejected_before_allocation() {
        // Claim a 4 GiB Bytes field backed by a 2-byte buffer.
        let buf = u32::MAX.to_bytes();
        assert!(matches!(
            Bytes::from_bytes(&buf),
            Err(WireError::LengthOverflow { .. })
        ));
        // Claim a count of elements larger than the buffer could hold.
        let mut vbuf = Vec::new();
        1_000_000u32.encode_to(&mut vbuf);
        assert!(matches!(
            Vec::<u8>::from_bytes(&Bytes::from(vbuf)),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn option_and_tuple_roundtrip() {
        let v: Option<(u16, Bytes)> = Some((3, Bytes::from_static(b"xyz")));
        let buf = v.to_bytes();
        let back = Option::<(u16, Bytes)>::from_bytes(&buf).unwrap();
        assert_eq!(back, v);
        assert_eq!(
            Option::<u8>::from_bytes(&Bytes::from_static(&[0])).unwrap(),
            None
        );
    }

    #[test]
    fn string_requires_utf8() {
        let mut buf = Vec::new();
        2u32.encode_to(&mut buf);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert!(matches!(
            String::from_bytes(&Bytes::from(buf)),
            Err(WireError::Invalid {
                what: "utf-8 string"
            })
        ));
    }

    #[test]
    fn borrowed_bytes_decode_is_zero_copy_and_counted() {
        let payload = Bytes::from(vec![0x5Au8; 1024]);
        let framed = payload.to_bytes();
        // Borrowing: the decoded view aliases the framed buffer, and the
        // process-wide copy counter does not move.
        let before = payload_bytes_copied();
        let view = Bytes::from_bytes(&framed).unwrap();
        assert_eq!(view, payload);
        assert_eq!(view.as_ref().as_ptr(), framed.as_ref()[4..].as_ptr());
        assert_eq!(payload_bytes_copied(), before);
        // Copying: decode_from duplicates the payload and counts it.
        let mut r = WireReader::new(framed.as_ref());
        let copied = Bytes::decode_from(&mut r).unwrap();
        assert_eq!(copied, payload);
        assert_ne!(copied.as_ref().as_ptr(), framed.as_ref()[4..].as_ptr());
        assert_eq!(payload_bytes_copied(), before + 1024);
    }

    #[test]
    fn borrowing_reader_is_hardened_like_the_copying_one() {
        // Oversized length claim.
        let framed = u32::MAX.to_bytes();
        let mut r = BytesReader::new(&framed);
        assert!(matches!(
            r.take_len(),
            Err(WireError::LengthOverflow { .. })
        ));
        // Length beyond the remaining buffer.
        let mut short = Vec::new();
        9u32.encode_to(&mut short);
        short.extend_from_slice(b"abc");
        let short = Bytes::from(short);
        let mut r = BytesReader::new(&short);
        assert!(matches!(r.take_len(), Err(WireError::Truncated { .. })));
        // take_bytes past the end.
        let mut r = BytesReader::new(&short);
        assert!(matches!(
            r.take_bytes(100),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn default_decode_borrowed_bridges_and_advances_correctly() {
        // A type with no override exercises the WireReader bridge: two
        // values decoded in sequence must consume exactly their encodings.
        struct Pair(u16, u16);
        impl Wire for Pair {
            fn encode_to(&self, buf: &mut Vec<u8>) {
                self.0.encode_to(buf);
                self.1.encode_to(buf);
            }
            fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                Ok(Pair(u16::decode_from(r)?, u16::decode_from(r)?))
            }
        }
        let mut buf = Vec::new();
        Pair(1, 2).encode_to(&mut buf);
        Pair(3, 4).encode_to(&mut buf);
        let buf = Bytes::from(buf);
        let mut r = BytesReader::new(&buf);
        let a = Pair::decode_borrowed(&mut r).unwrap();
        let b = Pair::decode_borrowed(&mut r).unwrap();
        assert_eq!((a.0, a.1, b.0, b.1), (1, 2, 3, 4));
        assert!(r.is_empty());
    }

    #[test]
    fn encode_to_matches_to_bytes() {
        // A manual `encode_to` into a scratch Vec must produce exactly the
        // bytes `to_bytes` returns, and both must round-trip.
        let v: Vec<u32> = (0..10).collect();
        let mut manual = Vec::new();
        v.encode_to(&mut manual);
        assert_eq!(manual, v.to_bytes().to_vec());
        assert_eq!(
            Vec::<u32>::from_bytes(&Bytes::from(manual)).unwrap(),
            Vec::<u32>::from_bytes(&v.to_bytes()).unwrap()
        );
    }

    #[test]
    fn wire_error_display_is_informative() {
        let e = WireError::Truncated {
            needed: 8,
            remaining: 2,
        };
        assert!(e.to_string().contains("needed 8"));
        assert!(WireError::BadDiscriminant { ty: "bool", got: 7 }
            .to_string()
            .contains("bool"));
    }
}
