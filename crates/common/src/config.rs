//! Quorum configuration: the system parameters `n` and `f` and every
//! threshold the paper derives from them.
//!
//! | Quantity | Paper | Here |
//! |----------|-------|------|
//! | response quorum | wait for `n − f` replies (Fig. 1 line 3/8, Fig. 2 line 4) | [`QuorumConfig::response_quorum`] |
//! | witness threshold | `f + 1` witnesses validate a value (Fig. 2 line 5, Lemma 5) | [`QuorumConfig::witness_threshold`] |
//! | BSR resilience | `n ≥ 4f + 1` (Theorem 2, tight by Theorem 5) | [`QuorumConfig::supports_bsr`] |
//! | BCSR resilience | `n ≥ 5f + 1` (Lemma 4, tight by Theorem 6) | [`QuorumConfig::supports_bcsr`] |
//! | RB baseline resilience | `n ≥ 3f + 1` (\[15\], §VI) | [`QuorumConfig::supports_rb_baseline`] |
//! | MDS dimension | `k = n − f − 2e`, `e = 2f` ⇒ `k = n − 5f` (§IV-A) | [`QuorumConfig::mds_k`] |

use std::error::Error;
use std::fmt;
use std::time::Duration;

use crate::ids::ServerId;

/// Error building a [`QuorumConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `n` was zero.
    NoServers,
    /// `n` does not exceed `f`; no operation could ever collect a quorum.
    TooManyFaults {
        /// Total servers.
        n: usize,
        /// Requested fault bound.
        f: usize,
    },
    /// More than 255 servers requested; GF(2⁸) Reed–Solomon codewords carry
    /// at most 255 symbols, so the workspace caps `n` there.
    TooManyServers {
        /// Total servers requested.
        n: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoServers => write!(f, "system must have at least one server"),
            ConfigError::TooManyFaults { n, f: faults } => {
                write!(f, "fault bound f={faults} must be smaller than n={n}")
            }
            ConfigError::TooManyServers { n } => {
                write!(f, "n={n} exceeds the 255-server limit of GF(2^8) codewords")
            }
        }
    }
}

impl Error for ConfigError {}

/// System parameters `(n, f)` plus derived thresholds.
///
/// A `QuorumConfig` does not enforce any protocol's resilience bound by
/// itself — the experiments deliberately instantiate under-provisioned
/// systems (e.g. `n = 4f` for the Theorem 5 replay). Each protocol crate
/// checks the bound it needs via [`QuorumConfig::supports_bsr`] /
/// [`QuorumConfig::supports_bcsr`] / [`QuorumConfig::supports_rb_baseline`]
/// and the unchecked constructors used by the lower-bound scenarios are
/// explicit about it.
///
/// # Examples
///
/// ```
/// use safereg_common::config::QuorumConfig;
///
/// let cfg = QuorumConfig::new(11, 2)?;
/// assert!(cfg.supports_bsr());
/// assert!(cfg.supports_bcsr());         // 11 ≥ 5·2 + 1
/// assert_eq!(cfg.response_quorum(), 9); // n − f
/// assert_eq!(cfg.witness_threshold(), 3); // f + 1
/// assert_eq!(cfg.mds_k(), Some(1));     // n − 5f
/// # Ok::<(), safereg_common::config::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QuorumConfig {
    n: usize,
    f: usize,
}

impl QuorumConfig {
    /// Creates a configuration with `n` servers of which at most `f` may be
    /// Byzantine.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when `n == 0`, `f ≥ n`, or `n > 255`.
    pub fn new(n: usize, f: usize) -> Result<Self, ConfigError> {
        if n == 0 {
            return Err(ConfigError::NoServers);
        }
        if f >= n {
            return Err(ConfigError::TooManyFaults { n, f });
        }
        if n > 255 {
            return Err(ConfigError::TooManyServers { n });
        }
        Ok(QuorumConfig { n, f })
    }

    /// The smallest BSR-capable configuration for a fault bound: `n = 4f+1`.
    pub fn minimal_bsr(f: usize) -> Result<Self, ConfigError> {
        QuorumConfig::new(4 * f + 1, f)
    }

    /// The smallest BCSR-capable configuration for a fault bound: `n = 5f+1`.
    pub fn minimal_bcsr(f: usize) -> Result<Self, ConfigError> {
        QuorumConfig::new(5 * f + 1, f)
    }

    /// The smallest RB-baseline configuration for a fault bound: `n = 3f+1`.
    pub fn minimal_rb(f: usize) -> Result<Self, ConfigError> {
        QuorumConfig::new(3 * f + 1, f)
    }

    /// Total number of servers `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Maximum number of Byzantine servers `f`.
    pub fn f(&self) -> usize {
        self.f
    }

    /// Number of responses every phase waits for: `n − f` (Lemma 6 shows
    /// waiting for more forfeits liveness).
    pub fn response_quorum(&self) -> usize {
        self.n - self.f
    }

    /// Witnesses needed before a reader may trust a value: `f + 1`
    /// (Lemma 5 shows fewer admits fabricated values).
    pub fn witness_threshold(&self) -> usize {
        self.f + 1
    }

    /// Whether BSR's resilience bound `n ≥ 4f + 1` holds (Theorem 2).
    pub fn supports_bsr(&self) -> bool {
        self.n > 4 * self.f
    }

    /// Whether BCSR's resilience bound `n ≥ 5f + 1` holds (Lemma 4).
    pub fn supports_bcsr(&self) -> bool {
        self.n > 5 * self.f
    }

    /// Whether the RB baseline's bound `n ≥ 3f + 1` holds (\[15\]).
    pub fn supports_rb_baseline(&self) -> bool {
        self.n > 3 * self.f
    }

    /// MDS code dimension `k = n − 5f` used by BCSR (§IV-A with `e = 2f`),
    /// or `None` when the configuration cannot support a positive dimension.
    pub fn mds_k(&self) -> Option<usize> {
        self.n.checked_sub(5 * self.f).filter(|k| *k > 0)
    }

    /// Maximum erroneous coded elements the BCSR decoder must absorb:
    /// `e = 2f` (§IV-A: `f` Byzantine plus up to `f`… bounded by `2f`).
    pub fn mds_e(&self) -> usize {
        2 * self.f
    }

    /// Bracha reliable-broadcast echo threshold: `⌈(n + f + 1) / 2⌉`,
    /// a quorum large enough that two echo quorums intersect in a correct
    /// server.
    pub fn rb_echo_threshold(&self) -> usize {
        (self.n + self.f + 2) / 2
    }

    /// Bracha ready-amplification threshold: `f + 1` matching `READY`s.
    pub fn rb_ready_amplify(&self) -> usize {
        self.f + 1
    }

    /// Bracha delivery threshold: `2f + 1` matching `READY`s.
    pub fn rb_deliver_threshold(&self) -> usize {
        2 * self.f + 1
    }

    /// Iterator over all server ids `s0 … s(n−1)`.
    pub fn servers(&self) -> impl Iterator<Item = ServerId> + '_ {
        (0..self.n as u16).map(ServerId)
    }

    /// Replication storage cost in "units" of one value copy: `n` (§I-C).
    pub fn replication_storage_units(&self) -> f64 {
        self.n as f64
    }

    /// MDS storage cost in units of one value copy: `n / k` (§I-C), or
    /// `None` when no valid `k` exists.
    pub fn mds_storage_units(&self) -> Option<f64> {
        self.mds_k().map(|k| self.n as f64 / k as f64)
    }
}

impl fmt::Display for QuorumConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n={} f={}", self.n, self.f)
    }
}

/// Exponential backoff with bounded jitter, shared by every reconnecting
/// network layer (the register transport's link supervisors and the KV
/// transport's lazy reconnects).
///
/// The delay for attempt `a` is `base · 2^a`, capped at `cap`, with up to
/// `jitter_permille`/1000 of that value added or subtracted depending on a
/// caller-supplied random roll — callers that need reproducible schedules
/// feed a [`crate::rng::DetRng`] draw, so the policy itself stays a pure
/// function.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use safereg_common::config::BackoffPolicy;
///
/// let p = BackoffPolicy {
///     base: Duration::from_millis(10),
///     cap: Duration::from_millis(80),
///     jitter_permille: 0,
/// };
/// assert_eq!(p.delay(0, 0), Duration::from_millis(10));
/// assert_eq!(p.delay(2, 0), Duration::from_millis(40));
/// assert_eq!(p.delay(10, 0), Duration::from_millis(80)); // capped
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Delay before the first retry.
    pub base: Duration,
    /// Upper bound on the exponential growth.
    pub cap: Duration,
    /// Jitter amplitude in permille of the capped delay (`0..=1000`);
    /// spreads reconnect storms after a correlated failure.
    pub jitter_permille: u16,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base: Duration::from_millis(25),
            cap: Duration::from_secs(1),
            jitter_permille: 250,
        }
    }
}

impl BackoffPolicy {
    /// The wait before retry number `attempt` (0-based), given a uniform
    /// random `roll` that supplies the jitter. The jittered delay stays in
    /// `[d − d·j/2000, d + d·j/2000]` where `d` is the capped exponential
    /// delay, and never drops below `base / 2`.
    pub fn delay(&self, attempt: u32, roll: u64) -> Duration {
        let base = self.base.as_micros() as u64;
        let cap = self.cap.as_micros() as u64;
        let exp = base.saturating_mul(1u64 << attempt.min(20)).min(cap);
        let amplitude = exp / 1000 * u64::from(self.jitter_permille.min(1000));
        let jittered = if amplitude == 0 {
            exp
        } else {
            // Centered jitter: delay ± amplitude/2.
            (exp - amplitude / 2) + roll % (amplitude + 1)
        };
        Duration::from_micros(jittered.max(base / 2))
    }
}

/// Which serving runtime a KV host runs its connections on.
///
/// `Threaded` is the original thread-per-connection model: one reader
/// thread plus one writer thread per socket. `Reactor` multiplexes every
/// connection onto a small pool of readiness-driven event-loop threads
/// (epoll on Linux, poll elsewhere) with the bounded outboxes drained by
/// the reactor itself via vectored writes — thread count stays
/// O(reactors) regardless of connection count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ServerRuntime {
    /// One reader + one writer thread per accepted connection.
    Threaded,
    /// Readiness-driven event loop; N reactor threads share all
    /// connections (default N = number of shard groups the host serves).
    #[default]
    Reactor,
}

impl ServerRuntime {
    /// Stable lowercase label for metrics and bench records.
    pub fn label(&self) -> &'static str {
        match self {
            ServerRuntime::Threaded => "threaded",
            ServerRuntime::Reactor => "reactor",
        }
    }
}

/// Tunables for the real network path: how long to wait for connections
/// and operations, how much to retry, and how the per-server circuit
/// breaker behaves. Replaces the hardcoded connect/operation timeouts the
/// TCP client and KV transport previously used.
///
/// Defaults match the old behaviour (5 s connects, 10 s operations) while
/// enabling the self-healing machinery: two in-operation resends, capped
/// exponential backoff between reconnect attempts, and a breaker that opens
/// after three consecutive dead connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportConfig {
    /// TCP connect timeout per attempt.
    pub connect_timeout: Duration,
    /// End-to-end deadline for one client operation (all retries included).
    pub op_deadline: Duration,
    /// Per-exchange socket read/write timeout (KV request/response path).
    pub io_timeout: Duration,
    /// How many times an operation's outstanding envelopes are resent
    /// within the deadline before giving up (0 = single shot).
    pub retry_budget: u32,
    /// Reconnect pacing.
    pub backoff: BackoffPolicy,
    /// Consecutive dead connections (refused, or closed before delivering
    /// a single frame) before the breaker opens for that server.
    pub breaker_threshold: u32,
    /// Capacity of each bounded wire-path queue (per-link outboxes, the
    /// client's response funnel, the KV host's per-connection writer).
    pub chan_capacity: usize,
    /// What a full wire-path queue does with the next message; sheds are
    /// counted under the `chan.shed` metrics.
    pub shed_policy: crate::sync::channel::ShedPolicy,
    /// Server-side: a connection with no inbound frame for this long is
    /// evicted (`server.evictions.idle`). Clients reconnect on demand, so
    /// eviction costs one reconnect, not correctness.
    pub idle_timeout: Duration,
    /// Server-side: a connection whose peer stops draining replies — the
    /// socket write or the bounded reply outbox stalls for this long — is
    /// evicted (`server.evictions.stall`) instead of wedging a host thread.
    pub stall_timeout: Duration,
    /// Maximum frames coalesced into one vectored batch write when
    /// draining a bounded outbox; batch sizes land in the
    /// `transport.batch.frames` histogram.
    pub max_batch_frames: usize,
    /// Head-based trace sampling rate in permille of operations
    /// (`0` = tracing off, `1000` = every op). The decision is made once
    /// per operation by [`crate::trace::TraceCtx::for_op`]; unsampled ops
    /// pay one branch plus the 16 reserved wire bytes per frame.
    pub trace_sample: u16,
    /// Reactor runtime only: when `true`, per-connection outbox capacity
    /// adapts to load — it doubles (up to [`Self::chan_capacity_max`])
    /// after a window with a sustained `chan.shed` rate and halves back
    /// toward [`Self::chan_capacity`] after consecutive quiet windows.
    /// Resizes are counted under `chan.adaptive.grow` / `.shrink`.
    pub adaptive_outbox: bool,
    /// Ceiling for adaptive outbox growth; [`Self::chan_capacity`] is the
    /// floor it shrinks back to.
    pub chan_capacity_max: usize,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            connect_timeout: Duration::from_secs(5),
            op_deadline: Duration::from_secs(10),
            io_timeout: Duration::from_secs(5),
            retry_budget: 2,
            backoff: BackoffPolicy::default(),
            breaker_threshold: 3,
            chan_capacity: 1024,
            shed_policy: crate::sync::channel::ShedPolicy::Block,
            idle_timeout: Duration::from_secs(60),
            stall_timeout: Duration::from_secs(5),
            max_batch_frames: 64,
            trace_sample: 0,
            adaptive_outbox: true,
            chan_capacity_max: 8192,
        }
    }
}

impl TransportConfig {
    /// A configuration with tight timings for tests and chaos runs:
    /// sub-second connects, fast retries, a breaker that reacts after two
    /// failures, smaller wire-path queues.
    pub fn aggressive() -> Self {
        TransportConfig {
            connect_timeout: Duration::from_millis(250),
            op_deadline: Duration::from_secs(5),
            io_timeout: Duration::from_millis(500),
            retry_budget: 4,
            backoff: BackoffPolicy {
                base: Duration::from_millis(10),
                cap: Duration::from_millis(200),
                jitter_permille: 200,
            },
            breaker_threshold: 2,
            chan_capacity: 256,
            shed_policy: crate::sync::channel::ShedPolicy::Block,
            idle_timeout: Duration::from_secs(10),
            stall_timeout: Duration::from_millis(1500),
            max_batch_frames: 64,
            trace_sample: 0,
            adaptive_outbox: true,
            chan_capacity_max: 2048,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates() {
        assert_eq!(QuorumConfig::new(0, 0), Err(ConfigError::NoServers));
        assert_eq!(
            QuorumConfig::new(3, 3),
            Err(ConfigError::TooManyFaults { n: 3, f: 3 })
        );
        assert_eq!(
            QuorumConfig::new(300, 1),
            Err(ConfigError::TooManyServers { n: 300 })
        );
        assert!(QuorumConfig::new(255, 50).is_ok());
    }

    #[test]
    fn thresholds_match_paper() {
        let cfg = QuorumConfig::new(9, 2).unwrap();
        assert_eq!(cfg.response_quorum(), 7);
        assert_eq!(cfg.witness_threshold(), 3);
        assert_eq!(cfg.mds_e(), 4);
    }

    #[test]
    fn resilience_bounds_are_tight() {
        for f in 1..=4 {
            let at = QuorumConfig::new(4 * f + 1, f).unwrap();
            let below = QuorumConfig::new(4 * f, f).unwrap();
            assert!(at.supports_bsr());
            assert!(
                !below.supports_bsr(),
                "n=4f must not satisfy BSR (Theorem 5)"
            );

            let at = QuorumConfig::new(5 * f + 1, f).unwrap();
            let below = QuorumConfig::new(5 * f, f).unwrap();
            assert!(at.supports_bcsr());
            assert!(
                !below.supports_bcsr(),
                "n=5f must not satisfy BCSR (Theorem 6)"
            );

            let at = QuorumConfig::new(3 * f + 1, f).unwrap();
            let below = QuorumConfig::new(3 * f, f).unwrap();
            assert!(at.supports_rb_baseline());
            assert!(!below.supports_rb_baseline());
        }
    }

    #[test]
    fn minimal_constructors_sit_exactly_on_the_bound() {
        let bsr = QuorumConfig::minimal_bsr(2).unwrap();
        assert_eq!((bsr.n(), bsr.f()), (9, 2));
        let bcsr = QuorumConfig::minimal_bcsr(2).unwrap();
        assert_eq!((bcsr.n(), bcsr.f()), (11, 2));
        let rb = QuorumConfig::minimal_rb(2).unwrap();
        assert_eq!((rb.n(), rb.f()), (7, 2));
    }

    #[test]
    fn mds_dimension_follows_n_minus_5f() {
        assert_eq!(QuorumConfig::new(6, 1).unwrap().mds_k(), Some(1));
        assert_eq!(QuorumConfig::new(11, 2).unwrap().mds_k(), Some(1));
        assert_eq!(QuorumConfig::new(16, 2).unwrap().mds_k(), Some(6));
        assert_eq!(
            QuorumConfig::new(5, 1).unwrap().mds_k(),
            None,
            "n=5f has no dimension"
        );
    }

    #[test]
    fn storage_units_reproduce_section_i_c() {
        let cfg = QuorumConfig::new(16, 2).unwrap();
        assert_eq!(cfg.replication_storage_units(), 16.0);
        let mds = cfg.mds_storage_units().unwrap();
        assert!((mds - 16.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn rb_thresholds_are_byzantine_quorum_sound() {
        let cfg = QuorumConfig::new(7, 2).unwrap(); // n = 3f+1
                                                    // Echo threshold must exceed (n+f)/2 so two echo quorums intersect
                                                    // in at least one correct server.
        assert!(2 * cfg.rb_echo_threshold() > cfg.n() + cfg.f());
        assert_eq!(cfg.rb_ready_amplify(), 3);
        assert_eq!(cfg.rb_deliver_threshold(), 5);
    }

    #[test]
    fn servers_enumerates_n_ids() {
        let cfg = QuorumConfig::new(4, 1).unwrap();
        let ids: Vec<ServerId> = cfg.servers().collect();
        assert_eq!(
            ids,
            vec![ServerId(0), ServerId(1), ServerId(2), ServerId(3)]
        );
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = BackoffPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(100),
            jitter_permille: 0,
        };
        assert_eq!(p.delay(0, 99), Duration::from_millis(10));
        assert_eq!(p.delay(1, 99), Duration::from_millis(20));
        assert_eq!(p.delay(3, 99), Duration::from_millis(80));
        assert_eq!(p.delay(4, 99), Duration::from_millis(100));
        assert_eq!(p.delay(63, 99), Duration::from_millis(100), "no overflow");
    }

    #[test]
    fn backoff_jitter_is_bounded_and_roll_deterministic() {
        let p = BackoffPolicy {
            base: Duration::from_millis(100),
            cap: Duration::from_secs(1),
            jitter_permille: 500,
        };
        for roll in [0u64, 1, 17, u64::MAX] {
            let d = p.delay(0, roll);
            // delay ± 25%: [75ms, 125ms]
            assert!(
                (Duration::from_millis(75)..=Duration::from_millis(125)).contains(&d),
                "jittered {d:?} out of band"
            );
            assert_eq!(d, p.delay(0, roll), "same roll, same delay");
        }
    }

    #[test]
    fn transport_defaults_match_previous_hardcoded_timeouts() {
        let cfg = TransportConfig::default();
        assert_eq!(cfg.connect_timeout, Duration::from_secs(5));
        assert_eq!(cfg.op_deadline, Duration::from_secs(10));
        assert!(cfg.retry_budget > 0);
        let fast = TransportConfig::aggressive();
        assert!(fast.connect_timeout < cfg.connect_timeout);
        assert!(fast.breaker_threshold <= cfg.breaker_threshold);
        // Wire-path queues are bounded but roomy, and lossless by default.
        assert!(cfg.chan_capacity >= 64);
        assert!(fast.chan_capacity <= cfg.chan_capacity);
        assert_eq!(
            cfg.shed_policy,
            crate::sync::channel::ShedPolicy::Block,
            "default policy must not silently drop frames"
        );
        // Eviction deadlines: idle must dominate stall, and the aggressive
        // preset must be strictly tighter than the default.
        assert!(cfg.idle_timeout > cfg.stall_timeout);
        assert!(fast.idle_timeout < cfg.idle_timeout);
        assert!(fast.stall_timeout < cfg.stall_timeout);
        // The vectored drain ceiling: 16 (PR 4) → 32 (PR 6) → 64 now that
        // the reactor drains outboxes inline and deeper batches amortise
        // the wakeup.
        assert_eq!(cfg.max_batch_frames, 64);
        assert_eq!(fast.max_batch_frames, 64);
        // Adaptive outboxes are on by default and may grow at least 4×
        // over the base capacity before the ceiling stops them.
        assert!(cfg.adaptive_outbox);
        assert!(cfg.chan_capacity_max >= 4 * cfg.chan_capacity);
        assert!(fast.chan_capacity_max >= 4 * fast.chan_capacity);
        // Tracing is opt-in: both presets ship with sampling off.
        assert_eq!(cfg.trace_sample, 0);
        assert_eq!(fast.trace_sample, 0);
    }

    #[test]
    fn server_runtime_defaults_to_reactor_with_stable_labels() {
        assert_eq!(ServerRuntime::default(), ServerRuntime::Reactor);
        assert_eq!(ServerRuntime::Reactor.label(), "reactor");
        assert_eq!(ServerRuntime::Threaded.label(), "threaded");
    }

    #[test]
    fn display_and_error_display() {
        let cfg = QuorumConfig::new(5, 1).unwrap();
        assert_eq!(cfg.to_string(), "n=5 f=1");
        assert!(ConfigError::TooManyFaults { n: 3, f: 5 }
            .to_string()
            .contains("f=5"));
    }
}
