//! Epoch-numbered membership configurations for reconfiguration under churn.
//!
//! The register protocols (BSR/BCSR) assume a *fixed* fleet; this module
//! supplies the coordination layer that lets the fleet change one replica at
//! a time while reads and writes keep running (Kumar & Welch,
//! arXiv:1910.06716). The model:
//!
//! * An [`EpochConfig`] is the full membership view: a monotonically
//!   increasing `epoch` number plus the sorted list of [`Member`]s (server id
//!   and, when known, its socket address). Every reconfiguration step — add,
//!   remove, or replace of a single replica — produces the successor config
//!   with `epoch + 1`.
//! * A [`ConfigStamp`] is the 12-byte wire fingerprint of a config: the
//!   epoch plus a digest over the epoch and the *sorted member ids*
//!   (addresses deliberately excluded, so a client that only knows ids and a
//!   server that also knows addresses agree on the stamp). Each `KvFrame`
//!   carries the sender's stamp inside the MAC-covered region — exactly like
//!   `TraceCtx` — so a Byzantine network cannot splice a frame from one
//!   epoch into another.
//! * A server whose current config does not match an incoming stamp answers
//!   `WrongEpoch` carrying its full config; the client adopts a newer config
//!   only once `f + 1` distinct servers vouch for the same `(epoch, digest)`
//!   (a single Byzantine replica cannot forge a membership change), then
//!   re-issues the op against the new membership.
//!
//! Why quorum intersection survives the transition: each step changes at
//! most one member per shard group, and the group's quorum parameters
//! `(m, f)` are constant across epochs. Two quorums of `m − f` drawn from
//! adjacent epochs share at least `m − 2f − 1` members of the old epoch;
//! with `m ≥ 4f + 1` (BSR) that is `≥ 2f`, so after removing up to `f`
//! Byzantine members at least `f` honest servers — enough for a valid
//! `f + 1` witness set once the writer itself is counted — straddle the
//! boundary. The state transfer performed *before* a new or re-placed
//! replica serves (see `TcpKvCluster`) restores the invariant that every
//! member of the new epoch holds the state a member of the old epoch held.

use crate::codec::{BytesReader, Wire, WireError, WireReader};
use crate::ids::ServerId;

/// One fleet member: a server id plus its (possibly unknown) IPv4 socket
/// address. Address `0.0.0.0:0` means "unknown" — stamps never cover
/// addresses, so id-only views (clients) and addressed views (servers,
/// cluster orchestration) fingerprint identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Member {
    /// Fleet-wide physical server id.
    pub id: ServerId,
    /// IPv4 address bits (big-endian octets packed into a `u32`); 0 when
    /// unknown.
    pub ip: u32,
    /// TCP port; 0 when unknown.
    pub port: u16,
}

impl Member {
    /// Member with an unknown address (client-side views).
    pub fn unaddressed(id: ServerId) -> Member {
        Member { id, ip: 0, port: 0 }
    }

    /// Member with a known IPv4 socket address.
    pub fn at(id: ServerId, addr: std::net::SocketAddr) -> Member {
        match addr {
            std::net::SocketAddr::V4(v4) => Member {
                id,
                ip: u32::from_be_bytes(v4.ip().octets()),
                port: v4.port(),
            },
            // The workspace only binds IPv4 loopback; a V6 addr degrades to
            // "unknown" rather than silently truncating.
            std::net::SocketAddr::V6(_) => Member::unaddressed(id),
        }
    }

    /// The socket address, if one was recorded.
    pub fn addr(&self) -> Option<std::net::SocketAddr> {
        if self.ip == 0 && self.port == 0 {
            return None;
        }
        Some(std::net::SocketAddr::from((
            self.ip.to_be_bytes(),
            self.port,
        )))
    }
}

impl Wire for Member {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        self.id.encode_to(buf);
        self.ip.encode_to(buf);
        self.port.encode_to(buf);
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Member {
            id: ServerId::decode_from(r)?,
            ip: u32::decode_from(r)?,
            port: u16::decode_from(r)?,
        })
    }

    fn decode_borrowed(r: &mut BytesReader<'_>) -> Result<Self, WireError> {
        Ok(Member {
            id: ServerId::decode_borrowed(r)?,
            ip: u32::decode_borrowed(r)?,
            port: u16::decode_borrowed(r)?,
        })
    }
}

/// An epoch-numbered membership configuration. Members are kept sorted by
/// id; all the constructors and successor builders preserve that invariant,
/// so [`EpochConfig::digest`] is order-independent by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochConfig {
    /// Monotone configuration number; bumped by one per reconfiguration
    /// step (one replica added, removed, or replaced).
    pub epoch: u32,
    /// The fleet at this epoch, sorted by server id.
    pub members: Vec<Member>,
}

impl EpochConfig {
    /// The initial configuration (epoch 0) over an id-only fleet.
    pub fn genesis(fleet: impl IntoIterator<Item = ServerId>) -> EpochConfig {
        let mut members: Vec<Member> = fleet.into_iter().map(Member::unaddressed).collect();
        members.sort_unstable();
        members.dedup_by_key(|m| m.id);
        EpochConfig { epoch: 0, members }
    }

    /// A configuration at an explicit epoch from pre-built members
    /// (sorted + deduped here so callers cannot break the invariant).
    pub fn at_epoch(epoch: u32, mut members: Vec<Member>) -> EpochConfig {
        members.sort_unstable();
        members.dedup_by_key(|m| m.id);
        EpochConfig { epoch, members }
    }

    /// Sorted member ids.
    pub fn ids(&self) -> Vec<ServerId> {
        self.members.iter().map(|m| m.id).collect()
    }

    /// Whether `id` is a member of this epoch.
    pub fn contains(&self, id: ServerId) -> bool {
        self.members.binary_search_by_key(&id, |m| m.id).is_ok()
    }

    /// The recorded address of member `id`, if both are known.
    pub fn addr_of(&self, id: ServerId) -> Option<std::net::SocketAddr> {
        let i = self.members.binary_search_by_key(&id, |m| m.id).ok()?;
        self.members[i].addr()
    }

    /// Membership digest: FNV-1a over the epoch and the sorted member ids,
    /// finalized with SplitMix64. Addresses are excluded (see [`Member`]).
    pub fn digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = FNV_OFFSET;
        for byte in self.epoch.to_le_bytes() {
            h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
        for m in &self.members {
            for byte in m.id.0.to_le_bytes() {
                h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            }
        }
        // SplitMix64 finalizer for avalanche.
        h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^ (h >> 31)
    }

    /// The wire fingerprint of this configuration.
    pub fn stamp(&self) -> ConfigStamp {
        ConfigStamp {
            epoch: self.epoch,
            digest: self.digest(),
        }
    }

    /// Successor config (epoch + 1) with `member` added.
    pub fn with_added(&self, member: Member) -> EpochConfig {
        let mut members = self.members.clone();
        members.push(member);
        EpochConfig::at_epoch(self.epoch + 1, members)
    }

    /// Successor config (epoch + 1) with `id` removed.
    pub fn with_removed(&self, id: ServerId) -> EpochConfig {
        let members = self
            .members
            .iter()
            .copied()
            .filter(|m| m.id != id)
            .collect();
        EpochConfig::at_epoch(self.epoch + 1, members)
    }

    /// Successor config (epoch + 1) with `out` swapped for `joiner` — a
    /// single epoch bump, so a replace disturbs each shard group at most as
    /// much as one add plus one remove without the intermediate view.
    pub fn with_replaced(&self, out: ServerId, joiner: Member) -> EpochConfig {
        let mut members: Vec<Member> = self
            .members
            .iter()
            .copied()
            .filter(|m| m.id != out)
            .collect();
        members.push(joiner);
        EpochConfig::at_epoch(self.epoch + 1, members)
    }
}

impl Wire for EpochConfig {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        self.epoch.encode_to(buf);
        self.members.encode_to(buf);
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let epoch = u32::decode_from(r)?;
        let members = Vec::<Member>::decode_from(r)?;
        // Re-normalize: a Byzantine peer could ship unsorted/duplicated
        // members to skew the digest; `at_epoch` restores the invariant.
        Ok(EpochConfig::at_epoch(epoch, members))
    }

    fn decode_borrowed(r: &mut BytesReader<'_>) -> Result<Self, WireError> {
        let epoch = u32::decode_borrowed(r)?;
        let members = Vec::<Member>::decode_borrowed(r)?;
        Ok(EpochConfig::at_epoch(epoch, members))
    }
}

/// Fixed-size wire fingerprint of an [`EpochConfig`], carried in every
/// `KvFrame` inside the MAC-covered region (the `TraceCtx` pattern).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConfigStamp {
    /// Epoch the sender believes is current.
    pub epoch: u32,
    /// [`EpochConfig::digest`] of that epoch's membership.
    pub digest: u64,
}

impl ConfigStamp {
    /// Encoded size: 4 (epoch) + 8 (digest).
    pub const WIRE_LEN: usize = 12;

    /// Whether this stamp fingerprints `config`.
    pub fn matches(&self, config: &EpochConfig) -> bool {
        self.epoch == config.epoch && self.digest == config.digest()
    }
}

impl Wire for ConfigStamp {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        self.epoch.encode_to(buf);
        self.digest.encode_to(buf);
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ConfigStamp {
            epoch: u32::decode_from(r)?,
            digest: u64::decode_from(r)?,
        })
    }

    fn decode_borrowed(r: &mut BytesReader<'_>) -> Result<Self, WireError> {
        Ok(ConfigStamp {
            epoch: u32::decode_borrowed(r)?,
            digest: u64::decode_borrowed(r)?,
        })
    }

    fn wire_len(&self) -> usize {
        ConfigStamp::WIRE_LEN
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(ids: &[u16]) -> Vec<ServerId> {
        ids.iter().map(|&i| ServerId(i)).collect()
    }

    #[test]
    fn genesis_sorts_and_dedups() {
        let cfg = EpochConfig::genesis(fleet(&[3, 1, 2, 1]));
        assert_eq!(cfg.epoch, 0);
        assert_eq!(cfg.ids(), fleet(&[1, 2, 3]));
    }

    #[test]
    fn digest_ignores_addresses_and_member_order() {
        let plain = EpochConfig::genesis(fleet(&[0, 1, 2]));
        let addr: std::net::SocketAddr = "127.0.0.1:4500".parse().unwrap();
        let addressed = EpochConfig::at_epoch(
            0,
            vec![
                Member::at(ServerId(2), addr),
                Member::unaddressed(ServerId(0)),
                Member::at(ServerId(1), addr),
            ],
        );
        assert_eq!(plain.digest(), addressed.digest());
        assert!(plain.stamp().matches(&addressed));
        assert_eq!(addressed.addr_of(ServerId(2)), Some(addr));
        assert_eq!(addressed.addr_of(ServerId(0)), None);
    }

    #[test]
    fn digest_separates_epoch_and_membership() {
        let base = EpochConfig::genesis(fleet(&[0, 1, 2]));
        let grown = base.with_added(Member::unaddressed(ServerId(3)));
        assert_eq!(grown.epoch, 1);
        assert_ne!(base.digest(), grown.digest());
        // Same members at a different epoch still re-fingerprints.
        let renum = EpochConfig::at_epoch(7, base.members.clone());
        assert_ne!(base.digest(), renum.digest());
    }

    #[test]
    fn successor_builders_preserve_sorted_members() {
        let base = EpochConfig::genesis(fleet(&[1, 3, 5]));
        let added = base.with_added(Member::unaddressed(ServerId(2)));
        assert_eq!(added.ids(), fleet(&[1, 2, 3, 5]));
        let removed = added.with_removed(ServerId(3));
        assert_eq!(removed.ids(), fleet(&[1, 2, 5]));
        assert_eq!(removed.epoch, 2);
        let swapped = removed.with_replaced(ServerId(5), Member::unaddressed(ServerId(0)));
        assert_eq!(swapped.ids(), fleet(&[0, 1, 2]));
        assert_eq!(swapped.epoch, 3);
    }

    #[test]
    fn config_and_stamp_roundtrip_both_decode_paths() {
        let addr: std::net::SocketAddr = "127.0.0.1:9009".parse().unwrap();
        let cfg = EpochConfig::at_epoch(
            5,
            vec![
                Member::at(ServerId(4), addr),
                Member::unaddressed(ServerId(9)),
            ],
        );
        let buf = cfg.to_bytes();
        assert_eq!(EpochConfig::from_bytes(&buf).unwrap(), cfg);
        let mut copying = WireReader::new(buf.as_ref());
        assert_eq!(EpochConfig::decode_from(&mut copying).unwrap(), cfg);

        let stamp = cfg.stamp();
        let sbuf = stamp.to_bytes();
        assert_eq!(sbuf.len(), ConfigStamp::WIRE_LEN);
        assert_eq!(ConfigStamp::from_bytes(&sbuf).unwrap(), stamp);
        assert!(stamp.matches(&cfg));
        assert!(!stamp.matches(&cfg.with_removed(ServerId(9))));
    }
}
