//! Recorded operation histories.
//!
//! A [`History`] is the sequence of invocation/response events of one
//! execution (§II-B), recorded by whichever runtime drove the protocol (the
//! simulator or the TCP cluster) and consumed by the `safereg-checker`
//! crate. Each completed operation also carries the performance counters the
//! experiments report: client-to-server rounds (Definition 3), messages and
//! wire bytes.

use crate::ids::ClientId;
use crate::msg::OpId;
use crate::tag::Tag;
use crate::value::Value;

/// Simulated or wall-clock instant, in the runtime's time unit.
pub type Instant = u64;

/// What an operation did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpKind {
    /// A write of `value`; `tag` is filled in when the write's `put-data`
    /// phase fixes it.
    Write {
        /// The value written.
        value: Value,
        /// The tag the write created, once known.
        tag: Option<Tag>,
    },
    /// A read; `returned`/`returned_tag` are filled in at completion.
    Read {
        /// The value the read returned.
        returned: Option<Value>,
        /// The tag associated with the returned value ([`Tag::ZERO`] when
        /// the read fell back to the initial value `v_0`).
        returned_tag: Option<Tag>,
    },
}

impl OpKind {
    /// Returns `true` for write operations.
    pub fn is_write(&self) -> bool {
        matches!(self, OpKind::Write { .. })
    }

    /// Returns `true` for read operations.
    pub fn is_read(&self) -> bool {
        matches!(self, OpKind::Read { .. })
    }
}

/// How a completed read concluded, in the paper's semi-fast cost model.
///
/// A *fast* read returned a value backed by `f + 1` witnesses gathered on
/// the read's normal round structure (one round for BSR/BSR-H/BCSR, two for
/// BSR-2P). A *slow* read had to fall back: the witnessed set `𝒫` was empty,
/// the witnessed best was staler than the reader-local pair, a BSR-2P
/// candidate failed validation and forced a retry, or a BCSR decode failed
/// and returned `v_0`. The fast-read ratio of a run is the paper's central
/// observable — reads are one-shot *except* under write concurrency or
/// Byzantine interference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ReadPath {
    /// The read returned a freshly witnessed value on its normal rounds.
    Fast,
    /// The read fell back (local pair, candidate retry, or `v_0`).
    Slow,
}

impl ReadPath {
    /// Stable lower-case label used in metric names and dumps.
    pub fn as_str(&self) -> &'static str {
        match self {
            ReadPath::Fast => "fast",
            ReadPath::Slow => "slow",
        }
    }
}

impl std::fmt::Display for ReadPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One operation's record in a history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// The operation's identifier.
    pub op: OpId,
    /// Write/read and its data.
    pub kind: OpKind,
    /// Invocation instant.
    pub invoked_at: Instant,
    /// Response instant; `None` while the operation is incomplete (§II-B:
    /// an operation whose invocation has no matching response).
    pub completed_at: Option<Instant>,
    /// Client-to-server round trips the operation used (Definition 3 counts
    /// a request/response exchange as one round).
    pub rounds: u32,
    /// Messages sent on behalf of the operation (client and induced server
    /// messages).
    pub msgs: u64,
    /// Wire bytes sent on behalf of the operation.
    pub bytes: u64,
}

impl OpRecord {
    /// Returns `true` once the operation has its matching response.
    pub fn is_complete(&self) -> bool {
        self.completed_at.is_some()
    }

    /// The invoking client.
    pub fn client(&self) -> ClientId {
        self.op.client
    }

    /// Real-time precedence (§II-B): `self` precedes `other` when `self`'s
    /// response comes before `other`'s invocation.
    ///
    /// Incomplete operations precede nothing.
    pub fn precedes(&self, other: &OpRecord) -> bool {
        match self.completed_at {
            Some(done) => done < other.invoked_at,
            None => false,
        }
    }

    /// Two operations are concurrent when neither precedes the other.
    pub fn concurrent_with(&self, other: &OpRecord) -> bool {
        !self.precedes(other) && !other.precedes(self)
    }

    /// Operation latency, if complete.
    pub fn latency(&self) -> Option<Instant> {
        self.completed_at.map(|c| c.saturating_sub(self.invoked_at))
    }
}

/// Handle to an operation being recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpHandle(usize);

/// A recorded execution: every operation's invocation and (if it happened)
/// response.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct History {
    records: Vec<OpRecord>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// Records the invocation of a write.
    pub fn begin_write(&mut self, op: OpId, value: Value, at: Instant) -> OpHandle {
        self.records.push(OpRecord {
            op,
            kind: OpKind::Write { value, tag: None },
            invoked_at: at,
            completed_at: None,
            rounds: 0,
            msgs: 0,
            bytes: 0,
        });
        OpHandle(self.records.len() - 1)
    }

    /// Records the invocation of a read.
    pub fn begin_read(&mut self, op: OpId, at: Instant) -> OpHandle {
        self.records.push(OpRecord {
            op,
            kind: OpKind::Read {
                returned: None,
                returned_tag: None,
            },
            invoked_at: at,
            completed_at: None,
            rounds: 0,
            msgs: 0,
            bytes: 0,
        });
        OpHandle(self.records.len() - 1)
    }

    /// Records the response of a write, fixing its tag.
    ///
    /// # Panics
    ///
    /// Panics if the handle refers to a read or an already-completed write —
    /// both indicate a runtime bug, not bad input.
    pub fn complete_write(&mut self, h: OpHandle, tag: Tag, at: Instant) {
        let rec = &mut self.records[h.0];
        assert!(rec.completed_at.is_none(), "write completed twice");
        match &mut rec.kind {
            OpKind::Write { tag: slot, .. } => *slot = Some(tag),
            OpKind::Read { .. } => panic!("complete_write on a read handle"),
        }
        rec.completed_at = Some(at);
    }

    /// Records the response of a read with the value (and tag) it returned.
    ///
    /// # Panics
    ///
    /// Panics if the handle refers to a write or an already-completed read.
    pub fn complete_read(&mut self, h: OpHandle, value: Value, tag: Tag, at: Instant) {
        let rec = &mut self.records[h.0];
        assert!(rec.completed_at.is_none(), "read completed twice");
        match &mut rec.kind {
            OpKind::Read {
                returned,
                returned_tag,
            } => {
                *returned = Some(value);
                *returned_tag = Some(tag);
            }
            OpKind::Write { .. } => panic!("complete_read on a write handle"),
        }
        rec.completed_at = Some(at);
    }

    /// Adds performance counters to an operation.
    pub fn add_cost(&mut self, h: OpHandle, rounds: u32, msgs: u64, bytes: u64) {
        let rec = &mut self.records[h.0];
        rec.rounds += rounds;
        rec.msgs += msgs;
        rec.bytes += bytes;
    }

    /// All records in invocation order.
    pub fn records(&self) -> &[OpRecord] {
        &self.records
    }

    /// The record behind a handle.
    pub fn get(&self, h: OpHandle) -> &OpRecord {
        &self.records[h.0]
    }

    /// Completed write records.
    pub fn completed_writes(&self) -> impl Iterator<Item = &OpRecord> {
        self.records
            .iter()
            .filter(|r| r.kind.is_write() && r.is_complete())
    }

    /// Completed read records.
    pub fn completed_reads(&self) -> impl Iterator<Item = &OpRecord> {
        self.records
            .iter()
            .filter(|r| r.kind.is_read() && r.is_complete())
    }

    /// Number of recorded operations (complete or not).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the history has no operations.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Merges another history into this one (used when per-client histories
    /// are recorded separately and joined for checking).
    pub fn merge(&mut self, other: History) {
        self.records.extend(other.records);
        self.records
            .sort_by_key(|r| (r.invoked_at, r.op.client, r.op.seq));
    }
}

impl Extend<OpRecord> for History {
    fn extend<T: IntoIterator<Item = OpRecord>>(&mut self, iter: T) {
        self.records.extend(iter);
    }
}

impl FromIterator<OpRecord> for History {
    fn from_iter<T: IntoIterator<Item = OpRecord>>(iter: T) -> Self {
        History {
            records: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ReaderId, WriterId};

    fn wop(seq: u64) -> OpId {
        OpId::new(WriterId(1), seq)
    }

    fn rop(seq: u64) -> OpId {
        OpId::new(ReaderId(1), seq)
    }

    #[test]
    fn write_then_read_precedence() {
        let mut h = History::new();
        let w = h.begin_write(wop(1), Value::from("a"), 0);
        h.complete_write(w, Tag::new(1, WriterId(1)), 10);
        let r = h.begin_read(rop(1), 20);
        h.complete_read(r, Value::from("a"), Tag::new(1, WriterId(1)), 30);

        let wr = h.get(w).clone();
        let rr = h.get(r).clone();
        assert!(wr.precedes(&rr));
        assert!(!rr.precedes(&wr));
        assert!(!wr.concurrent_with(&rr));
        assert_eq!(wr.latency(), Some(10));
    }

    #[test]
    fn overlapping_ops_are_concurrent() {
        let mut h = History::new();
        let w = h.begin_write(wop(1), Value::from("a"), 0);
        let r = h.begin_read(rop(1), 5);
        h.complete_write(w, Tag::new(1, WriterId(1)), 10);
        h.complete_read(r, Value::initial(), Tag::ZERO, 7);
        assert!(h.get(w).concurrent_with(h.get(r)));
    }

    #[test]
    fn incomplete_op_precedes_nothing_and_is_filtered() {
        let mut h = History::new();
        let w = h.begin_write(wop(1), Value::from("a"), 0);
        let r = h.begin_read(rop(1), 100);
        h.complete_read(r, Value::initial(), Tag::ZERO, 110);
        assert!(!h.get(w).precedes(h.get(r)));
        assert_eq!(h.completed_writes().count(), 0);
        assert_eq!(h.completed_reads().count(), 1);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn costs_accumulate() {
        let mut h = History::new();
        let r = h.begin_read(rop(1), 0);
        h.add_cost(r, 1, 5, 500);
        h.add_cost(r, 1, 5, 500);
        let rec = h.get(r);
        assert_eq!((rec.rounds, rec.msgs, rec.bytes), (2, 10, 1000));
    }

    #[test]
    #[should_panic(expected = "completed twice")]
    fn double_completion_is_a_bug() {
        let mut h = History::new();
        let w = h.begin_write(wop(1), Value::from("a"), 0);
        h.complete_write(w, Tag::ZERO, 1);
        h.complete_write(w, Tag::ZERO, 2);
    }

    #[test]
    fn merge_sorts_by_invocation() {
        let mut a = History::new();
        let w = a.begin_write(wop(1), Value::from("x"), 50);
        a.complete_write(w, Tag::new(1, WriterId(1)), 60);
        let mut b = History::new();
        let r = b.begin_read(rop(1), 10);
        b.complete_read(r, Value::initial(), Tag::ZERO, 20);
        a.merge(b);
        assert_eq!(a.records()[0].invoked_at, 10);
        assert_eq!(a.records()[1].invoked_at, 50);
    }
}
