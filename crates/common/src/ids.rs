//! Process identifiers.
//!
//! The paper's model (§II-A) has three kinds of processes — readers, writers
//! and servers — whose identifiers form a totally ordered set. We keep the
//! three spaces statically distinct with newtypes ([`ReaderId`], [`WriterId`],
//! [`ServerId`]) and provide the unions the protocols need: [`ClientId`]
//! (readers ∪ writers) and [`NodeId`] (clients ∪ servers), both with a total
//! order used for tie-breaking (Lemma 2's "total order on the ids").

use std::fmt;

use crate::codec::{Wire, WireError, WireReader};

/// Identifier of a server process (a replica holding register state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServerId(pub u16);

/// Identifier of a writer client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WriterId(pub u16);

/// Identifier of a reader client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReaderId(pub u16);

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for WriterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

impl fmt::Display for ReaderId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A client process: either a writer or a reader (§II-A, "clients").
///
/// The derived order places all readers before all writers; any total order
/// works for tie-breaking, it only has to be agreed upon by every process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ClientId {
    /// A reader client.
    Reader(ReaderId),
    /// A writer client.
    Writer(WriterId),
}

impl ClientId {
    /// Returns the writer id if this client is a writer.
    pub fn as_writer(&self) -> Option<WriterId> {
        match self {
            ClientId::Writer(w) => Some(*w),
            ClientId::Reader(_) => None,
        }
    }

    /// Returns the reader id if this client is a reader.
    pub fn as_reader(&self) -> Option<ReaderId> {
        match self {
            ClientId::Reader(r) => Some(*r),
            ClientId::Writer(_) => None,
        }
    }
}

impl From<ReaderId> for ClientId {
    fn from(r: ReaderId) -> Self {
        ClientId::Reader(r)
    }
}

impl From<WriterId> for ClientId {
    fn from(w: WriterId) -> Self {
        ClientId::Writer(w)
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientId::Reader(r) => write!(f, "{r}"),
            ClientId::Writer(w) => write!(f, "{w}"),
        }
    }
}

/// Any process in the system: a client or a server.
///
/// [`NodeId`] is the address space of [`crate::msg::Envelope`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeId {
    /// A client process (reader or writer).
    Client(ClientId),
    /// A server process.
    Server(ServerId),
}

impl NodeId {
    /// Returns the server id if this node is a server.
    pub fn as_server(&self) -> Option<ServerId> {
        match self {
            NodeId::Server(s) => Some(*s),
            NodeId::Client(_) => None,
        }
    }

    /// Returns the client id if this node is a client.
    pub fn as_client(&self) -> Option<ClientId> {
        match self {
            NodeId::Client(c) => Some(*c),
            NodeId::Server(_) => None,
        }
    }
}

impl From<ServerId> for NodeId {
    fn from(s: ServerId) -> Self {
        NodeId::Server(s)
    }
}

impl From<ClientId> for NodeId {
    fn from(c: ClientId) -> Self {
        NodeId::Client(c)
    }
}

impl From<ReaderId> for NodeId {
    fn from(r: ReaderId) -> Self {
        NodeId::Client(ClientId::Reader(r))
    }
}

impl From<WriterId> for NodeId {
    fn from(w: WriterId) -> Self {
        NodeId::Client(ClientId::Writer(w))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Client(c) => write!(f, "{c}"),
            NodeId::Server(s) => write!(f, "{s}"),
        }
    }
}

impl Wire for ServerId {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        self.0.encode_to(buf);
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ServerId(u16::decode_from(r)?))
    }
}

impl Wire for WriterId {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        self.0.encode_to(buf);
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(WriterId(u16::decode_from(r)?))
    }
}

impl Wire for ReaderId {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        self.0.encode_to(buf);
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ReaderId(u16::decode_from(r)?))
    }
}

impl Wire for ClientId {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        match self {
            ClientId::Reader(r) => {
                buf.push(0);
                r.encode_to(buf);
            }
            ClientId::Writer(w) => {
                buf.push(1);
                w.encode_to(buf);
            }
        }
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode_from(r)? {
            0 => Ok(ClientId::Reader(ReaderId::decode_from(r)?)),
            1 => Ok(ClientId::Writer(WriterId::decode_from(r)?)),
            t => Err(WireError::BadDiscriminant {
                ty: "ClientId",
                got: t,
            }),
        }
    }
}

impl Wire for NodeId {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        match self {
            NodeId::Client(c) => {
                buf.push(0);
                c.encode_to(buf);
            }
            NodeId::Server(s) => {
                buf.push(1);
                s.encode_to(buf);
            }
        }
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode_from(r)? {
            0 => Ok(NodeId::Client(ClientId::decode_from(r)?)),
            1 => Ok(NodeId::Server(ServerId::decode_from(r)?)),
            t => Err(WireError::BadDiscriminant {
                ty: "NodeId",
                got: t,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact() {
        assert_eq!(ServerId(4).to_string(), "s4");
        assert_eq!(ClientId::Writer(WriterId(2)).to_string(), "w2");
        assert_eq!(
            NodeId::Client(ClientId::Reader(ReaderId(0))).to_string(),
            "r0"
        );
    }

    #[test]
    fn conversion_chain_reaches_node_id() {
        let n: NodeId = WriterId(7).into();
        assert_eq!(n.as_client().and_then(|c| c.as_writer()), Some(WriterId(7)));
        assert_eq!(n.as_server(), None);
    }

    #[test]
    fn client_id_total_order_is_deterministic() {
        let a = ClientId::Reader(ReaderId(9));
        let b = ClientId::Writer(WriterId(0));
        assert!(a < b, "all readers order before all writers");
        assert!(ClientId::Writer(WriterId(1)) < ClientId::Writer(WriterId(2)));
    }

    #[test]
    fn node_ids_roundtrip_on_the_wire() {
        let ids = [
            NodeId::Server(ServerId(65535)),
            NodeId::Client(ClientId::Reader(ReaderId(1))),
            NodeId::Client(ClientId::Writer(WriterId(300))),
        ];
        for id in ids {
            let mut buf = Vec::new();
            id.encode_to(&mut buf);
            let mut r = WireReader::new(&buf);
            assert_eq!(NodeId::decode_from(&mut r).unwrap(), id);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn bad_discriminant_is_reported() {
        let mut r = WireReader::new(&[9]);
        assert!(matches!(
            ClientId::decode_from(&mut r),
            Err(WireError::BadDiscriminant {
                ty: "ClientId",
                got: 9
            })
        ));
    }
}
