//! Shared vocabulary for the `safereg` workspace.
//!
//! This crate defines the types that every other crate in the workspace
//! speaks: process [identifiers](ids), logical [tags](tag::Tag) (the paper's
//! `(t.num, w)` timestamps), register [values](value::Value), the
//! client/server/peer [message](msg) set, the
//! [quorum configuration](config::QuorumConfig) capturing `n`, `f` and the
//! paper's thresholds, a deterministic [wire codec](codec) used both by the
//! TCP transport and for bandwidth accounting, a seedable [PRNG](rng) for
//! reproducible simulations, and the [operation history](history) model
//! consumed by the consistency checkers.
//!
//! The protocol crates (`safereg-core`, `safereg-rb`) are *sans-io*: they
//! exchange [`msg::Envelope`] values and never touch sockets or clocks, so
//! the same state machines run on the deterministic simulator
//! (`safereg-simnet`) and on real TCP (`safereg-transport`).
//!
//! # Examples
//!
//! ```
//! use safereg_common::{config::QuorumConfig, tag::Tag, ids::WriterId};
//!
//! let cfg = QuorumConfig::new(5, 1)?;
//! assert!(cfg.supports_bsr());
//! assert_eq!(cfg.response_quorum(), 4); // wait for n - f replies
//!
//! let t0 = Tag::ZERO;
//! let t1 = t0.next_for(WriterId(3));
//! assert!(t1 > t0);
//! # Ok::<(), safereg_common::config::ConfigError>(())
//! ```

pub mod buf;
pub mod codec;
pub mod config;
pub mod epoch;
pub mod history;
pub mod ids;
pub mod msg;
pub mod rng;
pub mod shard;
pub mod sync;
pub mod tag;
pub mod trace;
pub mod value;

pub use buf::Bytes;
pub use codec::{Wire, WireError};
pub use config::QuorumConfig;
pub use epoch::{ConfigStamp, EpochConfig, Member};
pub use history::{History, OpKind, OpRecord};
pub use ids::{ClientId, NodeId, ReaderId, ServerId, WriterId};
pub use msg::{ClientToServer, Envelope, Message, OpId, Payload, ServerToClient};
pub use rng::DetRng;
pub use shard::{ShardId, ShardMap};
pub use tag::Tag;
pub use trace::{Phase, TraceCtx};
pub use value::Value;
