//! Protocol message vocabulary.
//!
//! One shared message set serves every protocol in the workspace:
//!
//! * BSR (Fig. 1–3) uses [`ClientToServer::QueryTag`], [`ClientToServer::PutData`]
//!   with a [`Payload::Full`] value, and [`ClientToServer::QueryData`].
//! * BCSR (Fig. 4–6) uses the same messages with [`Payload::Coded`] elements.
//! * The regular-register variants (§III-C) add [`ClientToServer::QueryHistory`]
//!   (BSR-H: "send the entire history of writes") and
//!   [`ClientToServer::QueryValueAt`] (BSR-2P's second phase).
//! * The reliable-broadcast baseline adds the server-to-server
//!   [`PeerMessage`] set (Bracha init/echo/ready) plus reader subscription
//!   messages used by the relay technique of Kanjani et al.
//!
//! Every client operation carries an [`OpId`] that servers echo back, so a
//! client can discard stragglers from superseded operations — mandatory under
//! the asynchronous model where messages may be arbitrarily delayed.

use crate::buf::Bytes;
use crate::codec::{BytesReader, Wire, WireError, WireReader};
use crate::epoch::EpochConfig;
use crate::ids::{ClientId, NodeId, ServerId};
use crate::tag::Tag;
use crate::value::Value;

/// Identifier of one client operation: the invoking client plus a
/// client-local sequence number.
///
/// At most one operation runs per client at a time (§II-A), so `(client,
/// seq)` uniquely names an operation across the whole execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId {
    /// The invoking client.
    pub client: ClientId,
    /// Client-local operation counter.
    pub seq: u64,
}

impl OpId {
    /// Creates an operation id.
    pub fn new(client: impl Into<ClientId>, seq: u64) -> Self {
        OpId {
            client: client.into(),
            seq,
        }
    }
}

impl std::fmt::Display for OpId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.client, self.seq)
    }
}

/// One coded element of an `[n, k]` MDS codeword (§IV-A).
///
/// Server `i` stores the element with `index == i`; `value_len` carries the
/// original (unpadded) value length so the decoder can strip the padding the
/// striping layer added.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CodedElement {
    /// Position of this element in the codeword (the server index).
    pub index: u16,
    /// Byte length of the original value before padding.
    pub value_len: u32,
    /// The coded bytes, `⌈value_len / k⌉` of them.
    pub data: Bytes,
}

/// What a write stores at a server: the full value (replication, BSR) or one
/// coded element (erasure coding, BCSR).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Payload {
    /// A complete copy of the value (BSR).
    Full(Value),
    /// One MDS coded element (BCSR).
    Coded(CodedElement),
}

impl Payload {
    /// Returns the full value if this payload is a replica copy.
    pub fn as_full(&self) -> Option<&Value> {
        match self {
            Payload::Full(v) => Some(v),
            Payload::Coded(_) => None,
        }
    }

    /// Returns the coded element if this payload is erasure-coded.
    pub fn as_coded(&self) -> Option<&CodedElement> {
        match self {
            Payload::Coded(c) => Some(c),
            Payload::Full(_) => None,
        }
    }

    /// Number of payload bytes stored/transferred (excluding framing).
    ///
    /// This is the quantity the storage-cost experiment (E4) sums: `1` unit
    /// for a replica versus `1/k` for a coded element.
    pub fn payload_bytes(&self) -> usize {
        match self {
            Payload::Full(v) => v.len(),
            Payload::Coded(c) => c.data.len(),
        }
    }
}

/// Messages from clients to servers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientToServer {
    /// `QUERY-TAG` — first phase of a write (Fig. 1 line 2, Fig. 4 line 2).
    QueryTag {
        /// Operation this query belongs to.
        op: OpId,
    },
    /// `PUT-DATA` — second phase of a write (Fig. 1 line 7, Fig. 4 line 7).
    PutData {
        /// Operation this store belongs to.
        op: OpId,
        /// Tag created for this write.
        tag: Tag,
        /// Replica copy or coded element.
        payload: Payload,
    },
    /// `QUERY-DATA` — the one-shot read (Fig. 2 line 3, Fig. 5 line 2).
    QueryData {
        /// Operation this query belongs to.
        op: OpId,
    },
    /// History query used by BSR-H reads (§III-C, first bullet). The
    /// reader passes its local tag so servers can send only the *delta*
    /// (entries with strictly higher tags) — a bandwidth optimization that
    /// preserves the variant's freshness: anything at or below `above` is
    /// already covered by the reader's own monotone local pair.
    QueryHistory {
        /// Operation this query belongs to.
        op: OpId,
        /// Send only entries with tags strictly above this.
        above: Tag,
    },
    /// First phase of a BSR-2P read: "the sever sends a history of all the
    /// tags back to the reader" (§III-C, second bullet) — tags only, so the
    /// phase is cheap.
    QueryTagList {
        /// Operation this query belongs to.
        op: OpId,
    },
    /// Second phase of a BSR-2P read: fetch the value stored under `tag`
    /// (§III-C, second bullet).
    QueryValueAt {
        /// Operation this query belongs to.
        op: OpId,
        /// Tag selected in the first phase.
        tag: Tag,
    },
    /// Subscribing read used by the RB baseline: the server answers now and
    /// keeps pushing newer values until [`ClientToServer::ReadComplete`].
    QueryDataSub {
        /// Operation this subscription belongs to.
        op: OpId,
    },
    /// Ends an RB-baseline subscribing read.
    ReadComplete {
        /// The finished operation.
        op: OpId,
    },
}

impl ClientToServer {
    /// The operation id carried by the message.
    pub fn op(&self) -> OpId {
        match self {
            ClientToServer::QueryTag { op }
            | ClientToServer::PutData { op, .. }
            | ClientToServer::QueryData { op }
            | ClientToServer::QueryHistory { op, .. }
            | ClientToServer::QueryTagList { op }
            | ClientToServer::QueryValueAt { op, .. }
            | ClientToServer::QueryDataSub { op }
            | ClientToServer::ReadComplete { op } => *op,
        }
    }
}

/// Messages from servers to clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerToClient {
    /// Reply to `QUERY-TAG`: the maximum tag in the server's list `L`
    /// (Fig. 3 line 3).
    TagResp {
        /// Operation being answered.
        op: OpId,
        /// `max{t : (t, *) ∈ L}`.
        tag: Tag,
    },
    /// Acknowledgement of `PUT-DATA` (Fig. 3 line 7).
    PutAck {
        /// Operation being answered.
        op: OpId,
        /// The tag that was stored (echoed for matching).
        tag: Tag,
    },
    /// Reply to `QUERY-DATA`: the pair with the highest local tag
    /// (Fig. 3 line 9, Fig. 6 line 9).
    DataResp {
        /// Operation being answered.
        op: OpId,
        /// Highest tag in `L`.
        tag: Tag,
        /// The payload stored under that tag.
        payload: Payload,
    },
    /// Reply to a history query: the server's entire list `L` (§III-C).
    HistoryResp {
        /// Operation being answered.
        op: OpId,
        /// All `(tag, payload)` pairs in `L`, ascending by tag.
        entries: Vec<(Tag, Payload)>,
    },
    /// Reply to `QueryTagList`: every tag in the server's list `L`,
    /// ascending (§III-C, second bullet, first phase).
    TagListResp {
        /// Operation being answered.
        op: OpId,
        /// All tags in `L`, ascending.
        tags: Vec<Tag>,
    },
    /// Reply to `QueryValueAt`: the payload stored under the requested tag,
    /// if the server has it.
    ValueAtResp {
        /// Operation being answered.
        op: OpId,
        /// The tag that was requested.
        tag: Tag,
        /// The stored payload, or `None` when the server has no entry for
        /// the tag.
        payload: Option<Payload>,
    },
    /// Redirect: the frame's [`crate::epoch::ConfigStamp`] did not match
    /// the server's current configuration. Carries the server's full view
    /// so the client can refresh its membership and re-issue the op. A
    /// client only *adopts* a redirected config once `f + 1` distinct
    /// servers vouch for the same `(epoch, digest)` — see `crate::epoch`.
    WrongEpoch {
        /// Operation being redirected.
        op: OpId,
        /// The server's current configuration.
        config: EpochConfig,
    },
}

impl ServerToClient {
    /// The operation id carried by the message.
    pub fn op(&self) -> OpId {
        match self {
            ServerToClient::TagResp { op, .. }
            | ServerToClient::PutAck { op, .. }
            | ServerToClient::DataResp { op, .. }
            | ServerToClient::HistoryResp { op, .. }
            | ServerToClient::TagListResp { op, .. }
            | ServerToClient::ValueAtResp { op, .. }
            | ServerToClient::WrongEpoch { op, .. } => *op,
        }
    }
}

/// Identifier of one reliable-broadcast instance.
///
/// The RB baseline runs one Bracha instance per write; `(origin, seq)` is the
/// writer's operation id and uniquely names the instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BroadcastId {
    /// The client whose write is being broadcast.
    pub origin: ClientId,
    /// The origin's operation sequence number.
    pub seq: u64,
}

/// Server-to-server messages (used only by the reliable-broadcast baseline —
/// the paper's own protocols never exchange server-to-server messages, which
/// is exactly the restriction its lower bounds exploit; see Remark 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeerMessage {
    /// Bracha `ECHO`: "I received the payload of this broadcast".
    RbEcho {
        /// Broadcast instance.
        bid: BroadcastId,
        /// Tag under broadcast.
        tag: Tag,
        /// Value under broadcast.
        payload: Payload,
    },
    /// Bracha `READY`: "enough servers echoed; I am about to deliver".
    RbReady {
        /// Broadcast instance.
        bid: BroadcastId,
        /// Tag under broadcast.
        tag: Tag,
        /// Value under broadcast.
        payload: Payload,
    },
}

/// Any message in the system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Client → server.
    ToServer(ClientToServer),
    /// Server → client.
    ToClient(ServerToClient),
    /// Server → server (RB baseline only).
    Peer(PeerMessage),
}

impl From<ClientToServer> for Message {
    fn from(m: ClientToServer) -> Self {
        Message::ToServer(m)
    }
}

impl From<ServerToClient> for Message {
    fn from(m: ServerToClient) -> Self {
        Message::ToClient(m)
    }
}

impl From<PeerMessage> for Message {
    fn from(m: PeerMessage) -> Self {
        Message::Peer(m)
    }
}

/// A message in flight between two processes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Sending process.
    pub src: NodeId,
    /// Destination process.
    pub dst: NodeId,
    /// The message itself.
    pub msg: Message,
}

impl Envelope {
    /// Creates an envelope.
    pub fn new(src: impl Into<NodeId>, dst: impl Into<NodeId>, msg: impl Into<Message>) -> Self {
        Envelope {
            src: src.into(),
            dst: dst.into(),
            msg: msg.into(),
        }
    }

    /// Convenience constructor for a client → server envelope.
    pub fn to_server(client: ClientId, server: ServerId, msg: ClientToServer) -> Self {
        Envelope::new(client, server, msg)
    }

    /// Convenience constructor for a server → client envelope.
    pub fn to_client(server: ServerId, client: ClientId, msg: ServerToClient) -> Self {
        Envelope::new(server, client, msg)
    }

    /// Splits the wire encoding into a small owned *head* and an optional
    /// zero-copy payload *tail* such that `head ++ tail` equals
    /// [`Wire::to_bytes`] byte-for-byte.
    ///
    /// The tail, when present, is the raw bytes of the envelope's single
    /// trailing payload field ([`Payload::Full`] value or
    /// [`Payload::Coded`] element data), returned as an O(1) clone of the
    /// payload's own `Bytes` — the payload is never re-copied into the
    /// encoding. Envelopes whose payload is not in trailing position
    /// (history replies, payload-free queries/acks) return the full encoding
    /// as the head and no tail.
    ///
    /// This is the encode-once primitive: the transport seals `(head, tail)`
    /// with a streaming MAC and writes them with one vectored syscall, so a
    /// BCSR writer hands each server a slice of the fragment arena without
    /// the payload ever being memcpy'd after encoding.
    pub fn encode_parts(&self) -> (Vec<u8>, Option<Bytes>) {
        fn payload_head(p: &Payload, buf: &mut Vec<u8>) -> Bytes {
            // Mirrors `Payload::encode_to` up to (and including) the u32
            // length prefix of the trailing data, returning the data itself.
            match p {
                Payload::Full(v) => {
                    buf.push(0);
                    (v.len() as u32).encode_to(buf);
                    v.bytes().clone()
                }
                Payload::Coded(c) => {
                    buf.push(1);
                    c.index.encode_to(buf);
                    c.value_len.encode_to(buf);
                    (c.data.len() as u32).encode_to(buf);
                    c.data.clone()
                }
            }
        }

        let mut head = Vec::with_capacity(64);
        self.src.encode_to(&mut head);
        self.dst.encode_to(&mut head);
        let tail = match &self.msg {
            Message::ToServer(ClientToServer::PutData { op, tag, payload }) => {
                head.push(0); // Message::ToServer
                head.push(1); // ClientToServer::PutData
                op.encode_to(&mut head);
                tag.encode_to(&mut head);
                Some(payload_head(payload, &mut head))
            }
            Message::ToClient(ServerToClient::DataResp { op, tag, payload }) => {
                head.push(1); // Message::ToClient
                head.push(2); // ServerToClient::DataResp
                op.encode_to(&mut head);
                tag.encode_to(&mut head);
                Some(payload_head(payload, &mut head))
            }
            Message::ToClient(ServerToClient::ValueAtResp {
                op,
                tag,
                payload: Some(p),
            }) => {
                head.push(1); // Message::ToClient
                head.push(4); // ServerToClient::ValueAtResp
                op.encode_to(&mut head);
                tag.encode_to(&mut head);
                head.push(1); // Option::Some
                Some(payload_head(p, &mut head))
            }
            Message::Peer(PeerMessage::RbEcho { bid, tag, payload }) => {
                head.push(2); // Message::Peer
                head.push(0); // PeerMessage::RbEcho
                bid.encode_to(&mut head);
                tag.encode_to(&mut head);
                Some(payload_head(payload, &mut head))
            }
            Message::Peer(PeerMessage::RbReady { bid, tag, payload }) => {
                head.push(2); // Message::Peer
                head.push(1); // PeerMessage::RbReady
                bid.encode_to(&mut head);
                tag.encode_to(&mut head);
                Some(payload_head(payload, &mut head))
            }
            _ => {
                self.msg.encode_to(&mut head);
                None
            }
        };
        (head, tail)
    }
}

// ---------------------------------------------------------------------------
// Wire encodings
// ---------------------------------------------------------------------------

impl Wire for OpId {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        self.client.encode_to(buf);
        self.seq.encode_to(buf);
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(OpId {
            client: ClientId::decode_from(r)?,
            seq: u64::decode_from(r)?,
        })
    }
}

impl Wire for CodedElement {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        self.index.encode_to(buf);
        self.value_len.encode_to(buf);
        self.data.encode_to(buf);
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(CodedElement {
            index: u16::decode_from(r)?,
            value_len: u32::decode_from(r)?,
            data: Bytes::decode_from(r)?,
        })
    }

    fn decode_borrowed(r: &mut BytesReader<'_>) -> Result<Self, WireError> {
        Ok(CodedElement {
            index: u16::decode_borrowed(r)?,
            value_len: u32::decode_borrowed(r)?,
            data: Bytes::decode_borrowed(r)?,
        })
    }
}

impl Wire for Payload {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        match self {
            Payload::Full(v) => {
                buf.push(0);
                v.encode_to(buf);
            }
            Payload::Coded(c) => {
                buf.push(1);
                c.encode_to(buf);
            }
        }
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode_from(r)? {
            0 => Ok(Payload::Full(Value::decode_from(r)?)),
            1 => Ok(Payload::Coded(CodedElement::decode_from(r)?)),
            t => Err(WireError::BadDiscriminant {
                ty: "Payload",
                got: t,
            }),
        }
    }

    fn decode_borrowed(r: &mut BytesReader<'_>) -> Result<Self, WireError> {
        match u8::decode_borrowed(r)? {
            0 => Ok(Payload::Full(Value::decode_borrowed(r)?)),
            1 => Ok(Payload::Coded(CodedElement::decode_borrowed(r)?)),
            t => Err(WireError::BadDiscriminant {
                ty: "Payload",
                got: t,
            }),
        }
    }
}

impl Wire for ClientToServer {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        match self {
            ClientToServer::QueryTag { op } => {
                buf.push(0);
                op.encode_to(buf);
            }
            ClientToServer::PutData { op, tag, payload } => {
                buf.push(1);
                op.encode_to(buf);
                tag.encode_to(buf);
                payload.encode_to(buf);
            }
            ClientToServer::QueryData { op } => {
                buf.push(2);
                op.encode_to(buf);
            }
            ClientToServer::QueryHistory { op, above } => {
                buf.push(3);
                op.encode_to(buf);
                above.encode_to(buf);
            }
            ClientToServer::QueryValueAt { op, tag } => {
                buf.push(4);
                op.encode_to(buf);
                tag.encode_to(buf);
            }
            ClientToServer::QueryDataSub { op } => {
                buf.push(5);
                op.encode_to(buf);
            }
            ClientToServer::ReadComplete { op } => {
                buf.push(6);
                op.encode_to(buf);
            }
            ClientToServer::QueryTagList { op } => {
                buf.push(7);
                op.encode_to(buf);
            }
        }
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match u8::decode_from(r)? {
            0 => ClientToServer::QueryTag {
                op: OpId::decode_from(r)?,
            },
            1 => ClientToServer::PutData {
                op: OpId::decode_from(r)?,
                tag: Tag::decode_from(r)?,
                payload: Payload::decode_from(r)?,
            },
            2 => ClientToServer::QueryData {
                op: OpId::decode_from(r)?,
            },
            3 => ClientToServer::QueryHistory {
                op: OpId::decode_from(r)?,
                above: Tag::decode_from(r)?,
            },
            4 => ClientToServer::QueryValueAt {
                op: OpId::decode_from(r)?,
                tag: Tag::decode_from(r)?,
            },
            5 => ClientToServer::QueryDataSub {
                op: OpId::decode_from(r)?,
            },
            6 => ClientToServer::ReadComplete {
                op: OpId::decode_from(r)?,
            },
            7 => ClientToServer::QueryTagList {
                op: OpId::decode_from(r)?,
            },
            t => {
                return Err(WireError::BadDiscriminant {
                    ty: "ClientToServer",
                    got: t,
                })
            }
        })
    }

    fn decode_borrowed(r: &mut BytesReader<'_>) -> Result<Self, WireError> {
        Ok(match u8::decode_borrowed(r)? {
            0 => ClientToServer::QueryTag {
                op: OpId::decode_borrowed(r)?,
            },
            1 => ClientToServer::PutData {
                op: OpId::decode_borrowed(r)?,
                tag: Tag::decode_borrowed(r)?,
                payload: Payload::decode_borrowed(r)?,
            },
            2 => ClientToServer::QueryData {
                op: OpId::decode_borrowed(r)?,
            },
            3 => ClientToServer::QueryHistory {
                op: OpId::decode_borrowed(r)?,
                above: Tag::decode_borrowed(r)?,
            },
            4 => ClientToServer::QueryValueAt {
                op: OpId::decode_borrowed(r)?,
                tag: Tag::decode_borrowed(r)?,
            },
            5 => ClientToServer::QueryDataSub {
                op: OpId::decode_borrowed(r)?,
            },
            6 => ClientToServer::ReadComplete {
                op: OpId::decode_borrowed(r)?,
            },
            7 => ClientToServer::QueryTagList {
                op: OpId::decode_borrowed(r)?,
            },
            t => {
                return Err(WireError::BadDiscriminant {
                    ty: "ClientToServer",
                    got: t,
                })
            }
        })
    }
}

impl Wire for ServerToClient {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        match self {
            ServerToClient::TagResp { op, tag } => {
                buf.push(0);
                op.encode_to(buf);
                tag.encode_to(buf);
            }
            ServerToClient::PutAck { op, tag } => {
                buf.push(1);
                op.encode_to(buf);
                tag.encode_to(buf);
            }
            ServerToClient::DataResp { op, tag, payload } => {
                buf.push(2);
                op.encode_to(buf);
                tag.encode_to(buf);
                payload.encode_to(buf);
            }
            ServerToClient::HistoryResp { op, entries } => {
                buf.push(3);
                op.encode_to(buf);
                entries.encode_to(buf);
            }
            ServerToClient::ValueAtResp { op, tag, payload } => {
                buf.push(4);
                op.encode_to(buf);
                tag.encode_to(buf);
                payload.encode_to(buf);
            }
            ServerToClient::TagListResp { op, tags } => {
                buf.push(5);
                op.encode_to(buf);
                tags.encode_to(buf);
            }
            ServerToClient::WrongEpoch { op, config } => {
                buf.push(6);
                op.encode_to(buf);
                config.encode_to(buf);
            }
        }
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match u8::decode_from(r)? {
            0 => ServerToClient::TagResp {
                op: OpId::decode_from(r)?,
                tag: Tag::decode_from(r)?,
            },
            1 => ServerToClient::PutAck {
                op: OpId::decode_from(r)?,
                tag: Tag::decode_from(r)?,
            },
            2 => ServerToClient::DataResp {
                op: OpId::decode_from(r)?,
                tag: Tag::decode_from(r)?,
                payload: Payload::decode_from(r)?,
            },
            3 => ServerToClient::HistoryResp {
                op: OpId::decode_from(r)?,
                entries: Vec::<(Tag, Payload)>::decode_from(r)?,
            },
            4 => ServerToClient::ValueAtResp {
                op: OpId::decode_from(r)?,
                tag: Tag::decode_from(r)?,
                payload: Option::<Payload>::decode_from(r)?,
            },
            5 => ServerToClient::TagListResp {
                op: OpId::decode_from(r)?,
                tags: Vec::<Tag>::decode_from(r)?,
            },
            6 => ServerToClient::WrongEpoch {
                op: OpId::decode_from(r)?,
                config: EpochConfig::decode_from(r)?,
            },
            t => {
                return Err(WireError::BadDiscriminant {
                    ty: "ServerToClient",
                    got: t,
                })
            }
        })
    }

    fn decode_borrowed(r: &mut BytesReader<'_>) -> Result<Self, WireError> {
        Ok(match u8::decode_borrowed(r)? {
            0 => ServerToClient::TagResp {
                op: OpId::decode_borrowed(r)?,
                tag: Tag::decode_borrowed(r)?,
            },
            1 => ServerToClient::PutAck {
                op: OpId::decode_borrowed(r)?,
                tag: Tag::decode_borrowed(r)?,
            },
            2 => ServerToClient::DataResp {
                op: OpId::decode_borrowed(r)?,
                tag: Tag::decode_borrowed(r)?,
                payload: Payload::decode_borrowed(r)?,
            },
            3 => ServerToClient::HistoryResp {
                op: OpId::decode_borrowed(r)?,
                entries: Vec::<(Tag, Payload)>::decode_borrowed(r)?,
            },
            4 => ServerToClient::ValueAtResp {
                op: OpId::decode_borrowed(r)?,
                tag: Tag::decode_borrowed(r)?,
                payload: Option::<Payload>::decode_borrowed(r)?,
            },
            5 => ServerToClient::TagListResp {
                op: OpId::decode_borrowed(r)?,
                tags: Vec::<Tag>::decode_borrowed(r)?,
            },
            6 => ServerToClient::WrongEpoch {
                op: OpId::decode_borrowed(r)?,
                config: EpochConfig::decode_borrowed(r)?,
            },
            t => {
                return Err(WireError::BadDiscriminant {
                    ty: "ServerToClient",
                    got: t,
                })
            }
        })
    }
}

impl Wire for BroadcastId {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        self.origin.encode_to(buf);
        self.seq.encode_to(buf);
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(BroadcastId {
            origin: ClientId::decode_from(r)?,
            seq: u64::decode_from(r)?,
        })
    }
}

impl Wire for PeerMessage {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        match self {
            PeerMessage::RbEcho { bid, tag, payload } => {
                buf.push(0);
                bid.encode_to(buf);
                tag.encode_to(buf);
                payload.encode_to(buf);
            }
            PeerMessage::RbReady { bid, tag, payload } => {
                buf.push(1);
                bid.encode_to(buf);
                tag.encode_to(buf);
                payload.encode_to(buf);
            }
        }
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let disc = u8::decode_from(r)?;
        let bid = BroadcastId::decode_from(r)?;
        let tag = Tag::decode_from(r)?;
        let payload = Payload::decode_from(r)?;
        match disc {
            0 => Ok(PeerMessage::RbEcho { bid, tag, payload }),
            1 => Ok(PeerMessage::RbReady { bid, tag, payload }),
            t => Err(WireError::BadDiscriminant {
                ty: "PeerMessage",
                got: t,
            }),
        }
    }

    fn decode_borrowed(r: &mut BytesReader<'_>) -> Result<Self, WireError> {
        let disc = u8::decode_borrowed(r)?;
        let bid = BroadcastId::decode_borrowed(r)?;
        let tag = Tag::decode_borrowed(r)?;
        let payload = Payload::decode_borrowed(r)?;
        match disc {
            0 => Ok(PeerMessage::RbEcho { bid, tag, payload }),
            1 => Ok(PeerMessage::RbReady { bid, tag, payload }),
            t => Err(WireError::BadDiscriminant {
                ty: "PeerMessage",
                got: t,
            }),
        }
    }
}

impl Wire for Message {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        match self {
            Message::ToServer(m) => {
                buf.push(0);
                m.encode_to(buf);
            }
            Message::ToClient(m) => {
                buf.push(1);
                m.encode_to(buf);
            }
            Message::Peer(m) => {
                buf.push(2);
                m.encode_to(buf);
            }
        }
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match u8::decode_from(r)? {
            0 => Message::ToServer(ClientToServer::decode_from(r)?),
            1 => Message::ToClient(ServerToClient::decode_from(r)?),
            2 => Message::Peer(PeerMessage::decode_from(r)?),
            t => {
                return Err(WireError::BadDiscriminant {
                    ty: "Message",
                    got: t,
                })
            }
        })
    }

    fn decode_borrowed(r: &mut BytesReader<'_>) -> Result<Self, WireError> {
        Ok(match u8::decode_borrowed(r)? {
            0 => Message::ToServer(ClientToServer::decode_borrowed(r)?),
            1 => Message::ToClient(ServerToClient::decode_borrowed(r)?),
            2 => Message::Peer(PeerMessage::decode_borrowed(r)?),
            t => {
                return Err(WireError::BadDiscriminant {
                    ty: "Message",
                    got: t,
                })
            }
        })
    }
}

impl Wire for Envelope {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        self.src.encode_to(buf);
        self.dst.encode_to(buf);
        self.msg.encode_to(buf);
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Envelope {
            src: NodeId::decode_from(r)?,
            dst: NodeId::decode_from(r)?,
            msg: Message::decode_from(r)?,
        })
    }

    fn decode_borrowed(r: &mut BytesReader<'_>) -> Result<Self, WireError> {
        Ok(Envelope {
            src: NodeId::decode_borrowed(r)?,
            dst: NodeId::decode_borrowed(r)?,
            msg: Message::decode_borrowed(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ReaderId, WriterId};

    fn sample_op() -> OpId {
        OpId::new(WriterId(1), 42)
    }

    #[test]
    fn op_id_is_echoed_by_accessors() {
        let op = sample_op();
        let msgs = [
            ClientToServer::QueryTag { op },
            ClientToServer::PutData {
                op,
                tag: Tag::ZERO,
                payload: Payload::Full(Value::from("x")),
            },
            ClientToServer::QueryData { op },
            ClientToServer::QueryHistory {
                op,
                above: Tag::ZERO,
            },
            ClientToServer::QueryTagList { op },
            ClientToServer::QueryValueAt { op, tag: Tag::ZERO },
            ClientToServer::QueryDataSub { op },
            ClientToServer::ReadComplete { op },
        ];
        for m in msgs {
            assert_eq!(m.op(), op);
        }
    }

    #[test]
    fn every_client_message_roundtrips() {
        let op = sample_op();
        let tag = Tag::new(3, WriterId(2));
        let payload = Payload::Coded(CodedElement {
            index: 4,
            value_len: 100,
            data: Bytes::from_static(b"coded"),
        });
        let msgs = vec![
            ClientToServer::QueryTag { op },
            ClientToServer::PutData {
                op,
                tag,
                payload: payload.clone(),
            },
            ClientToServer::QueryData { op },
            ClientToServer::QueryHistory {
                op,
                above: Tag::ZERO,
            },
            ClientToServer::QueryTagList { op },
            ClientToServer::QueryValueAt { op, tag },
            ClientToServer::QueryDataSub { op },
            ClientToServer::ReadComplete { op },
        ];
        for m in msgs {
            let buf = m.to_bytes();
            assert_eq!(ClientToServer::from_bytes(&buf).unwrap(), m);
        }
    }

    #[test]
    fn every_server_message_roundtrips() {
        let op = OpId::new(ReaderId(0), 7);
        let tag = Tag::new(9, WriterId(1));
        let full = Payload::Full(Value::from("abc"));
        let msgs = vec![
            ServerToClient::TagResp { op, tag },
            ServerToClient::PutAck { op, tag },
            ServerToClient::DataResp {
                op,
                tag,
                payload: full.clone(),
            },
            ServerToClient::HistoryResp {
                op,
                entries: vec![(Tag::ZERO, full.clone()), (tag, full.clone())],
            },
            ServerToClient::TagListResp {
                op,
                tags: vec![Tag::ZERO, tag],
            },
            ServerToClient::ValueAtResp {
                op,
                tag,
                payload: Some(full.clone()),
            },
            ServerToClient::ValueAtResp {
                op,
                tag,
                payload: None,
            },
        ];
        for m in msgs {
            let buf = m.to_bytes();
            assert_eq!(ServerToClient::from_bytes(&buf).unwrap(), m);
            assert_eq!(m.op(), op);
        }
    }

    #[test]
    fn peer_and_envelope_roundtrip() {
        let bid = BroadcastId {
            origin: ClientId::Writer(WriterId(3)),
            seq: 1,
        };
        let tag = Tag::new(1, WriterId(3));
        let payload = Payload::Full(Value::from("rb"));
        for m in [
            PeerMessage::RbEcho {
                bid,
                tag,
                payload: payload.clone(),
            },
            PeerMessage::RbReady {
                bid,
                tag,
                payload: payload.clone(),
            },
        ] {
            let env = Envelope::new(ServerId(0), ServerId(1), m);
            let buf = env.to_bytes();
            assert_eq!(Envelope::from_bytes(&buf).unwrap(), env);
        }
    }

    #[test]
    fn encode_parts_concatenation_matches_full_encoding() {
        let op = sample_op();
        let tag = Tag::new(3, WriterId(2));
        let value = Value::from(vec![0xAB; 64]);
        let coded = Payload::Coded(CodedElement {
            index: 4,
            value_len: 100,
            data: Bytes::from(vec![0xCD; 25]),
        });
        let envs = vec![
            // Tail-bearing shapes.
            Envelope::new(
                WriterId(1),
                ServerId(0),
                ClientToServer::PutData {
                    op,
                    tag,
                    payload: Payload::Full(value.clone()),
                },
            ),
            Envelope::new(
                WriterId(1),
                ServerId(0),
                ClientToServer::PutData {
                    op,
                    tag,
                    payload: coded.clone(),
                },
            ),
            Envelope::new(
                ServerId(0),
                ReaderId(0),
                ServerToClient::DataResp {
                    op,
                    tag,
                    payload: Payload::Full(value.clone()),
                },
            ),
            Envelope::new(
                ServerId(0),
                ReaderId(0),
                ServerToClient::ValueAtResp {
                    op,
                    tag,
                    payload: Some(coded.clone()),
                },
            ),
            Envelope::new(
                ServerId(0),
                ServerId(1),
                PeerMessage::RbEcho {
                    bid: BroadcastId {
                        origin: ClientId::Writer(WriterId(3)),
                        seq: 1,
                    },
                    tag,
                    payload: Payload::Full(value.clone()),
                },
            ),
            // Headless shapes (no trailing payload).
            Envelope::new(WriterId(1), ServerId(0), ClientToServer::QueryTag { op }),
            Envelope::new(
                ServerId(0),
                ReaderId(0),
                ServerToClient::ValueAtResp {
                    op,
                    tag,
                    payload: None,
                },
            ),
            Envelope::new(
                ServerId(0),
                ReaderId(0),
                ServerToClient::HistoryResp {
                    op,
                    entries: vec![(tag, coded.clone())],
                },
            ),
        ];
        for env in envs {
            let full = env.to_bytes();
            let (head, tail) = env.encode_parts();
            let mut joined = head;
            if let Some(t) = &tail {
                joined.extend_from_slice(t);
            }
            assert_eq!(joined, full.to_vec(), "parts must concat to {env:?}");
        }

        // The tail is the payload's own allocation, not a copy.
        let env = Envelope::new(
            WriterId(1),
            ServerId(0),
            ClientToServer::PutData {
                op,
                tag,
                payload: Payload::Full(value.clone()),
            },
        );
        let (_, tail) = env.encode_parts();
        assert_eq!(
            tail.unwrap().as_ref().as_ptr(),
            value.as_bytes().as_ptr(),
            "tail must alias the value's buffer"
        );
    }

    #[test]
    fn payload_bytes_reflect_storage_cost() {
        assert_eq!(
            Payload::Full(Value::from(vec![0u8; 100])).payload_bytes(),
            100
        );
        let coded = Payload::Coded(CodedElement {
            index: 0,
            value_len: 100,
            data: Bytes::from(vec![0u8; 25]),
        });
        assert_eq!(coded.payload_bytes(), 25);
        assert!(coded.as_coded().is_some());
        assert!(coded.as_full().is_none());
    }

    #[test]
    fn corrupted_discriminants_fail_to_decode() {
        let mut buf = ClientToServer::QueryData { op: sample_op() }
            .to_bytes()
            .to_vec();
        buf[0] = 250;
        assert!(matches!(
            ClientToServer::from_bytes(&Bytes::from(buf)),
            Err(WireError::BadDiscriminant {
                ty: "ClientToServer",
                got: 250
            })
        ));
    }
}
