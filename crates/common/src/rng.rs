//! Deterministic pseudo-random number generation.
//!
//! The simulator must be bit-for-bit reproducible from a seed so that every
//! adversarial schedule found by a randomized search can be replayed. We
//! implement xoshiro256++ (public-domain construction by Blackman & Vigna)
//! seeded through SplitMix64 rather than depend on an external RNG whose
//! stream might change between versions.

/// A small, fast, deterministic PRNG (xoshiro256++ seeded via SplitMix64).
///
/// Not cryptographically secure — it drives simulation schedules and
/// workloads, never key material.
///
/// # Examples
///
/// ```
/// use safereg_common::rng::DetRng;
///
/// let mut a = DetRng::seed_from(42);
/// let mut b = DetRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let d = a.range_u64(10..20);
/// assert!((10..20).contains(&d));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        DetRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from a half-open range.
    ///
    /// Uses rejection sampling, so the distribution is exactly uniform.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_u64(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(
            range.start < range.end,
            "range_u64 requires a non-empty range"
        );
        let span = range.end - range.start;
        if span.is_power_of_two() {
            return range.start + (self.next_u64() & (span - 1));
        }
        // Rejection zone keeps the draw unbiased.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return range.start + v % span;
            }
        }
    }

    /// Uniform draw from `0..bound` as a `usize`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.range_u64(0..bound as u64) as usize
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 random mantissa bits give a uniform float in [0, 1).
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.index(xs.len())]
    }

    /// Fills a byte buffer with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Forks an independent generator, advancing `self`.
    ///
    /// Used to give every simulated process its own stream so adding a
    /// process does not perturb the others' randomness.
    pub fn fork(&mut self) -> DetRng {
        DetRng::seed_from(self.next_u64())
    }
}

/// Zipf-distributed index sampler over `0..n` with exponent `s`.
///
/// Rank `r` (1-based) is drawn with probability `∝ 1/r^s` — the classic
/// skewed-access model where a handful of hot keys absorb most of the
/// traffic. The sampler precomputes the cumulative mass function once, so
/// each draw is one uniform double plus a binary search; with `s = 0` it
/// degenerates to the uniform distribution.
///
/// # Examples
///
/// ```
/// use safereg_common::rng::{DetRng, Zipf};
///
/// let zipf = Zipf::new(100, 1.0);
/// let mut rng = DetRng::seed_from(1);
/// let i = zipf.sample(&mut rng);
/// assert!(i < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `0..n` with skew exponent `s ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf requires a non-empty index range");
        assert!(s >= 0.0 && s.is_finite(), "Zipf exponent must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for rank in 1..=n {
            acc += (rank as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for w in &mut cdf {
            *w /= total;
        }
        Zipf { cdf }
    }

    /// Number of indices the sampler draws from.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the index range is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one index in `0..n`; index `0` is the hottest.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.cdf.partition_point(|c| *c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from(7);
        let mut b = DetRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed_from(1);
        let mut b = DetRng::seed_from(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn range_stays_in_bounds_and_hits_endpoints() {
        let mut rng = DetRng::seed_from(3);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            let v = rng.range_u64(5..8);
            assert!((5..8).contains(&v));
            seen_lo |= v == 5;
            seen_hi |= v == 7;
        }
        assert!(
            seen_lo && seen_hi,
            "uniform draw should reach both endpoints"
        );
    }

    #[test]
    #[should_panic(expected = "non-empty range")]
    fn empty_range_panics() {
        DetRng::seed_from(0).range_u64(3..3);
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut rng = DetRng::seed_from(11);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits} hits for p=0.25");
        assert!(!DetRng::seed_from(0).chance(0.0));
        assert!(DetRng::seed_from(0).chance(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::seed_from(5);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..50).collect::<Vec<_>>(),
            "50 elements almost surely move"
        );
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = DetRng::seed_from(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|b| *b != 0));
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut root = DetRng::seed_from(1);
        let mut child = root.fork();
        assert_ne!(root.next_u64(), child.next_u64());
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let zipf = Zipf::new(64, 1.1);
        let mut rng = DetRng::seed_from(17);
        let mut counts = [0usize; 64];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[32] * 5,
            "rank 0 ({}) should dwarf rank 32 ({})",
            counts[0],
            counts[32]
        );
        assert!(counts[0] > 2000, "hot key absorbs a large share");
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let zipf = Zipf::new(10, 0.0);
        let mut rng = DetRng::seed_from(23);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((4000..6000).contains(&c), "uniform-ish bucket got {c}");
        }
    }

    #[test]
    fn zipf_is_deterministic_per_seed() {
        let zipf = Zipf::new(100, 0.9);
        let mut a = DetRng::seed_from(5);
        let mut b = DetRng::seed_from(5);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut a), zipf.sample(&mut b));
        }
    }
}
