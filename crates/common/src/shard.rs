//! Key-space sharding: the hash ring mapping keys to register-group
//! shards and shards to replica subsets.
//!
//! One register group per cluster caps every throughput number at one
//! quorum's worth of work. A [`ShardMap`] partitions the key space into
//! `s` independent register groups ("shards"), each served by its own
//! replica subset drawn from one shared fleet of physical servers:
//!
//! * **key → shard** runs over a seeded consistent-hash ring with
//!   [`VNODES`] virtual points per shard, so per-shard key populations
//!   stay within a documented balance bound (see [`ShardMap::shard_of`])
//!   and growing the map from `s` to `s + 1` shards remaps only
//!   `≈ 1/(s+1)` of the keys — the property that makes the map an
//!   epoch-ready structure for reconfiguration instead of a `hash % s`
//!   that reshuffles almost everything.
//! * **shard → replicas** uses rendezvous (highest-random-weight) hashing
//!   over the fleet: every process that knows the seed and the fleet
//!   derives the identical placement, so clients route and servers decide
//!   group membership without any coordination message.
//!
//! Within one shard the register protocol is completely unchanged: the
//! shard's replica subset of size `m` runs BSR/BCSR with the *same* fault
//! bound `f` it would run standalone (`m ≥ 4f + 1` replicated,
//! `m ≥ 5f + 1` coded). Sharding multiplies throughput by spreading
//! independent register groups over the fleet; it neither strengthens nor
//! weakens what each group tolerates — per-shard `f` is per-subset, and a
//! physical server may count against `f` in one shard while serving
//! another honestly.
//!
//! Protocol operations inside a shard address **logical** replica indices
//! `0 .. m-1` (the ids [`QuorumConfig::servers`] enumerates for the
//! shard's config); the map translates them to **physical** fleet ids at
//! the routing layer ([`ShardMap::physical`] / [`ShardMap::logical_of`]).
//! That keeps the sans-io protocol crates untouched and lets `s` shards
//! share one socket per physical server instead of `s × n` connections.

use std::collections::BTreeMap;
use std::fmt;

use crate::codec::{Wire, WireError, WireReader};
use crate::config::QuorumConfig;
use crate::ids::ServerId;

/// Identifier of a register-group shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ShardId(pub u16);

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl Wire for ShardId {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        self.0.encode_to(buf);
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ShardId(u16::decode_from(r)?))
    }
}

/// Virtual ring points per shard. 128 points keep the largest arc share
/// close to its fair `1/s`: across seeds and shard counts up to 64, the
/// per-shard key count stays within the [`BALANCE_BOUND`] of the mean
/// (property-tested in `tests/shard_ring.rs`).
pub const VNODES: usize = 128;

/// Documented balance bound: with [`VNODES`] points per shard, every
/// shard's key count stays within `mean / BALANCE_BOUND ..= mean *
/// BALANCE_BOUND` for uniform-hashed key populations (Zipf-drawn key
/// *sets* hash uniformly too — skew concentrates ops, not key placement).
pub const BALANCE_BOUND: f64 = 2.0;

/// Error building a [`ShardMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardMapError {
    /// No shards requested.
    NoShards,
    /// The per-shard replica subset is larger than the fleet.
    SubsetExceedsFleet {
        /// Requested replicas per shard.
        m: usize,
        /// Physical servers available.
        fleet: usize,
    },
    /// The fleet was empty.
    EmptyFleet,
    /// The requested per-shard `(m, f)` pair is not a valid quorum
    /// configuration (`m == 0`, `f ≥ m`, or `m > 255`).
    BadQuorum {
        /// Requested replicas per shard.
        m: usize,
        /// Requested per-shard fault bound.
        f: usize,
    },
}

impl fmt::Display for ShardMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardMapError::NoShards => write!(f, "shard map needs at least one shard"),
            ShardMapError::SubsetExceedsFleet { m, fleet } => {
                write!(f, "per-shard subset m={m} exceeds the fleet of {fleet}")
            }
            ShardMapError::EmptyFleet => write!(f, "shard map needs at least one server"),
            ShardMapError::BadQuorum { m, f: faults } => {
                write!(
                    f,
                    "per-shard quorum m={m} f={faults} is not a valid configuration"
                )
            }
        }
    }
}

impl std::error::Error for ShardMapError {}

/// 64-bit avalanche mix (SplitMix64 finalizer) over an FNV-1a pass —
/// deterministic across platforms and good enough to spread ring points
/// and rendezvous scores uniformly.
fn hash64(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// Seeded placement of shards onto a fleet: key ring + replica subsets.
///
/// The map is a pure function of `(seed, shards, fleet, shard_cfg)` —
/// every client and every server rebuilds the identical structure, which
/// is what makes routing coordination-free and the membership structure
/// ready for epoch-numbered reconfiguration later.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    seed: u64,
    shard_cfg: QuorumConfig,
    fleet: Vec<ServerId>,
    /// Consistent-hash ring: vnode point → owning shard.
    ring: BTreeMap<u64, ShardId>,
    /// Rendezvous placement: shard → its `m` physical replicas, in
    /// logical-index order (`replicas[i]` is logical `ServerId(i)`).
    placement: Vec<Vec<ServerId>>,
}

impl ShardMap {
    /// Builds a map of `shards` register groups over `fleet`, each served
    /// by a subset of `shard_cfg.n()` replicas tolerating `shard_cfg.f()`
    /// Byzantine members.
    ///
    /// # Errors
    ///
    /// [`ShardMapError`] when `shards == 0`, the fleet is empty, or the
    /// per-shard subset exceeds the fleet.
    pub fn new(
        seed: u64,
        shards: u16,
        fleet: Vec<ServerId>,
        shard_cfg: QuorumConfig,
    ) -> Result<Self, ShardMapError> {
        if shards == 0 {
            return Err(ShardMapError::NoShards);
        }
        if fleet.is_empty() {
            return Err(ShardMapError::EmptyFleet);
        }
        let m = shard_cfg.n();
        if m > fleet.len() {
            return Err(ShardMapError::SubsetExceedsFleet {
                m,
                fleet: fleet.len(),
            });
        }
        let mut ring = BTreeMap::new();
        for g in 0..shards {
            for v in 0..VNODES {
                let mut label = [0u8; 12];
                label[..2].copy_from_slice(&g.to_le_bytes());
                label[2..10].copy_from_slice(&(v as u64).to_le_bytes());
                label[10..].copy_from_slice(b"rg");
                // First-writer-wins on the (astronomically unlikely) point
                // collision keeps the map independent of insertion order.
                ring.entry(hash64(seed, &label)).or_insert(ShardId(g));
            }
        }
        let placement = (0..shards)
            .map(|g| {
                // Rendezvous: each server scores against the shard; the
                // top m scores are the shard's replicas. Logical order is
                // ascending physical id so that the one-shard-over-the-
                // whole-fleet map degenerates to the identity mapping.
                let mut scored: Vec<(u64, ServerId)> = fleet
                    .iter()
                    .map(|s| {
                        let mut label = [0u8; 4];
                        label[..2].copy_from_slice(&g.to_le_bytes());
                        label[2..].copy_from_slice(&s.0.to_le_bytes());
                        (hash64(seed ^ 0x9E37_79B9, &label), *s)
                    })
                    .collect();
                scored.sort_unstable_by(|a, b| b.cmp(a));
                let mut chosen: Vec<ServerId> =
                    scored.into_iter().take(m).map(|(_, s)| s).collect();
                chosen.sort_unstable();
                chosen
            })
            .collect();
        Ok(ShardMap {
            seed,
            shard_cfg,
            fleet,
            ring,
            placement,
        })
    }

    /// First-class m < n placement: `shards` register groups over `fleet`,
    /// each served by only `m` of the fleet's servers with per-subset
    /// fault bound `f`. This is the horizontal-scaling shape — adding
    /// servers grows the fleet without inflating every shard's quorum —
    /// that previously only arose transiently when the reconfig machinery
    /// added a replica to a full-fleet map.
    ///
    /// Equivalent to [`ShardMap::new`] with `QuorumConfig::new(m, f)`;
    /// exists so callers state the placement shape directly instead of
    /// building a quorum config whose only purpose is to carry `m`.
    ///
    /// # Errors
    ///
    /// [`ShardMapError::BadQuorum`] when `(m, f)` is not a valid quorum
    /// configuration, plus every [`ShardMap::new`] error.
    pub fn with_replicas(
        seed: u64,
        shards: u16,
        fleet: Vec<ServerId>,
        m: usize,
        f: usize,
    ) -> Result<Self, ShardMapError> {
        let cfg = QuorumConfig::new(m, f).map_err(|_| ShardMapError::BadQuorum { m, f })?;
        ShardMap::new(seed, shards, fleet, cfg)
    }

    /// The degenerate single-shard map: one register group over the whole
    /// fleet `cfg.servers()`, identity logical↔physical mapping. Every
    /// pre-sharding deployment is exactly this map.
    pub fn single(cfg: QuorumConfig) -> Self {
        ShardMap::new(0, 1, cfg.servers().collect(), cfg).expect("one shard over n >= 1 servers")
    }

    /// The placement seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of shards `s`.
    pub fn num_shards(&self) -> u16 {
        self.placement.len() as u16
    }

    /// Iterator over all shard ids.
    pub fn shards(&self) -> impl Iterator<Item = ShardId> + '_ {
        (0..self.num_shards()).map(ShardId)
    }

    /// The physical fleet the shards draw replicas from.
    pub fn fleet(&self) -> &[ServerId] {
        &self.fleet
    }

    /// The per-shard quorum configuration `(m, f)`. Identical for every
    /// shard: `f` is a per-subset bound, unchanged by sharding.
    pub fn shard_config(&self) -> QuorumConfig {
        self.shard_cfg
    }

    /// The shard owning `key`: successor lookup on the ring, wrapping.
    pub fn shard_of(&self, key: &[u8]) -> ShardId {
        let h = hash64(self.seed ^ 0x5AFE_5AFE, key);
        let next = self
            .ring
            .range(h..)
            .next()
            .or_else(|| self.ring.iter().next());
        *next.expect("ring holds >= VNODES points").1
    }

    /// The physical replicas serving `shard`, in logical-index order, or
    /// `None` for an unknown shard.
    pub fn replicas(&self, shard: ShardId) -> Option<&[ServerId]> {
        self.placement.get(shard.0 as usize).map(Vec::as_slice)
    }

    /// Translates a shard-logical replica index (the protocol's
    /// `ServerId(0..m)`) to the physical fleet id serving it.
    pub fn physical(&self, shard: ShardId, logical: ServerId) -> Option<ServerId> {
        self.replicas(shard)?.get(logical.0 as usize).copied()
    }

    /// Translates a physical fleet id back to its logical index within
    /// `shard`, or `None` when that server does not serve the shard.
    pub fn logical_of(&self, shard: ShardId, physical: ServerId) -> Option<ServerId> {
        self.replicas(shard)?
            .iter()
            .position(|s| *s == physical)
            .map(|i| ServerId(i as u16))
    }

    /// The shards a physical server serves (a replica hosts one register
    /// group per shard placed on it).
    pub fn shards_of_server(&self, physical: ServerId) -> Vec<ShardId> {
        self.shards()
            .filter(|g| self.logical_of(*g, physical).is_some())
            .collect()
    }

    /// The same map re-resolved over a different fleet — the epoch-change
    /// primitive. Seed, shard count, and per-shard `(m, f)` are preserved,
    /// so `shard_of` is *identical* across epochs (the key ring only
    /// depends on seed and shard count) and only shard→replica placement
    /// moves. Rendezvous scores are per `(shard, server)` and independent
    /// of the rest of the fleet, so a single added server displaces at
    /// most one incumbent per shard (the lowest-scored one), and a removed
    /// server is backfilled by exactly one newcomer per affected shard —
    /// the minimal-disruption property the churn tests assert.
    ///
    /// # Errors
    ///
    /// [`ShardMapError`] when the new fleet is empty or smaller than the
    /// per-shard subset `m`.
    pub fn for_fleet(&self, mut fleet: Vec<ServerId>) -> Result<ShardMap, ShardMapError> {
        fleet.sort_unstable();
        fleet.dedup();
        ShardMap::new(self.seed, self.num_shards(), fleet, self.shard_cfg)
    }
}

impl fmt::Display for ShardMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "s={} fleet={} per-shard {}",
            self.num_shards(),
            self.fleet.len(),
            self.shard_cfg
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(n: u16) -> Vec<ServerId> {
        (0..n).map(ServerId).collect()
    }

    #[test]
    fn single_is_identity() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let map = ShardMap::single(cfg);
        assert_eq!(map.num_shards(), 1);
        assert_eq!(map.shard_of(b"any-key"), ShardId(0));
        for s in cfg.servers() {
            assert_eq!(map.physical(ShardId(0), s), Some(s));
            assert_eq!(map.logical_of(ShardId(0), s), Some(s));
        }
    }

    #[test]
    fn placement_is_deterministic_and_seed_sensitive() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let a = ShardMap::new(7, 8, fleet(9), cfg).unwrap();
        let b = ShardMap::new(7, 8, fleet(9), cfg).unwrap();
        assert_eq!(a, b, "same inputs, same map");
        let c = ShardMap::new(8, 8, fleet(9), cfg).unwrap();
        let moved = (0..64)
            .filter(|i| {
                let k = format!("k{i}");
                a.shard_of(k.as_bytes()) != c.shard_of(k.as_bytes())
            })
            .count();
        assert!(moved > 0, "a different seed must reshuffle the ring");
    }

    #[test]
    fn logical_physical_roundtrip() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let map = ShardMap::new(3, 4, fleet(8), cfg).unwrap();
        for g in map.shards() {
            let replicas = map.replicas(g).unwrap();
            assert_eq!(replicas.len(), cfg.n());
            let mut uniq = replicas.to_vec();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), cfg.n(), "replicas are distinct");
            for (i, p) in replicas.iter().enumerate() {
                assert_eq!(map.physical(g, ServerId(i as u16)), Some(*p));
                assert_eq!(map.logical_of(g, *p), Some(ServerId(i as u16)));
            }
        }
    }

    #[test]
    fn validation_errors() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        assert_eq!(
            ShardMap::new(1, 0, fleet(5), cfg),
            Err(ShardMapError::NoShards)
        );
        assert_eq!(
            ShardMap::new(1, 1, vec![], cfg),
            Err(ShardMapError::EmptyFleet)
        );
        assert_eq!(
            ShardMap::new(1, 1, fleet(4), cfg),
            Err(ShardMapError::SubsetExceedsFleet { m: 5, fleet: 4 })
        );
    }

    #[test]
    fn with_replicas_places_m_of_the_fleet_per_shard() {
        let map = ShardMap::with_replicas(11, 4, fleet(8), 5, 1).unwrap();
        assert_eq!(map.shard_config().n(), 5);
        assert_eq!(map.shard_config().f(), 1);
        for g in map.shards() {
            assert_eq!(map.replicas(g).unwrap().len(), 5);
        }
        assert_eq!(
            ShardMap::with_replicas(11, 4, fleet(8), 5, 5),
            Err(ShardMapError::BadQuorum { m: 5, f: 5 })
        );
        assert_eq!(
            ShardMap::with_replicas(11, 4, fleet(3), 5, 1),
            Err(ShardMapError::SubsetExceedsFleet { m: 5, fleet: 3 })
        );
    }

    /// Property sweep over `m < fleet` placements: for a grid of seeds,
    /// shard counts, fleet sizes and `(m, f)` points, every shard must
    /// place exactly `m` *distinct* replicas drawn from the fleet, the
    /// logical↔physical maps must roundtrip, key routing must stay in
    /// range, and the whole placement must be a pure function of its
    /// inputs.
    #[test]
    fn shard_ring_property_holds_for_m_subsets() {
        for seed in [1u64, 0x5AFE, 0xDEAD_BEEF] {
            for shards in [1u16, 3, 8] {
                for fleet_n in [6u16, 8, 11] {
                    for (m, f) in [(5usize, 1usize), (6, 1)] {
                        if m > fleet_n as usize {
                            continue;
                        }
                        let map =
                            ShardMap::with_replicas(seed, shards, fleet(fleet_n), m, f).unwrap();
                        let again =
                            ShardMap::with_replicas(seed, shards, fleet(fleet_n), m, f).unwrap();
                        assert_eq!(map, again, "placement is deterministic");
                        for g in map.shards() {
                            let replicas = map.replicas(g).unwrap().to_vec();
                            assert_eq!(replicas.len(), m, "each shard places m replicas");
                            let mut uniq = replicas.clone();
                            uniq.sort_unstable();
                            uniq.dedup();
                            assert_eq!(uniq.len(), m, "replicas are distinct");
                            assert!(
                                replicas.iter().all(|s| s.0 < fleet_n),
                                "replicas come from the fleet"
                            );
                            for (i, p) in replicas.iter().enumerate() {
                                assert_eq!(map.physical(g, ServerId(i as u16)), Some(*p));
                                assert_eq!(map.logical_of(g, *p), Some(ServerId(i as u16)));
                            }
                        }
                        for k in 0..32u32 {
                            let key = format!("prop-{k}");
                            assert!(map.shard_of(key.as_bytes()).0 < shards);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn shards_of_server_partitions_work() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let map = ShardMap::new(11, 16, fleet(8), cfg).unwrap();
        let total: usize = (0..8)
            .map(|s| map.shards_of_server(ServerId(s)).len())
            .sum();
        assert_eq!(total, 16 * cfg.n(), "every shard has m replica slots");
    }
}
