//! Thin synchronization wrappers over `std::sync`.
//!
//! The transports previously pulled in `parking_lot` and `crossbeam` for
//! locks and channels; the std equivalents are entirely sufficient for the
//! workspace's coarse-grained use (one lock per server node, one channel
//! per client), so these wrappers keep the dependency graph hermetic.
//!
//! The one behavioral decision lives here: **lock poisoning is recovered,
//! not propagated**. A panicking connection thread must not wedge the whole
//! server — the protocol state machines are sans-io and keep their
//! invariants by construction, so the data behind a poisoned lock is still
//! consistent and the remaining threads continue serving.
//!
//! # Examples
//!
//! ```
//! use safereg_common::sync::Mutex;
//!
//! let m = Mutex::new(5);
//! *m.lock() += 1;
//! assert_eq!(*m.lock(), 6);
//! ```

use std::sync::{MutexGuard, PoisonError, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never fails: poisoning from a
/// panicked holder is recovered by taking the inner guard.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A readers-writer lock with the same poison-recovery policy as
/// [`Mutex`].
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Multi-producer single-consumer channels (the shape the TCP client
/// uses: one reader thread per server connection funneling into one
/// receiver).
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvTimeoutError, SendError, Sender, TryRecvError};

    /// Creates an unbounded channel; the [`Sender`] side is cloneable.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_recovers_from_poisoning() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // A std Mutex would now return Err(PoisonError); ours recovers.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_allows_concurrent_reads_and_recovers() {
        let l = Arc::new(RwLock::new(7u32));
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 14);
        }
        *l.write() = 8;
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*l.read(), 8);
    }

    #[test]
    fn channel_supports_fanin_timeout_and_disconnect() {
        use std::time::Duration;
        let (tx, rx) = channel::unbounded::<u32>();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(1).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 1);
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Timeout)
        ));
        drop(tx);
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Disconnected)
        ));
    }
}
