//! Thin synchronization wrappers over `std::sync`.
//!
//! The transports previously pulled in `parking_lot` and `crossbeam` for
//! locks and channels; the std equivalents are entirely sufficient for the
//! workspace's coarse-grained use (one lock per server node, one channel
//! per client), so these wrappers keep the dependency graph hermetic.
//!
//! The one behavioral decision lives here: **lock poisoning is recovered,
//! not propagated**. A panicking connection thread must not wedge the whole
//! server — the protocol state machines are sans-io and keep their
//! invariants by construction, so the data behind a poisoned lock is still
//! consistent and the remaining threads continue serving.
//!
//! # Examples
//!
//! ```
//! use safereg_common::sync::Mutex;
//!
//! let m = Mutex::new(5);
//! *m.lock() += 1;
//! assert_eq!(*m.lock(), 6);
//! ```

use std::sync::{MutexGuard, PoisonError, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never fails: poisoning from a
/// panicked holder is recovered by taking the inner guard.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A readers-writer lock with the same poison-recovery policy as
/// [`Mutex`].
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Multi-producer single-consumer channels (the shape the TCP client
/// uses: one reader thread per server connection funneling into one
/// receiver).
///
/// Two families live here: the std re-export ([`channel::unbounded`]) for
/// control-plane traffic, and the [`channel::bounded`] variant the wire path
/// uses — a fixed-capacity queue with an explicit [`channel::ShedPolicy`]
/// so a slow replica sheds load instead of inflating memory.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, PoisonError};
    use std::time::{Duration, Instant};

    pub use std::sync::mpsc::{Receiver, RecvTimeoutError, SendError, Sender, TryRecvError};

    /// Creates an unbounded channel; the [`Sender`] side is cloneable.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }

    /// What a full bounded channel does with the next message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
    pub enum ShedPolicy {
        /// Block the sender until space frees up (or the send times out).
        /// Backpressure propagates to the producer; nothing is lost.
        #[default]
        Block,
        /// Drop the message being sent. Cheapest; prefers old queued work.
        DropNewest,
        /// Drop the oldest queued message to admit the new one. Prefers
        /// fresh work — the right default for retried request traffic,
        /// where the oldest frame is the most likely to be stale.
        DropOldest,
    }

    impl ShedPolicy {
        /// Every policy, for exhaustive test sweeps.
        pub const ALL: [ShedPolicy; 3] = [
            ShedPolicy::Block,
            ShedPolicy::DropNewest,
            ShedPolicy::DropOldest,
        ];

        /// Stable lowercase label used in metric names (`chan.shed.<label>`).
        pub fn label(&self) -> &'static str {
            match self {
                ShedPolicy::Block => "block",
                ShedPolicy::DropNewest => "drop_newest",
                ShedPolicy::DropOldest => "drop_oldest",
            }
        }
    }

    /// Result of a successful bounded send: whether anything was shed.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum SendOutcome {
        /// The message was queued; nothing was dropped.
        Sent,
        /// The channel was full and the message being sent was dropped
        /// ([`ShedPolicy::DropNewest`]).
        ShedNewest,
        /// The channel was full; the oldest queued message was dropped and
        /// the new one queued ([`ShedPolicy::DropOldest`]).
        ShedOldest,
    }

    impl SendOutcome {
        /// Returns `true` when a message was dropped.
        pub fn shed(&self) -> bool {
            !matches!(self, SendOutcome::Sent)
        }
    }

    /// Error from [`BoundedSender::send_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum SendTimeoutError<T> {
        /// The channel stayed full for the whole timeout
        /// ([`ShedPolicy::Block`] only); the message is handed back.
        Timeout(T),
        /// The receiver is gone; the message is handed back.
        Disconnected(T),
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        rx_alive: bool,
        shed: u64,
    }

    struct Shared<T> {
        inner: std::sync::Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: std::sync::atomic::AtomicUsize,
        policy: ShedPolicy,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
            self.inner.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Sending half of a bounded channel; cloneable for fan-in.
    pub struct BoundedSender<T>(Arc<Shared<T>>);

    /// Receiving half of a bounded channel (single consumer).
    pub struct BoundedReceiver<T>(Arc<Shared<T>>);

    /// Creates a bounded channel holding at most `capacity` messages
    /// (clamped to ≥ 1), governed by `policy` when full.
    pub fn bounded<T>(
        capacity: usize,
        policy: ShedPolicy,
    ) -> (BoundedSender<T>, BoundedReceiver<T>) {
        let shared = Arc::new(Shared {
            inner: std::sync::Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                rx_alive: true,
                shed: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: std::sync::atomic::AtomicUsize::new(capacity.max(1)),
            policy,
        });
        (BoundedSender(Arc::clone(&shared)), BoundedReceiver(shared))
    }

    impl<T> BoundedSender<T> {
        /// Sends `value`, applying the channel's shed policy when full.
        /// Under [`ShedPolicy::Block`] this waits indefinitely for space.
        ///
        /// # Errors
        ///
        /// Returns [`SendError`] with the value when the receiver is gone.
        pub fn send(&self, value: T) -> Result<SendOutcome, SendError<T>> {
            match self.send_with_deadline(value, None) {
                Ok(o) => Ok(o),
                Err(SendTimeoutError::Disconnected(v)) => Err(SendError(v)),
                // No deadline was given, so Timeout cannot occur.
                Err(SendTimeoutError::Timeout(_)) => unreachable!("blocking send timed out"),
            }
        }

        /// Like [`BoundedSender::send`], but a [`ShedPolicy::Block`] wait
        /// gives up after `timeout`. The non-blocking policies never wait,
        /// so the timeout only matters for `Block`.
        ///
        /// # Errors
        ///
        /// [`SendTimeoutError::Timeout`] when the channel stayed full,
        /// [`SendTimeoutError::Disconnected`] when the receiver is gone;
        /// both return the unsent value.
        pub fn send_timeout(
            &self,
            value: T,
            timeout: Duration,
        ) -> Result<SendOutcome, SendTimeoutError<T>> {
            self.send_with_deadline(value, Some(Instant::now() + timeout))
        }

        fn send_with_deadline(
            &self,
            value: T,
            deadline: Option<Instant>,
        ) -> Result<SendOutcome, SendTimeoutError<T>> {
            let shared = &*self.0;
            let mut inner = shared.lock();
            loop {
                if !inner.rx_alive {
                    return Err(SendTimeoutError::Disconnected(value));
                }
                if inner.queue.len() < shared.capacity.load(std::sync::atomic::Ordering::Relaxed) {
                    inner.queue.push_back(value);
                    shared.not_empty.notify_one();
                    return Ok(SendOutcome::Sent);
                }
                match shared.policy {
                    ShedPolicy::DropNewest => {
                        inner.shed += 1;
                        return Ok(SendOutcome::ShedNewest);
                    }
                    ShedPolicy::DropOldest => {
                        inner.queue.pop_front();
                        inner.queue.push_back(value);
                        inner.shed += 1;
                        shared.not_empty.notify_one();
                        return Ok(SendOutcome::ShedOldest);
                    }
                    ShedPolicy::Block => match deadline {
                        None => {
                            inner = shared
                                .not_full
                                .wait(inner)
                                .unwrap_or_else(PoisonError::into_inner);
                        }
                        Some(d) => {
                            let now = Instant::now();
                            if now >= d {
                                return Err(SendTimeoutError::Timeout(value));
                            }
                            let (guard, _) = shared
                                .not_full
                                .wait_timeout(inner, d - now)
                                .unwrap_or_else(PoisonError::into_inner);
                            inner = guard;
                        }
                    },
                }
            }
        }

        /// Messages this channel has shed so far.
        pub fn shed_count(&self) -> u64 {
            self.0.lock().shed
        }

        /// Current capacity (may change at runtime via
        /// [`BoundedSender::set_capacity`]).
        pub fn capacity(&self) -> usize {
            self.0.capacity.load(std::sync::atomic::Ordering::Relaxed)
        }

        /// Resizes the channel in place (clamped to ≥ 1). Growing wakes
        /// senders blocked on a full queue; shrinking never discards queued
        /// messages — the queue just stays over-full until drained below
        /// the new bound.
        pub fn set_capacity(&self, capacity: usize) {
            self.0
                .capacity
                .store(capacity.max(1), std::sync::atomic::Ordering::Relaxed);
            self.0.not_full.notify_all();
        }
    }

    impl<T> Clone for BoundedSender<T> {
        fn clone(&self) -> Self {
            self.0.lock().senders += 1;
            BoundedSender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for BoundedSender<T> {
        fn drop(&mut self) {
            let mut inner = self.0.lock();
            inner.senders -= 1;
            if inner.senders == 0 {
                // Wake a receiver blocked on an empty queue so it observes
                // the disconnect.
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> BoundedReceiver<T> {
        /// Receives the next message, blocking while the queue is empty and
        /// any sender remains. Queued messages are drained before a
        /// disconnect is reported, matching [`Receiver::recv`].
        ///
        /// # Errors
        ///
        /// Returns [`std::sync::mpsc::RecvError`] once every sender is gone
        /// and the queue is empty.
        pub fn recv(&self) -> Result<T, std::sync::mpsc::RecvError> {
            let shared = &*self.0;
            let mut inner = shared.lock();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    shared.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(std::sync::mpsc::RecvError);
                }
                inner = shared
                    .not_empty
                    .wait(inner)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Receives with a timeout; matches [`Receiver::recv_timeout`]
        /// semantics (queued messages are drained before a disconnect is
        /// reported).
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] or
        /// [`RecvTimeoutError::Disconnected`].
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let shared = &*self.0;
            let deadline = Instant::now() + timeout;
            let mut inner = shared.lock();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    shared.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = shared
                    .not_empty
                    .wait_timeout(inner, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                inner = guard;
            }
        }

        /// Non-blocking receive; matches [`Receiver::try_recv`] semantics.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] or [`TryRecvError::Disconnected`].
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let shared = &*self.0;
            let mut inner = shared.lock();
            if let Some(v) = inner.queue.pop_front() {
                shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Messages this channel has shed so far.
        pub fn shed_count(&self) -> u64 {
            self.0.lock().shed
        }
    }

    impl<T> Drop for BoundedReceiver<T> {
        fn drop(&mut self) {
            let mut inner = self.0.lock();
            inner.rx_alive = false;
            // Drop queued messages eagerly and wake blocked senders so they
            // observe the disconnect instead of waiting forever.
            inner.queue.clear();
            self.0.not_full.notify_all();
        }
    }

    /// A capacity change decided by [`AdaptiveCap::record`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum CapChange {
        /// Capacity doubled (value = new capacity).
        Grew(usize),
        /// Capacity halved back toward the base (value = new capacity).
        Shrank(usize),
    }

    /// Windowed grow/shrink policy for adaptive queue capacity.
    ///
    /// The caller reports every enqueue attempt (and whether it shed) with
    /// a timestamp; at each window boundary the policy decides:
    ///
    /// - **grow** — the window shed ≥ 5 % of attempts: capacity doubles,
    ///   capped at `max`;
    /// - **shrink** — [`AdaptiveCap::QUIET_WINDOWS_TO_SHRINK`] consecutive
    ///   windows shed nothing: capacity halves, floored at `base`.
    ///
    /// The policy is a pure function of the reported events and timestamps
    /// — time is injected, so tests are deterministic. It deliberately
    /// knows nothing about queues; the reactor applies the returned
    /// [`CapChange`] to its own outboxes and counts them under
    /// `chan.adaptive.grow` / `chan.adaptive.shrink`.
    #[derive(Debug, Clone)]
    pub struct AdaptiveCap {
        base: usize,
        max: usize,
        cap: usize,
        window: Duration,
        window_start: Option<Instant>,
        attempts: u64,
        shed: u64,
        quiet_windows: u32,
    }

    impl AdaptiveCap {
        /// Shed permille of a window's attempts at which capacity grows.
        pub const GROW_SHED_PERMILLE: u64 = 50;
        /// Consecutive shed-free windows before capacity shrinks one step.
        pub const QUIET_WINDOWS_TO_SHRINK: u32 = 4;
        /// Default evaluation window.
        pub const DEFAULT_WINDOW: Duration = Duration::from_millis(250);

        /// Creates a policy starting at `base` capacity, growing at most to
        /// `max` (both clamped to ≥ 1; `max` to ≥ `base`).
        pub fn new(base: usize, max: usize, window: Duration) -> Self {
            let base = base.max(1);
            AdaptiveCap {
                base,
                max: max.max(base),
                cap: base,
                window: window.max(Duration::from_millis(1)),
                window_start: None,
                attempts: 0,
                shed: 0,
                quiet_windows: 0,
            }
        }

        /// The capacity the policy currently prescribes.
        pub fn capacity(&self) -> usize {
            self.cap
        }

        /// Reports one enqueue attempt at `now` (`shed` = the queue was
        /// full and the message was dropped). Returns a [`CapChange`] when
        /// this attempt closes a window whose shed rate crosses a
        /// threshold.
        pub fn record(&mut self, shed: bool, now: Instant) -> Option<CapChange> {
            let start = *self.window_start.get_or_insert(now);
            self.attempts += 1;
            if shed {
                self.shed += 1;
            }
            if now.duration_since(start) < self.window {
                return None;
            }
            let (attempts, sheds) = (self.attempts, self.shed);
            self.attempts = 0;
            self.shed = 0;
            self.window_start = Some(now);
            if sheds * 1000 >= attempts * Self::GROW_SHED_PERMILLE && sheds > 0 {
                self.quiet_windows = 0;
                if self.cap < self.max {
                    self.cap = (self.cap * 2).min(self.max);
                    return Some(CapChange::Grew(self.cap));
                }
            } else if sheds == 0 {
                self.quiet_windows += 1;
                if self.quiet_windows >= Self::QUIET_WINDOWS_TO_SHRINK {
                    self.quiet_windows = 0;
                    if self.cap > self.base {
                        self.cap = (self.cap / 2).max(self.base);
                        return Some(CapChange::Shrank(self.cap));
                    }
                }
            } else {
                // Some shedding, below the grow threshold: hold steady and
                // restart the quiet streak.
                self.quiet_windows = 0;
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_recovers_from_poisoning() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // A std Mutex would now return Err(PoisonError); ours recovers.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_allows_concurrent_reads_and_recovers() {
        let l = Arc::new(RwLock::new(7u32));
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 14);
        }
        *l.write() = 8;
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*l.read(), 8);
    }

    #[test]
    fn channel_supports_fanin_timeout_and_disconnect() {
        use std::time::Duration;
        let (tx, rx) = channel::unbounded::<u32>();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(1).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 1);
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Timeout)
        ));
        drop(tx);
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Disconnected)
        ));
    }

    #[test]
    fn bounded_drop_newest_sheds_the_incoming_message() {
        use channel::{bounded, SendOutcome, ShedPolicy};
        let (tx, rx) = bounded::<u32>(2, ShedPolicy::DropNewest);
        assert_eq!(tx.send(1).unwrap(), SendOutcome::Sent);
        assert_eq!(tx.send(2).unwrap(), SendOutcome::Sent);
        assert_eq!(tx.send(3).unwrap(), SendOutcome::ShedNewest);
        assert_eq!(tx.shed_count(), 1);
        // The queue kept the oldest two.
        assert_eq!(rx.try_recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert!(matches!(rx.try_recv(), Err(channel::TryRecvError::Empty)));
    }

    #[test]
    fn bounded_drop_oldest_sheds_the_queued_head() {
        use channel::{bounded, SendOutcome, ShedPolicy};
        let (tx, rx) = bounded::<u32>(2, ShedPolicy::DropOldest);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(tx.send(3).unwrap(), SendOutcome::ShedOldest);
        assert_eq!(rx.shed_count(), 1);
        // The queue kept the freshest two.
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert_eq!(rx.try_recv().unwrap(), 3);
    }

    #[test]
    fn bounded_block_applies_backpressure_and_times_out() {
        use channel::{bounded, SendOutcome, SendTimeoutError, ShedPolicy};
        use std::time::Duration;
        let (tx, rx) = bounded::<u32>(1, ShedPolicy::Block);
        tx.send(1).unwrap();
        // Full queue + nobody draining: the bounded wait gives the value back.
        assert!(matches!(
            tx.send_timeout(2, Duration::from_millis(20)),
            Err(SendTimeoutError::Timeout(2))
        ));
        assert_eq!(tx.shed_count(), 0, "a timed-out Block send is not a shed");
        // With a consumer draining, the blocking send completes.
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || tx2.send(3).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 1);
        assert_eq!(h.join().unwrap(), SendOutcome::Sent);
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 3);
    }

    #[test]
    fn bounded_reports_disconnects_both_ways() {
        use channel::{bounded, SendTimeoutError, ShedPolicy};
        use std::time::Duration;
        // Receiver gone: sends fail, including a Block send mid-wait.
        let (tx, rx) = bounded::<u32>(1, ShedPolicy::Block);
        tx.send(1).unwrap();
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || tx2.send_timeout(2, Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(30));
        drop(rx);
        assert!(matches!(
            h.join().unwrap(),
            Err(SendTimeoutError::Disconnected(2))
        ));
        assert!(tx.send(3).is_err());

        // Senders gone: queue drains, then Disconnected.
        let (tx, rx) = bounded::<u32>(4, ShedPolicy::DropNewest);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 7);
        assert!(rx.recv().is_err());
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(channel::RecvTimeoutError::Disconnected)
        ));
    }

    #[test]
    fn bounded_capacity_can_grow_and_shrink_at_runtime() {
        use channel::{bounded, SendOutcome, ShedPolicy};
        let (tx, rx) = bounded::<u32>(1, ShedPolicy::DropNewest);
        tx.send(1).unwrap();
        assert_eq!(tx.send(2).unwrap(), SendOutcome::ShedNewest);
        tx.set_capacity(3);
        assert_eq!(tx.capacity(), 3);
        assert_eq!(tx.send(3).unwrap(), SendOutcome::Sent);
        assert_eq!(tx.send(4).unwrap(), SendOutcome::Sent);
        // Shrinking below the queue length discards nothing; the queue
        // drains down to the new bound.
        tx.set_capacity(1);
        assert_eq!(tx.send(5).unwrap(), SendOutcome::ShedNewest);
        assert_eq!(rx.try_recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 3);
        assert_eq!(rx.try_recv().unwrap(), 4);
    }

    #[test]
    fn bounded_growing_capacity_unblocks_a_blocked_sender() {
        use channel::{bounded, ShedPolicy};
        use std::time::Duration;
        let (tx, rx) = bounded::<u32>(1, ShedPolicy::Block);
        tx.send(1).unwrap();
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || tx2.send(2));
        std::thread::sleep(Duration::from_millis(30));
        tx.set_capacity(2);
        h.join().unwrap().unwrap();
        assert_eq!(rx.try_recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
    }

    #[test]
    fn adaptive_cap_grows_on_sustained_sheds_up_to_max() {
        use channel::{AdaptiveCap, CapChange};
        use std::time::{Duration, Instant};
        let w = Duration::from_millis(100);
        let mut pol = AdaptiveCap::new(4, 16, w);
        assert_eq!(pol.capacity(), 4);
        let t0 = Instant::now();
        // Window 1: 50% shed rate → grow to 8.
        for i in 0..9 {
            assert_eq!(pol.record(i % 2 == 0, t0 + w.mul_f64(0.1 * i as f64)), None);
        }
        assert_eq!(pol.record(true, t0 + w), Some(CapChange::Grew(8)));
        // Window 2: all sheds → grow to the 16 ceiling; window 3: capped.
        assert_eq!(pol.record(true, t0 + w * 2), Some(CapChange::Grew(16)));
        assert_eq!(pol.record(true, t0 + w * 3), None);
        assert_eq!(pol.capacity(), 16);
    }

    #[test]
    fn adaptive_cap_shrinks_only_after_consecutive_quiet_windows() {
        use channel::{AdaptiveCap, CapChange};
        use std::time::{Duration, Instant};
        let w = Duration::from_millis(100);
        let mut pol = AdaptiveCap::new(4, 16, w);
        let t0 = Instant::now();
        pol.record(true, t0);
        assert_eq!(pol.record(true, t0 + w), Some(CapChange::Grew(8)));
        // Three quiet windows: no change yet; the fourth shrinks.
        for k in 2..5u32 {
            assert_eq!(pol.record(false, t0 + w * k), None);
        }
        assert_eq!(pol.record(false, t0 + w * 5), Some(CapChange::Shrank(4)));
        // Already at base: further quiet windows do nothing.
        for k in 6..12u32 {
            assert_eq!(pol.record(false, t0 + w * k), None, "window {k}");
        }
        assert_eq!(pol.capacity(), 4);
    }

    #[test]
    fn adaptive_cap_sub_threshold_shedding_holds_steady() {
        use channel::AdaptiveCap;
        use std::time::{Duration, Instant};
        let w = Duration::from_millis(100);
        let mut pol = AdaptiveCap::new(4, 16, w);
        let t0 = Instant::now();
        // 1 shed in 100 attempts = 1% — below the 5% grow threshold, and
        // it also resets the quiet streak so no shrink can sneak in.
        for round in 1..10u32 {
            for i in 0..99 {
                assert_eq!(
                    pol.record(i == 0, t0 + w * (round - 1) + w.mul_f64(0.009 * i as f64)),
                    None
                );
            }
            assert_eq!(pol.record(false, t0 + w * round), None, "round {round}");
        }
        assert_eq!(pol.capacity(), 4);
    }

    #[test]
    fn shed_policy_labels_are_stable() {
        use channel::ShedPolicy;
        let labels: Vec<&str> = ShedPolicy::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels, ["block", "drop_newest", "drop_oldest"]);
        assert_eq!(ShedPolicy::default(), ShedPolicy::Block);
    }
}
