//! Logical timestamps ("tags").
//!
//! A tag is the pair `(num, writer)` from the paper's pseudocode (Fig. 1,
//! line 6: `t_w = (t.num + 1, w)`). Tags are totally ordered first by the
//! number and then by the writer id, which is how two concurrent writes that
//! never hear of each other are tie-broken (Lemma 2, Case 2).

use std::fmt;

use crate::codec::{Wire, WireError, WireReader};
use crate::ids::WriterId;

/// A logical timestamp `(num, writer)` attached to every written value.
///
/// # Examples
///
/// ```
/// use safereg_common::{tag::Tag, ids::WriterId};
///
/// let a = Tag::new(3, WriterId(1));
/// let b = Tag::new(3, WriterId(2));
/// assert!(b > a, "equal numbers tie-break on writer id");
/// assert!(a.next_for(WriterId(0)) > b, "next increments the number");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tag {
    /// Monotone sequence number; compared first.
    pub num: u64,
    /// Writer that created the tag; breaks ties between concurrent writes.
    pub writer: WriterId,
}

impl Tag {
    /// The initial tag `t_0` paired with the register's default value `v_0`.
    ///
    /// It is smaller than every tag a real write can produce because writes
    /// always increment the number (Fig. 1, line 6).
    pub const ZERO: Tag = Tag {
        num: 0,
        writer: WriterId(0),
    };

    /// Creates a tag from its parts.
    pub fn new(num: u64, writer: WriterId) -> Self {
        Tag { num, writer }
    }

    /// The tag a write by `writer` creates after observing `self` as the
    /// selected `(f+1)`-th highest tag (Fig. 1, line 6).
    #[must_use]
    pub fn next_for(&self, writer: WriterId) -> Tag {
        Tag {
            num: self.num + 1,
            writer,
        }
    }

    /// Returns `true` for the initial tag.
    pub fn is_initial(&self) -> bool {
        *self == Tag::ZERO
    }
}

impl Default for Tag {
    fn default() -> Self {
        Tag::ZERO
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.num, self.writer)
    }
}

impl Wire for Tag {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        self.num.encode_to(buf);
        self.writer.encode_to(buf);
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Tag {
            num: u64::decode_from(r)?,
            writer: WriterId::decode_from(r)?,
        })
    }

    fn wire_len(&self) -> usize {
        8 + 2
    }
}

/// Selects the `(f+1)`-th highest tag from a set of responses (Fig. 1,
/// line 4).
///
/// With at most `f` Byzantine servers, at most `f` of the reported tags can
/// be fabricated arbitrarily high, so the `(f+1)`-th highest is at most the
/// highest tag held by a correct server — a single liar cannot inflate the
/// register's tag space (ablation A2 demonstrates what goes wrong if `max`
/// is used instead).
///
/// Returns [`Tag::ZERO`] when `tags` is empty, which cannot happen in the
/// protocol (the caller has at least `n - f ≥ f + 1` responses).
///
/// # Examples
///
/// ```
/// use safereg_common::{tag::{Tag, select_f1_highest}, ids::WriterId};
///
/// let honest = Tag::new(5, WriterId(1));
/// let inflated = Tag::new(u64::MAX, WriterId(9)); // Byzantine
/// let tags = vec![inflated, honest, Tag::new(4, WriterId(2))];
/// assert_eq!(select_f1_highest(&tags, 1), honest);
/// ```
pub fn select_f1_highest(tags: &[Tag], f: usize) -> Tag {
    let mut sorted: Vec<Tag> = tags.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    sorted
        .get(f)
        .copied()
        .unwrap_or_else(|| sorted.last().copied().unwrap_or(Tag::ZERO))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_num_then_writer() {
        let a = Tag::new(1, WriterId(9));
        let b = Tag::new(2, WriterId(0));
        assert!(b > a);
        assert!(Tag::new(2, WriterId(1)) > b);
        assert!(Tag::ZERO < a);
    }

    #[test]
    fn next_for_strictly_increases() {
        let t = Tag::new(7, WriterId(3));
        let n = t.next_for(WriterId(0));
        assert!(n > t);
        assert_eq!(n.num, 8);
        assert_eq!(n.writer, WriterId(0));
    }

    #[test]
    fn initial_tag_is_minimal_and_default() {
        assert!(Tag::ZERO.is_initial());
        assert_eq!(Tag::default(), Tag::ZERO);
        assert!(!Tag::new(0, WriterId(1)).is_initial());
    }

    #[test]
    fn f1_selection_discards_f_inflated_tags() {
        let honest_max = Tag::new(10, WriterId(1));
        let mut tags = vec![
            Tag::new(u64::MAX, WriterId(8)),
            Tag::new(u64::MAX - 1, WriterId(9)),
            honest_max,
            Tag::new(9, WriterId(2)),
            Tag::new(2, WriterId(3)),
        ];
        assert_eq!(select_f1_highest(&tags, 2), honest_max);
        // With f = 0 the max is selected.
        tags.sort();
        assert_eq!(select_f1_highest(&tags, 0), Tag::new(u64::MAX, WriterId(8)));
    }

    #[test]
    fn f1_selection_handles_short_inputs() {
        assert_eq!(select_f1_highest(&[], 1), Tag::ZERO);
        let only = Tag::new(4, WriterId(1));
        assert_eq!(select_f1_highest(&[only], 3), only);
    }

    #[test]
    fn wire_roundtrip() {
        let t = Tag::new(42, WriterId(7));
        let buf = t.to_bytes();
        assert_eq!(Tag::from_bytes(&buf).unwrap(), t);
        assert_eq!(t.wire_len(), buf.len());
    }

    #[test]
    fn display_shows_both_parts() {
        assert_eq!(Tag::new(3, WriterId(1)).to_string(), "(3,w1)");
    }
}
