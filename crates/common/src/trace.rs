//! Wire-propagated causal trace context.
//!
//! Every frame on the KV and register wire paths carries a fixed 16-byte
//! [`TraceCtx`] right next to the routing fields (shard id, envelope head)
//! and under the frame MAC, so a Byzantine relay can no more forge a trace
//! than a payload. The context is deliberately tiny:
//!
//! | field    | bytes | meaning                                          |
//! |----------|-------|--------------------------------------------------|
//! | `id`     | 8     | trace id; `0` = unsampled, all span emission off |
//! | `op_seq` | 4     | low bits of the client's operation counter       |
//! | `phase`  | 1     | [`Phase`] discriminant stamped by the sender     |
//! | `hop`    | 1     | 0 at the client, +1 per process boundary         |
//! | reserved | 2     | must be zero; room for future flags              |
//!
//! Sampling is **head-based**: the decision is made once, at the client
//! that invokes the operation ([`TraceCtx::for_op`]), by hashing the
//! operation id against `TransportConfig::trace_sample` (permille). Every
//! downstream site then asks one branch — [`TraceCtx::is_sampled`] — before
//! doing any tracing work, so the always-on cost of the layer is one
//! compare plus the 16 wire bytes.
//!
//! The trace id is *derived*, not random: the same `(client, seq)` always
//! hashes to the same id, which is how the bench harness correlates a
//! checker violation (which names an `OpId`) back to the spans of the
//! offending operation without a lookup table.

use crate::codec::{BytesReader, Wire, WireError, WireReader};
use crate::ids::ClientId;
use crate::msg::OpId;

/// Phase tag a sender stamps into the context before putting it on the
/// wire; names one edge of the client → server → client round trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Phase {
    /// Client-side: the whole logical operation (root span).
    ClientOp = 0,
    /// Client-side: one RPC attempt against one server.
    Rpc = 1,
    /// Server-side: frame read + decode + MAC verification.
    ServerDecode = 2,
    /// Server-side: waiting on the shard group's mutex.
    MutexWait = 3,
    /// Server-side: protocol dispatch inside the group lock.
    Dispatch = 4,
    /// Server-side: reply sealed and queued on the connection outbox.
    Outbox = 5,
    /// Reply frame travelling back to the client.
    Reply = 6,
    /// Client-side: backoff sleep between retry passes.
    Backoff = 7,
}

impl Phase {
    /// All phases, in pipeline order (stable for schema dumps).
    pub const ALL: [Phase; 8] = [
        Phase::ClientOp,
        Phase::Rpc,
        Phase::ServerDecode,
        Phase::MutexWait,
        Phase::Dispatch,
        Phase::Outbox,
        Phase::Reply,
        Phase::Backoff,
    ];

    /// Stable snake_case name used in metric names and JSONL dumps.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::ClientOp => "client_op",
            Phase::Rpc => "rpc",
            Phase::ServerDecode => "server_decode",
            Phase::MutexWait => "mutex_wait",
            Phase::Dispatch => "dispatch",
            Phase::Outbox => "outbox",
            Phase::Reply => "reply",
            Phase::Backoff => "backoff",
        }
    }

    /// Decodes a wire discriminant; unknown values come back as `None`
    /// (forward compatibility — an old reader skips spans it cannot name).
    pub fn from_u8(v: u8) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| *p as u8 == v)
    }
}

/// The compact causal context carried in every wire frame.
///
/// `Copy` and 16 bytes on the wire ([`TraceCtx::WIRE_LEN`]); see the module
/// docs for the layout and the sampling rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    /// Trace id; `0` means unsampled and suppresses all span emission.
    pub id: u64,
    /// Low 32 bits of the client's operation counter.
    pub op_seq: u32,
    /// [`Phase`] discriminant stamped by the sender of this frame.
    pub phase: u8,
    /// Process-boundary hop count: 0 at the invoking client.
    pub hop: u8,
}

impl TraceCtx {
    /// Encoded size: 8 (id) + 4 (op_seq) + 1 (phase) + 1 (hop) + 2 reserved.
    pub const WIRE_LEN: usize = 16;

    /// The unsampled context: all-zero, one compare to skip tracing.
    pub const NONE: TraceCtx = TraceCtx {
        id: 0,
        op_seq: 0,
        phase: 0,
        hop: 0,
    };

    /// Whether this operation was head-sampled; every tracing site gates
    /// on this single branch.
    #[inline]
    pub fn is_sampled(&self) -> bool {
        self.id != 0
    }

    /// Deterministic trace id for an operation: same `(client, seq)` →
    /// same id, never zero. This is the correlation key between checker
    /// violations (which carry an [`OpId`]) and recorded spans.
    pub fn derive_id(op: &OpId) -> u64 {
        let client_word = match op.client {
            ClientId::Reader(r) => u64::from(r.0),
            ClientId::Writer(w) => 0x1_0000 | u64::from(w.0),
        };
        mix(client_word ^ mix(op.seq ^ 0x9E37_79B9_7F4A_7C15)) | 1
    }

    /// Head-based sampling decision plus root-context construction:
    /// returns [`TraceCtx::NONE`] unless the op's hash falls inside
    /// `sample_permille`/1000 (so `1000` traces everything, `0` nothing).
    pub fn for_op(op: &OpId, sample_permille: u16) -> TraceCtx {
        let id = TraceCtx::derive_id(op);
        let chosen = sample_permille >= 1000
            || (sample_permille > 0 && id % 1000 < u64::from(sample_permille));
        if !chosen {
            return TraceCtx::NONE;
        }
        TraceCtx {
            id,
            op_seq: op.seq as u32,
            phase: Phase::ClientOp as u8,
            hop: 0,
        }
    }

    /// Copy of this context re-stamped with `phase` (same id/seq/hop).
    #[inline]
    pub fn with_phase(self, phase: Phase) -> TraceCtx {
        TraceCtx {
            phase: phase as u8,
            ..self
        }
    }

    /// Copy of this context one process boundary later: `hop + 1`
    /// (saturating) and re-stamped with `phase`.
    #[inline]
    pub fn hopped(self, phase: Phase) -> TraceCtx {
        TraceCtx {
            phase: phase as u8,
            hop: self.hop.saturating_add(1),
            ..self
        }
    }
}

/// SplitMix64 finalizer — full-avalanche mixing for id derivation.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Wire for TraceCtx {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        self.id.encode_to(buf);
        self.op_seq.encode_to(buf);
        self.phase.encode_to(buf);
        self.hop.encode_to(buf);
        0u16.encode_to(buf); // reserved, must be zero
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let ctx = TraceCtx {
            id: u64::decode_from(r)?,
            op_seq: u32::decode_from(r)?,
            phase: u8::decode_from(r)?,
            hop: u8::decode_from(r)?,
        };
        let _reserved = u16::decode_from(r)?;
        Ok(ctx)
    }

    fn decode_borrowed(r: &mut BytesReader<'_>) -> Result<Self, WireError> {
        let ctx = TraceCtx {
            id: u64::decode_borrowed(r)?,
            op_seq: u32::decode_borrowed(r)?,
            phase: u8::decode_borrowed(r)?,
            hop: u8::decode_borrowed(r)?,
        };
        let _reserved = u16::decode_borrowed(r)?;
        Ok(ctx)
    }

    fn wire_len(&self) -> usize {
        TraceCtx::WIRE_LEN
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ReaderId, WriterId};

    #[test]
    fn wire_layout_is_exactly_sixteen_bytes() {
        let ctx = TraceCtx {
            id: 0xDEAD_BEEF_0BAD_CAFE,
            op_seq: 42,
            phase: Phase::Dispatch as u8,
            hop: 3,
        };
        let mut buf = Vec::new();
        ctx.encode_to(&mut buf);
        assert_eq!(buf.len(), TraceCtx::WIRE_LEN);
        assert_eq!(ctx.wire_len(), TraceCtx::WIRE_LEN);
        let mut r = WireReader::new(&buf);
        assert_eq!(TraceCtx::decode_from(&mut r).unwrap(), ctx);
        assert!(r.is_empty());
        // Borrowing decode consumes exactly the same bytes.
        let bytes = crate::buf::Bytes::from(buf);
        assert_eq!(TraceCtx::from_bytes(&bytes).unwrap(), ctx);
    }

    #[test]
    fn none_is_all_zero_and_unsampled() {
        let mut buf = Vec::new();
        TraceCtx::NONE.encode_to(&mut buf);
        assert_eq!(buf, vec![0u8; TraceCtx::WIRE_LEN]);
        assert!(!TraceCtx::NONE.is_sampled());
    }

    #[test]
    fn derived_ids_are_deterministic_distinct_and_nonzero() {
        let a = OpId::new(ReaderId(1), 7);
        let b = OpId::new(ReaderId(2), 7);
        let c = OpId::new(WriterId(1), 7);
        assert_eq!(TraceCtx::derive_id(&a), TraceCtx::derive_id(&a));
        assert_ne!(TraceCtx::derive_id(&a), TraceCtx::derive_id(&b));
        assert_ne!(
            TraceCtx::derive_id(&b),
            TraceCtx::derive_id(&c),
            "reader and writer with equal index must not collide"
        );
        for seq in 0..1000 {
            assert_ne!(TraceCtx::derive_id(&OpId::new(ReaderId(0), seq)), 0);
        }
    }

    #[test]
    fn sampling_respects_permille_bounds() {
        let op = OpId::new(ReaderId(3), 12);
        assert!(!TraceCtx::for_op(&op, 0).is_sampled(), "0 samples nothing");
        assert!(
            TraceCtx::for_op(&op, 1000).is_sampled(),
            "1000 samples everything"
        );
        // A mid-range rate samples a plausible fraction of a large op set.
        let hits = (0..10_000u64)
            .filter(|seq| TraceCtx::for_op(&OpId::new(ReaderId(0), *seq), 100).is_sampled())
            .count();
        assert!(
            (500..1500).contains(&hits),
            "100‰ sampled {hits}/10000, expected ≈1000"
        );
    }

    #[test]
    fn hopping_increments_and_restamps() {
        let op = OpId::new(WriterId(9), 1);
        let root = TraceCtx::for_op(&op, 1000);
        assert_eq!(root.hop, 0);
        assert_eq!(root.phase, Phase::ClientOp as u8);
        let at_server = root.hopped(Phase::Dispatch);
        assert_eq!(at_server.hop, 1);
        assert_eq!(at_server.phase, Phase::Dispatch as u8);
        assert_eq!(at_server.id, root.id, "hops never change the trace id");
        assert_eq!(
            root.with_phase(Phase::Rpc).hop,
            0,
            "with_phase keeps the hop"
        );
    }

    #[test]
    fn phase_names_roundtrip_and_stay_stable() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_u8(p as u8), Some(p));
        }
        assert_eq!(Phase::from_u8(200), None);
        assert_eq!(Phase::MutexWait.as_str(), "mutex_wait");
        assert_eq!(Phase::ClientOp.as_str(), "client_op");
    }
}
