//! Register values.
//!
//! The paper's value domain `V` is opaque; we model a value as an immutable
//! byte string. [`Value`] wraps [`crate::buf::Bytes`] so cloning a value
//! (which replication does `n` times per write) is a cheap reference-count
//! bump. The distinguished initial value `v_0` is the empty byte string.

use std::fmt;

use crate::buf::Bytes;
use crate::codec::{BytesReader, Wire, WireError, WireReader};

/// An immutable register value (an element of the paper's domain `V`).
///
/// # Examples
///
/// ```
/// use safereg_common::value::Value;
///
/// let v = Value::from("hello");
/// assert_eq!(v.len(), 5);
/// assert!(Value::initial().is_initial());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Value(Bytes);

impl Value {
    /// The register's distinguished default value `v_0` (§II-B).
    pub fn initial() -> Self {
        Value(Bytes::new())
    }

    /// Creates a value from raw bytes.
    pub fn new(bytes: impl Into<Bytes>) -> Self {
        Value(bytes.into())
    }

    /// Borrows the underlying bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Borrows the underlying [`Bytes`] buffer, so callers can take O(1)
    /// clones/slices of the value's allocation (the encode-once wire path
    /// does this to avoid re-copying payloads).
    pub fn bytes(&self) -> &Bytes {
        &self.0
    }

    /// Extracts the underlying [`Bytes`].
    pub fn into_inner(self) -> Bytes {
        self.0
    }

    /// Length of the value in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` when the value is the initial value `v_0`.
    ///
    /// The initial value is the empty byte string, so this is equivalent to
    /// emptiness.
    pub fn is_initial(&self) -> bool {
        self.0.is_empty()
    }

    /// Returns `true` when the value holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value(Bytes::copy_from_slice(s.as_bytes()))
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value(Bytes::from(v))
    }
}

impl From<&[u8]> for Value {
    fn from(v: &[u8]) -> Self {
        Value(Bytes::copy_from_slice(v))
    }
}

impl From<Bytes> for Value {
    fn from(b: Bytes) -> Self {
        Value(b)
    }
}

impl AsRef<[u8]> for Value {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Display for Value {
    /// Shows printable ASCII directly and falls back to hex, truncated to
    /// keep traces readable.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_initial() {
            return write!(f, "v0");
        }
        const LIMIT: usize = 16;
        let shown = &self.0[..self.0.len().min(LIMIT)];
        if shown.iter().all(|b| b.is_ascii_graphic() || *b == b' ') {
            write!(f, "\"{}\"", String::from_utf8_lossy(shown))?;
        } else {
            write!(f, "0x")?;
            for b in shown {
                write!(f, "{b:02x}")?;
            }
        }
        if self.0.len() > LIMIT {
            write!(f, "..({}B)", self.0.len())?;
        }
        Ok(())
    }
}

impl Wire for Value {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        self.0.encode_to(buf);
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Value(Bytes::decode_from(r)?))
    }

    fn decode_borrowed(r: &mut BytesReader<'_>) -> Result<Self, WireError> {
        Ok(Value(Bytes::decode_borrowed(r)?))
    }

    fn wire_len(&self) -> usize {
        4 + self.0.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_value_is_empty_and_default() {
        assert!(Value::initial().is_initial());
        assert_eq!(Value::default(), Value::initial());
        assert_eq!(Value::initial().len(), 0);
    }

    #[test]
    fn conversions_preserve_bytes() {
        let v = Value::from("abc");
        assert_eq!(v.as_bytes(), b"abc");
        assert_eq!(Value::from(vec![1, 2, 3]).as_ref(), &[1, 2, 3]);
        assert_eq!(Value::from(&b"xy"[..]).len(), 2);
    }

    #[test]
    fn clone_is_shallow() {
        let v = Value::from(vec![0u8; 1024]);
        let w = v.clone();
        // Bytes clones share the same backing allocation.
        assert_eq!(v.as_bytes().as_ptr(), w.as_bytes().as_ptr());
    }

    #[test]
    fn display_handles_ascii_hex_and_truncation() {
        assert_eq!(Value::initial().to_string(), "v0");
        assert_eq!(Value::from("hi").to_string(), "\"hi\"");
        assert_eq!(Value::from(vec![0xAB, 0x00]).to_string(), "0xab00");
        let long = Value::from(vec![b'a'; 20]);
        assert!(long.to_string().ends_with("..(20B)"));
    }

    #[test]
    fn wire_roundtrip() {
        let v = Value::from("roundtrip");
        assert_eq!(Value::from_bytes(&v.to_bytes()).unwrap(), v);
        assert_eq!(v.wire_len(), 4 + 9);
    }
}
