//! Property suite for the zero-copy wire path: for every `Envelope` variant,
//! the borrowing decode ([`Wire::from_bytes`]) must be byte-for-byte
//! identical to the copying decode ([`Wire::decode_from`]), the
//! `encode_parts` head/tail split must concatenate to the full encoding, and
//! payload fields decoded borrowingly must alias the input buffer (no copy).
//!
//! DetRng-driven in the PR 1 style: fixed seeds, fixed case counts, failures
//! reproducible from the case index.

use safereg_common::buf::Bytes;
use safereg_common::codec::{payload_bytes_copied, Wire, WireError, WireReader};
use safereg_common::ids::{ClientId, ReaderId, ServerId, WriterId};
use safereg_common::msg::{
    BroadcastId, ClientToServer, CodedElement, Envelope, Message, OpId, Payload, PeerMessage,
    ServerToClient,
};
use safereg_common::rng::DetRng;
use safereg_common::tag::Tag;
use safereg_common::value::Value;

fn copying_decode<T: Wire>(buf: &[u8]) -> Result<T, WireError> {
    let mut r = WireReader::new(buf);
    let v = T::decode_from(&mut r)?;
    if !r.is_empty() {
        return Err(WireError::TrailingBytes {
            count: r.remaining(),
        });
    }
    Ok(v)
}

fn random_op(rng: &mut DetRng) -> OpId {
    let client: ClientId = if rng.index(2) == 0 {
        WriterId(rng.index(8) as u16).into()
    } else {
        ReaderId(rng.index(8) as u16).into()
    };
    OpId::new(client, rng.next_u64())
}

fn random_tag(rng: &mut DetRng) -> Tag {
    Tag::new(rng.next_u64() >> 1, WriterId(rng.index(8) as u16))
}

fn random_payload(rng: &mut DetRng) -> Payload {
    let len = rng.index(200);
    let mut data = vec![0u8; len];
    rng.fill_bytes(&mut data);
    if rng.index(2) == 0 {
        Payload::Full(Value::from(data))
    } else {
        Payload::Coded(CodedElement {
            index: rng.index(16) as u16,
            value_len: (len * 3) as u32,
            data: Bytes::from(data),
        })
    }
}

/// One envelope per message variant, fields randomized per call.
fn envelope_zoo(rng: &mut DetRng) -> Vec<Envelope> {
    let op = random_op(rng);
    let tag = random_tag(rng);
    let writer = WriterId(rng.index(8) as u16);
    let server = ServerId(rng.index(11) as u16);
    let reader = ReaderId(rng.index(8) as u16);
    let bid = BroadcastId {
        origin: ClientId::Writer(writer),
        seq: rng.next_u64(),
    };
    let mut zoo = Vec::new();
    for msg in [
        ClientToServer::QueryTag { op },
        ClientToServer::PutData {
            op,
            tag,
            payload: random_payload(rng),
        },
        ClientToServer::QueryData { op },
        ClientToServer::QueryHistory { op, above: tag },
        ClientToServer::QueryTagList { op },
        ClientToServer::QueryValueAt { op, tag },
        ClientToServer::QueryDataSub { op },
        ClientToServer::ReadComplete { op },
    ] {
        zoo.push(Envelope::new(writer, server, msg));
    }
    for msg in [
        ServerToClient::TagResp { op, tag },
        ServerToClient::PutAck { op, tag },
        ServerToClient::DataResp {
            op,
            tag,
            payload: random_payload(rng),
        },
        ServerToClient::HistoryResp {
            op,
            entries: vec![
                (random_tag(rng), random_payload(rng)),
                (random_tag(rng), random_payload(rng)),
            ],
        },
        ServerToClient::TagListResp {
            op,
            tags: vec![random_tag(rng), random_tag(rng)],
        },
        ServerToClient::ValueAtResp {
            op,
            tag,
            payload: Some(random_payload(rng)),
        },
        ServerToClient::ValueAtResp {
            op,
            tag,
            payload: None,
        },
    ] {
        zoo.push(Envelope::new(server, reader, msg));
    }
    for msg in [
        PeerMessage::RbEcho {
            bid,
            tag,
            payload: random_payload(rng),
        },
        PeerMessage::RbReady {
            bid,
            tag,
            payload: random_payload(rng),
        },
    ] {
        zoo.push(Envelope::new(server, ServerId(rng.index(11) as u16), msg));
    }
    zoo
}

/// Byte range of `buf`'s backing slice, for alias checks.
fn span(b: &Bytes) -> (usize, usize) {
    let p = b.as_ref().as_ptr() as usize;
    (p, p + b.len())
}

#[test]
fn borrowing_decode_matches_copying_decode_for_every_variant() {
    let mut rng = DetRng::seed_from(0x000B_0220_5EED);
    for case in 0..128u32 {
        for env in envelope_zoo(&mut rng) {
            let buf = env.to_bytes();
            let borrowed = Envelope::from_bytes(&buf)
                .unwrap_or_else(|e| panic!("case {case}: borrowing decode failed: {e} ({env:?})"));
            let copied = copying_decode::<Envelope>(&buf)
                .unwrap_or_else(|e| panic!("case {case}: copying decode failed: {e}"));
            assert_eq!(borrowed, copied, "case {case}: decode paths disagree");
            assert_eq!(borrowed, env, "case {case}: roundtrip changed the envelope");
            // Canonical re-encode from both results.
            assert_eq!(borrowed.to_bytes(), buf, "case {case}");
        }
    }
}

#[test]
fn encode_parts_concats_to_the_full_encoding_for_every_variant() {
    let mut rng = DetRng::seed_from(0x5EA1_2205);
    for case in 0..128u32 {
        for env in envelope_zoo(&mut rng) {
            let full = env.to_bytes();
            let (head, tail) = env.encode_parts();
            let mut joined = head;
            if let Some(t) = &tail {
                joined.extend_from_slice(t);
            }
            assert_eq!(
                Bytes::from(joined),
                full,
                "case {case}: head++tail != to_bytes for {env:?}"
            );
        }
    }
}

#[test]
fn borrowed_payloads_alias_the_frame_and_copy_nothing() {
    let mut rng = DetRng::seed_from(0x0C0F_FEE0);
    for case in 0..64u32 {
        for env in envelope_zoo(&mut rng) {
            let buf = env.to_bytes();
            let (lo, hi) = span(&buf);
            let before = payload_bytes_copied();
            let decoded = Envelope::from_bytes(&buf).unwrap();
            assert_eq!(
                payload_bytes_copied(),
                before,
                "case {case}: borrowing decode moved payload bytes for {env:?}"
            );
            // Every payload in the decoded envelope points into `buf`.
            let check = |p: &Payload| {
                let b = match p {
                    Payload::Full(v) => v.bytes(),
                    Payload::Coded(c) => &c.data,
                };
                if b.is_empty() {
                    return;
                }
                let (plo, phi) = span(b);
                assert!(
                    lo <= plo && phi <= hi,
                    "case {case}: decoded payload does not alias the frame"
                );
            };
            match &decoded.msg {
                Message::ToServer(ClientToServer::PutData { payload, .. }) => check(payload),
                Message::ToClient(ServerToClient::DataResp { payload, .. }) => check(payload),
                Message::ToClient(ServerToClient::HistoryResp { entries, .. }) => {
                    entries.iter().for_each(|(_, p)| check(p))
                }
                Message::ToClient(ServerToClient::ValueAtResp {
                    payload: Some(p), ..
                }) => check(p),
                Message::Peer(
                    PeerMessage::RbEcho { payload, .. } | PeerMessage::RbReady { payload, .. },
                ) => check(payload),
                _ => {}
            }
        }
    }
}
