//! Fuzz-style hardening of the wire codec: decoding attacker-controlled
//! bytes must never panic, never over-allocate, and always either produce
//! a value that re-encodes faithfully or return a structured error.

use proptest::collection::vec;
use proptest::prelude::*;

use safereg_common::codec::Wire;
use safereg_common::msg::{ClientToServer, Envelope, Message, ServerToClient};
use safereg_common::tag::Tag;
use safereg_common::value::Value;

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn arbitrary_bytes_never_panic_any_decoder(data in vec(any::<u8>(), 0..256)) {
        // Every decoder must be total over arbitrary input.
        let _ = ClientToServer::from_wire_bytes(&data);
        let _ = ServerToClient::from_wire_bytes(&data);
        let _ = Envelope::from_wire_bytes(&data);
        let _ = Message::from_wire_bytes(&data);
        let _ = Tag::from_wire_bytes(&data);
        let _ = Value::from_wire_bytes(&data);
    }

    #[test]
    fn successful_decodes_reencode_identically(data in vec(any::<u8>(), 0..256)) {
        // Round-trip stability: whatever decodes must encode back to the
        // same bytes (the format has a canonical encoding).
        if let Ok(msg) = Message::from_wire_bytes(&data) {
            prop_assert_eq!(msg.to_wire_bytes(), data);
        }
    }

    #[test]
    fn truncations_of_valid_messages_fail_cleanly(
        num in any::<u64>(),
        cut in 0usize..40,
    ) {
        use safereg_common::ids::{ReaderId, WriterId};
        use safereg_common::msg::{OpId, Payload};
        let msg = ServerToClient::DataResp {
            op: OpId::new(ReaderId(3), num),
            tag: Tag::new(num, WriterId(1)),
            payload: Payload::Full(Value::from("payload bytes")),
        };
        let bytes = msg.to_wire_bytes();
        let cut = cut.min(bytes.len().saturating_sub(1));
        let truncated = &bytes[..cut];
        prop_assert!(ServerToClient::from_wire_bytes(truncated).is_err());
    }

    #[test]
    fn bit_flips_never_roundtrip_to_a_different_op(
        num in any::<u64>(),
        flip_byte in 0usize..30,
        flip_bit in 0u8..8,
    ) {
        use safereg_common::ids::ReaderId;
        use safereg_common::msg::OpId;
        let msg = ClientToServer::QueryData { op: OpId::new(ReaderId(1), num) };
        let mut bytes = msg.to_wire_bytes();
        let idx = flip_byte.min(bytes.len() - 1);
        bytes[idx] ^= 1 << flip_bit;
        // The flip either fails to decode or decodes to exactly the bytes
        // sent (no silent normalization that could confuse op matching).
        if let Ok(decoded) = ClientToServer::from_wire_bytes(&bytes) {
            prop_assert_eq!(decoded.to_wire_bytes(), bytes);
        }
    }
}
