//! Fuzz-style hardening of the wire codec: decoding attacker-controlled
//! bytes must never panic, never over-allocate, and always either produce
//! a value that re-encodes faithfully or return a structured error.
//!
//! Both decode paths are driven — the borrowing [`Wire::from_bytes`] the
//! transport uses and the copying [`Wire::decode_from`] — and must agree on
//! every input, success or failure.
//!
//! The always-on suite drives the same properties with the workspace's
//! deterministic [`DetRng`] (shrinking-free, reproducible from the printed
//! seed); the original proptest suite is kept behind the off-by-default
//! `proptests` feature.

use safereg_common::buf::Bytes;
use safereg_common::codec::{Wire, WireError, WireReader};
use safereg_common::ids::{ReaderId, WriterId};
use safereg_common::msg::{ClientToServer, Envelope, Message, OpId, Payload, ServerToClient};
use safereg_common::rng::DetRng;
use safereg_common::tag::Tag;
use safereg_common::value::Value;

/// The copying decode path, spelled out with the non-deprecated pieces.
fn copying_decode<T: Wire>(buf: &[u8]) -> Result<T, WireError> {
    let mut r = WireReader::new(buf);
    let v = T::decode_from(&mut r)?;
    if !r.is_empty() {
        return Err(WireError::TrailingBytes {
            count: r.remaining(),
        });
    }
    Ok(v)
}

#[test]
fn arbitrary_bytes_never_panic_any_decoder() {
    let mut rng = DetRng::seed_from(0xC0DE_C0DE);
    for case in 0..2048u32 {
        let len = rng.index(256);
        let mut data = vec![0u8; len];
        rng.fill_bytes(&mut data);
        let data = Bytes::from(data);
        // Every decoder must be total over arbitrary input, on both paths.
        let _ = ClientToServer::from_bytes(&data);
        let _ = ServerToClient::from_bytes(&data);
        let _ = Envelope::from_bytes(&data);
        let _ = Tag::from_bytes(&data);
        let _ = Value::from_bytes(&data);
        let _ = copying_decode::<Envelope>(&data);

        // Round-trip stability: whatever decodes must encode back to the
        // same bytes (the format has a canonical encoding), and the two
        // decode paths must agree.
        let borrowed = Message::from_bytes(&data);
        let copied = copying_decode::<Message>(&data);
        assert_eq!(borrowed, copied, "case {case}: decode paths disagree");
        if let Ok(msg) = borrowed {
            assert_eq!(msg.to_bytes(), data, "case {case}");
        }
    }
}

#[test]
fn truncations_of_valid_messages_fail_cleanly() {
    let mut rng = DetRng::seed_from(0x7AC0_57EE);
    for _ in 0..512 {
        let num = rng.next_u64();
        let msg = ServerToClient::DataResp {
            op: OpId::new(ReaderId(3), num),
            tag: Tag::new(num, WriterId(1)),
            payload: Payload::Full(Value::from("payload bytes")),
        };
        let bytes = msg.to_bytes();
        // Every strict prefix must fail, not just a sampled one.
        for cut in 0..bytes.len() {
            let prefix = bytes.slice(..cut);
            assert!(
                ServerToClient::from_bytes(&prefix).is_err(),
                "decode of {cut}-byte prefix unexpectedly succeeded"
            );
            assert!(
                copying_decode::<ServerToClient>(&prefix).is_err(),
                "copying decode of {cut}-byte prefix unexpectedly succeeded"
            );
        }
    }
}

#[test]
fn bit_flips_never_roundtrip_to_a_different_op() {
    let mut rng = DetRng::seed_from(0x0F11_BB17);
    for _ in 0..1024 {
        let num = rng.next_u64();
        let msg = ClientToServer::QueryData {
            op: OpId::new(ReaderId(1), num),
        };
        let mut bytes = msg.to_bytes().to_vec();
        let idx = rng.index(bytes.len());
        let bit = rng.index(8) as u8;
        bytes[idx] ^= 1 << bit;
        let bytes = Bytes::from(bytes);
        // The flip either fails to decode or decodes to exactly the bytes
        // sent (no silent normalization that could confuse op matching).
        if let Ok(decoded) = ClientToServer::from_bytes(&bytes) {
            assert_eq!(decoded.to_bytes(), bytes);
        }
    }
}

/// Original proptest suite; requires re-adding `proptest` as a
/// dev-dependency (see the `proptests` feature note in Cargo.toml).
#[cfg(feature = "proptests")]
mod proptest_suite {
    use proptest::collection::vec;
    use proptest::prelude::*;

    use safereg_common::buf::Bytes;
    use safereg_common::codec::Wire;
    use safereg_common::msg::{ClientToServer, Envelope, Message, ServerToClient};
    use safereg_common::tag::Tag;
    use safereg_common::value::Value;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

        #[test]
        fn arbitrary_bytes_never_panic_any_decoder(data in vec(any::<u8>(), 0..256)) {
            let data = Bytes::from(data);
            let _ = ClientToServer::from_bytes(&data);
            let _ = ServerToClient::from_bytes(&data);
            let _ = Envelope::from_bytes(&data);
            let _ = Message::from_bytes(&data);
            let _ = Tag::from_bytes(&data);
            let _ = Value::from_bytes(&data);
        }

        #[test]
        fn successful_decodes_reencode_identically(data in vec(any::<u8>(), 0..256)) {
            let data = Bytes::from(data);
            if let Ok(msg) = Message::from_bytes(&data) {
                prop_assert_eq!(msg.to_bytes(), data);
            }
        }
    }
}
