//! Property tests for the quorum arithmetic underlying the paper's proofs.
//!
//! The correctness arguments repeatedly use intersection sizes of
//! `(n − f)`-quorums; these tests pin the arithmetic facts the lemmas rely
//! on, over the whole configuration space the workspace supports.
//!
//! The always-on suite sweeps the configuration space *exhaustively*
//! (it is only ~32k points), which strictly dominates the sampled
//! proptest suite kept behind the off-by-default `proptests` feature.

use safereg_common::config::QuorumConfig;

#[test]
fn quorum_arithmetic_invariants_hold_exhaustively() {
    for n in 1usize..=255 {
        for f in 0..n {
            let cfg = QuorumConfig::new(n, f).unwrap();
            // Basic identities.
            assert_eq!(cfg.response_quorum() + cfg.f(), cfg.n());
            assert!(cfg.witness_threshold() <= cfg.response_quorum() || !cfg.supports_bsr());

            // Two response quorums intersect in at least n − 2f servers
            // (can be negative for absurd configurations like f >= n/2).
            let intersection = 2 * cfg.response_quorum() as isize - cfg.n() as isize;
            assert_eq!(intersection, cfg.n() as isize - 2 * cfg.f() as isize);

            if cfg.supports_bsr() {
                // Lemma 1's core: a write quorum and a read quorum share at
                // least 2f + 1 servers, i.e. at least f + 1 correct witnesses.
                assert!(intersection > 2 * cfg.f() as isize);
                // Theorem 2 survives the reader seeing f Byzantine responses:
                // honest witnesses alone reach the threshold.
                assert!(intersection - cfg.f() as isize >= cfg.witness_threshold() as isize);
            }

            if cfg.supports_bcsr() {
                // §IV-A's decode budget: the worst case (f missing, 2f stale
                // marked as erasures, f corrupted-as-errors) fits within the
                // parity budget n − k = 5f.
                let k = cfg.mds_k().unwrap();
                let parity = cfg.n() - k;
                let worst = 2 * cfg.f() /* errors×2 */ + 3 * cfg.f() /* erasures */;
                assert!(worst <= parity);
                // And the fresh elements among n − f responses reach k.
                assert!(cfg.response_quorum() - 2 * cfg.f() >= k);
            }

            if cfg.supports_rb_baseline() {
                // Bracha's thresholds: echo quorums intersect in a correct
                // server, and delivery outruns amplification.
                assert!(2 * cfg.rb_echo_threshold() > cfg.n() + cfg.f());
                assert!(cfg.rb_echo_threshold() <= cfg.response_quorum());
                // With f = 0 the two thresholds coincide (both 1).
                assert!(cfg.rb_deliver_threshold() >= cfg.rb_ready_amplify());
                assert!(cfg.rb_deliver_threshold() <= cfg.response_quorum() + cfg.f());
            }
        }
    }
}

#[test]
fn storage_units_are_consistent_exhaustively() {
    for f in 1usize..=4 {
        for extra in 1usize..40 {
            let n = 5 * f + extra;
            if n > 255 {
                continue;
            }
            let cfg = QuorumConfig::new(n, f).unwrap();
            let k = cfg.mds_k().unwrap();
            assert_eq!(k, extra);
            let units = cfg.mds_storage_units().unwrap();
            assert!((units - n as f64 / k as f64).abs() < 1e-12);
            assert!(units <= cfg.replication_storage_units());
        }
    }
}

/// Original proptest suite; requires re-adding `proptest` as a
/// dev-dependency (see the `proptests` feature note in Cargo.toml).
#[cfg(feature = "proptests")]
mod proptest_suite {
    use proptest::prelude::*;
    use safereg_common::config::QuorumConfig;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

        #[test]
        fn quorum_arithmetic_invariants(n in 1usize..=255, f in 0usize..255) {
            prop_assume!(f < n);
            let cfg = QuorumConfig::new(n, f).unwrap();
            prop_assert_eq!(cfg.response_quorum() + cfg.f(), cfg.n());
            let intersection = 2 * cfg.response_quorum() as isize - cfg.n() as isize;
            prop_assert_eq!(intersection, cfg.n() as isize - 2 * cfg.f() as isize);
            if cfg.supports_bsr() {
                prop_assert!(intersection > 2 * cfg.f() as isize);
                prop_assert!(intersection - cfg.f() as isize >= cfg.witness_threshold() as isize);
            }
        }

        #[test]
        fn storage_units_are_consistent(f in 1usize..=4, extra in 1usize..40) {
            let n = 5 * f + extra;
            prop_assume!(n <= 255);
            let cfg = QuorumConfig::new(n, f).unwrap();
            let k = cfg.mds_k().unwrap();
            prop_assert_eq!(k, extra);
            let units = cfg.mds_storage_units().unwrap();
            prop_assert!((units - n as f64 / k as f64).abs() < 1e-12);
            prop_assert!(units <= cfg.replication_storage_units());
        }
    }
}
