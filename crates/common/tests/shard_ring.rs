//! Seeded property tests for the consistent-hash shard ring
//! ([`safereg_common::shard::ShardMap`]).
//!
//! Three properties back the claims in the `shard` module docs:
//!
//! 1. **Determinism** — the map is a pure function of `(seed, shards,
//!    fleet, cfg)`: rebuilt maps agree on every routing answer, and
//!    different seeds actually produce different placements.
//! 2. **Balance** — per-shard counts over a Zipf-drawn *key set* stay
//!    within [`BALANCE_BOUND`] of the fair share (skew concentrates ops
//!    on hot keys, not key placement — distinct keys still hash
//!    uniformly onto the ring).
//! 3. **Minimal disruption** — growing `s → s + 1` shards moves only
//!    `≈ 1/(s+1)` of the keys, and every moved key lands on the new
//!    shard (old ring points are never disturbed).
//!
//! All randomness flows through [`DetRng`], so a failure reproduces from
//! the printed seed.

use std::collections::BTreeSet;

use safereg_common::config::QuorumConfig;
use safereg_common::ids::ServerId;
use safereg_common::rng::{DetRng, Zipf};
use safereg_common::shard::{ShardId, ShardMap, BALANCE_BOUND};

fn fleet(n: u16) -> Vec<ServerId> {
    (0..n).map(ServerId).collect()
}

/// A synthetic key for Zipf rank `r` — the id scheme workloads use.
fn key_of(rank: usize) -> Vec<u8> {
    format!("user-{rank:08}").into_bytes()
}

#[test]
fn placement_is_deterministic_per_seed() {
    let cfg = QuorumConfig::minimal_bsr(1).unwrap();
    let mut rng = DetRng::seed_from(0x5EED_D00D);
    for trial in 0..8 {
        let seed = rng.next_u64();
        let a = ShardMap::new(seed, 16, fleet(12), cfg).unwrap();
        let b = ShardMap::new(seed, 16, fleet(12), cfg).unwrap();
        assert_eq!(a, b, "seed {seed:#x} (trial {trial}): maps differ");
        for g in a.shards() {
            assert_eq!(
                a.replicas(g),
                b.replicas(g),
                "seed {seed:#x}: placement differs for {g}"
            );
        }
        for k in 0..512usize {
            let key = key_of(k);
            assert_eq!(
                a.shard_of(&key),
                b.shard_of(&key),
                "seed {seed:#x}: routing differs for rank {k}"
            );
        }
    }

    // Different seeds must not collapse to one placement: across 8 seed
    // pairs, at least one shard's replica set or one key's route differs.
    let a = ShardMap::new(1, 16, fleet(12), cfg).unwrap();
    let b = ShardMap::new(2, 16, fleet(12), cfg).unwrap();
    let placements_differ = a.shards().any(|g| a.replicas(g) != b.replicas(g));
    let routes_differ = (0..512usize).any(|k| a.shard_of(&key_of(k)) != b.shard_of(&key_of(k)));
    assert!(
        placements_differ || routes_differ,
        "seeds 1 and 2 produced identical maps"
    );
}

#[test]
fn zipf_key_sets_stay_within_balance_bound() {
    let cfg = QuorumConfig::minimal_bsr(1).unwrap();
    let mut rng = DetRng::seed_from(0xBA1A_7CE5);
    for &shards in &[2u16, 4, 16, 64] {
        let seed = rng.next_u64();
        let map = ShardMap::new(seed, shards, fleet(8), cfg).unwrap();

        // Draw a skewed workload, then measure placement of the *distinct*
        // key set it touches: the bound is about where keys live, not how
        // often the hot ones are hit.
        let zipf = Zipf::new(16_384, 1.0);
        let mut touched = vec![false; zipf.len()];
        for _ in 0..200_000 {
            touched[zipf.sample(&mut rng)] = true;
        }
        let mut counts = vec![0u64; shards as usize];
        let mut distinct = 0u64;
        for (rank, hit) in touched.iter().enumerate() {
            if *hit {
                counts[map.shard_of(&key_of(rank)).0 as usize] += 1;
                distinct += 1;
            }
        }
        let mean = distinct as f64 / f64::from(shards);
        for (g, &c) in counts.iter().enumerate() {
            let lo = mean / BALANCE_BOUND;
            let hi = mean * BALANCE_BOUND;
            assert!(
                (c as f64) >= lo && (c as f64) <= hi,
                "seed {seed:#x}, s={shards}: shard g{g} holds {c} of {distinct} \
                 distinct keys (fair {mean:.0}, bound [{lo:.0}, {hi:.0}])"
            );
        }
    }
}

#[test]
fn adding_a_shard_moves_about_one_in_s_keys() {
    let cfg = QuorumConfig::minimal_bsr(1).unwrap();
    let mut rng = DetRng::seed_from(0x0E_C0DE);
    const KEYS: usize = 20_000;
    for &s in &[3u16, 7, 15] {
        let seed = rng.next_u64();
        let small = ShardMap::new(seed, s, fleet(8), cfg).unwrap();
        let grown = ShardMap::new(seed, s + 1, fleet(8), cfg).unwrap();
        let newcomer = ShardId(s);
        let mut moved = 0usize;
        for k in 0..KEYS {
            let key = key_of(k);
            let before = small.shard_of(&key);
            let after = grown.shard_of(&key);
            if before != after {
                // Growth only *adds* ring points, so a moved key can only
                // have been captured by the new shard.
                assert_eq!(
                    after, newcomer,
                    "seed {seed:#x}, s={s}: key rank {k} moved {before} → {after}, \
                     not to the new shard"
                );
                moved += 1;
            }
        }
        let expected = KEYS as f64 / f64::from(s + 1);
        let frac = moved as f64 / KEYS as f64;
        assert!(
            (moved as f64) <= 2.0 * expected,
            "seed {seed:#x}, s={s}: {moved} keys moved ({frac:.3} of all); \
             consistent hashing promises ≈ {expected:.0}"
        );
        assert!(
            moved > 0,
            "seed {seed:#x}, s={s}: no keys moved — the new shard owns nothing"
        );
    }
}

/// Replica-set difference between two maps for one shard: `(gained, lost)`.
fn placement_diff(a: &ShardMap, b: &ShardMap, g: ShardId) -> (Vec<ServerId>, Vec<ServerId>) {
    let before: BTreeSet<ServerId> = a.replicas(g).unwrap().iter().copied().collect();
    let after: BTreeSet<ServerId> = b.replicas(g).unwrap().iter().copied().collect();
    (
        after.difference(&before).copied().collect(),
        before.difference(&after).copied().collect(),
    )
}

#[test]
fn growing_the_fleet_disrupts_placement_minimally() {
    // The reconfiguration property `ShardMap::for_fleet` exists for:
    // joining one server swaps at most one replica per shard (always the
    // newcomer, in), ≈ m/(n+1) shards are touched at all, and the key
    // ring never moves — so a client adopting the successor epoch keeps
    // routing every key to the same shard id.
    let cfg = QuorumConfig::minimal_bsr(1).unwrap(); // m = 5
    let mut rng = DetRng::seed_from(0xF1EE_7000);
    const SHARDS: u16 = 64;
    for &n in &[6u16, 8, 12, 24] {
        let seed = rng.next_u64();
        let old = ShardMap::new(seed, SHARDS, fleet(n), cfg).unwrap();
        let newcomer = ServerId(n);
        let grown = old.for_fleet((0..=n).map(ServerId).collect()).unwrap();

        // Key → shard routing is fleet-independent.
        for k in 0..2_000usize {
            let key = key_of(k);
            assert_eq!(
                old.shard_of(&key),
                grown.shard_of(&key),
                "seed {seed:#x}, n={n}: fleet growth re-sharded key rank {k}"
            );
        }

        let mut swapped = 0usize;
        for g in old.shards() {
            let (gained, lost) = placement_diff(&old, &grown, g);
            match gained.as_slice() {
                [] => assert!(
                    lost.is_empty(),
                    "seed {seed:#x}, n={n}, {g}: lost {lost:?} without gaining"
                ),
                [sole] => {
                    assert_eq!(
                        *sole, newcomer,
                        "seed {seed:#x}, n={n}, {g}: a non-joining server moved in"
                    );
                    assert_eq!(
                        lost.len(),
                        1,
                        "seed {seed:#x}, n={n}, {g}: swap was not one-for-one"
                    );
                    swapped += 1;
                }
                more => panic!(
                    "seed {seed:#x}, n={n}, {g}: rendezvous moved {} members at once",
                    more.len()
                ),
            }
        }
        // Each shard admits the newcomer iff it scores top-m among n + 1
        // contenders: probability m/(n+1), independent per shard.
        let expected = f64::from(SHARDS) * cfg.n() as f64 / f64::from(n + 1);
        assert!(
            (swapped as f64) <= 2.5 * expected && swapped > 0,
            "seed {seed:#x}, n={n}: {swapped} shards re-placed \
             (rendezvous promises ≈ {expected:.0})"
        );

        // Leaving is the mirror image, and rendezvous is memoryless: the
        // newcomer leaving again restores the exact old placement.
        let shrunk = grown.for_fleet(fleet(n)).unwrap();
        assert_eq!(
            shrunk, old,
            "seed {seed:#x}, n={n}: join → leave did not round-trip"
        );

        // Removing an incumbent touches only the shards that hosted it,
        // each swapping exactly the leaver for one replacement.
        let leaver = ServerId(1);
        let less: Vec<ServerId> = (0..n).map(ServerId).filter(|s| *s != leaver).collect();
        let without = old.for_fleet(less).unwrap();
        for g in old.shards() {
            let hosted = old.replicas(g).unwrap().contains(&leaver);
            let (gained, lost) = placement_diff(&old, &without, g);
            if hosted {
                assert_eq!(
                    lost,
                    vec![leaver],
                    "seed {seed:#x}, n={n}, {g}: leaver not swapped out cleanly"
                );
                assert_eq!(
                    gained.len(),
                    1,
                    "seed {seed:#x}, n={n}, {g}: leaver replaced by {gained:?}"
                );
            } else {
                assert!(
                    gained.is_empty() && lost.is_empty(),
                    "seed {seed:#x}, n={n}, {g}: unaffected shard was re-placed"
                );
            }
        }
    }
}
