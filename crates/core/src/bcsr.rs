//! BCSR's one-shot erasure-coded read (Fig. 5).
//!
//! The reader queries all servers, waits for `n − f` responses carrying
//! `(tag, coded element)` pairs, and attempts to decode. Concretely
//! (DESIGN.md "BCSR reader decoding"):
//!
//! 1. Group responses by tag and pick the **plurality tag** `t*` (ties to
//!    the higher tag). After a complete write that is not concurrent with
//!    the read, `t*` is that write's tag: it has `≥ n − 3f` witnesses among
//!    the `n − f` responses, strictly more than everything else combined.
//! 2. Require `t*` to have `≥ f + 1` witnesses (Lemma 5: fewer witnesses
//!    would let the `f` Byzantine servers fabricate a value).
//! 3. Mark non-`t*` responses and missing servers as **erasures** (their
//!    positions are known) and decode; Byzantine elements that carry `t*`
//!    with corrupted bytes are **errors** the RS decoder corrects. The
//!    worst case is `f` missing + `2f` stale + `f` corrupted:
//!    `2·f + (f + 2f) = 5f ≤ n − k`.
//! 4. Re-encode the decoded value and demand `≥ f + 1` received elements
//!    match it exactly, so at least one correct server vouches for the
//!    decoded codeword. Any failure returns `v_0` (Fig. 5 line 4,
//!    "if possible; otherwise return `v_0`").

use std::collections::BTreeMap;

use safereg_common::config::QuorumConfig;
use safereg_common::ids::{ClientId, ReaderId, ServerId};
use safereg_common::msg::{ClientToServer, CodedElement, Envelope, OpId, Payload, ServerToClient};
use safereg_common::tag::Tag;
use safereg_common::value::Value;
use safereg_mds::rs::ReedSolomon;
use safereg_mds::stripe::{column_count, decode_elements, encode_value, ElementView};

use crate::op::{ClientOp, OpOutput, ReadPath};

/// How the reader treats elements whose tag differs from the decode
/// candidate.
///
/// The default, [`CodedReadStrategy::ErasureMarking`], is what DESIGN.md
/// describes: known-position mismatches become erasures, doubling the
/// tolerable staleness. [`CodedReadStrategy::BlindDecode`] feeds every
/// element to the decoder and relies on error correction alone — ablation
/// A3 measures how much earlier it starts failing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CodedReadStrategy {
    /// Mark mismatched-tag elements as erasures (default).
    #[default]
    ErasureMarking,
    /// Feed all elements and let error correction cope (A3).
    BlindDecode,
}

/// One BCSR read operation (Fig. 5).
#[derive(Debug)]
pub struct BcsrReadOp {
    reader: ReaderId,
    op: OpId,
    cfg: QuorumConfig,
    code: ReedSolomon,
    /// First response per server.
    responses: BTreeMap<ServerId, (Tag, CodedElement)>,
    result: Option<OpOutput>,
    path: Option<ReadPath>,
    rounds: u32,
    strategy: CodedReadStrategy,
}

impl BcsrReadOp {
    /// Creates a coded read.
    ///
    /// # Panics
    ///
    /// Panics when `code.n() != cfg.n()` — a deployment wiring bug.
    pub fn new(reader: ReaderId, seq: u64, cfg: QuorumConfig, code: ReedSolomon) -> Self {
        assert_eq!(code.n(), cfg.n(), "code length must equal the server count");
        BcsrReadOp {
            reader,
            op: OpId::new(reader, seq),
            cfg,
            code,
            responses: BTreeMap::new(),
            result: None,
            path: None,
            rounds: 0,
            strategy: CodedReadStrategy::default(),
        }
    }

    /// Overrides the decode strategy (ablation A3 only).
    #[must_use]
    pub fn with_strategy(mut self, strategy: CodedReadStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    fn conclude(&mut self) {
        // Fast iff the decode pipeline produced a verified value (Fig. 5
        // line 4 "if possible"); the v_0 fallback is the slow outcome.
        self.result = Some(match self.try_decode() {
            Some((tag, value)) => {
                self.path = Some(ReadPath::Fast);
                OpOutput::Read { value, tag }
            }
            None => {
                self.path = Some(ReadPath::Slow);
                OpOutput::Read {
                    value: Value::initial(),
                    tag: Tag::ZERO,
                }
            }
        });
    }

    fn try_decode(&self) -> Option<(Tag, Value)> {
        // Step 1: plurality tag, ties to the higher tag. BTreeMap iteration
        // is ascending, `max_by_key` keeps the last maximum, so ties
        // resolve to the higher tag.
        let mut by_tag: BTreeMap<Tag, Vec<(ServerId, &CodedElement)>> = BTreeMap::new();
        for (sid, (tag, elem)) in &self.responses {
            by_tag.entry(*tag).or_default().push((*sid, elem));
        }
        let (t_star, claimers) = by_tag.iter().max_by_key(|(_, v)| v.len())?;
        if *t_star == Tag::ZERO {
            // The initial value needs no decoding.
            if claimers.len() >= self.cfg.witness_threshold() {
                return Some((Tag::ZERO, Value::initial()));
            }
            return None;
        }

        // Step 2: witness threshold.
        if claimers.len() < self.cfg.witness_threshold() {
            return None;
        }

        // The claimed value length may itself be Byzantine; try each
        // distinct claim by how many servers make it.
        let mut len_votes: BTreeMap<u32, usize> = BTreeMap::new();
        for (_, e) in claimers {
            *len_votes.entry(e.value_len).or_insert(0) += 1;
        }
        let mut lens: Vec<u32> = len_votes.keys().copied().collect();
        lens.sort_by_key(|l| std::cmp::Reverse(len_votes[l]));

        for value_len in lens {
            if let Some(value) = self.try_decode_len(claimers, value_len as usize) {
                return Some((*t_star, value));
            }
        }
        None
    }

    fn try_decode_len(
        &self,
        claimers: &[(ServerId, &CodedElement)],
        value_len: usize,
    ) -> Option<Value> {
        let cols = column_count(value_len, self.code.k());
        // Step 3: elements from t*-claimers at their own server position;
        // everything else is an erasure. An element whose claimed index
        // differs from the responding server, or whose length is wrong,
        // is discarded (degrades to an erasure). Under the BlindDecode
        // ablation, *every* response is fed in and mismatched tags become
        // errors the decoder must correct.
        let views: Vec<ElementView<'_>> = match self.strategy {
            CodedReadStrategy::ErasureMarking => claimers
                .iter()
                .filter(|(sid, e)| e.index as usize == sid.0 as usize && e.data.len() == cols)
                .map(|(_, e)| ElementView::of(e))
                .collect(),
            CodedReadStrategy::BlindDecode => self
                .responses
                .iter()
                .filter(|(sid, (_, e))| e.index as usize == sid.0 as usize && e.data.len() == cols)
                .map(|(_, (_, e))| ElementView::of(e))
                .collect(),
        };
        if views.is_empty() && value_len > 0 {
            return None;
        }
        let value = decode_elements(&self.code, value_len, &views).ok()?;

        // Step 4: at least f + 1 received elements must match the decoded
        // codeword exactly, so one correct server vouches for it.
        let reencoded = encode_value(&self.code, &value);
        let matching = claimers
            .iter()
            .filter(|(sid, e)| {
                let i = sid.0 as usize;
                e.index as usize == i
                    && reencoded
                        .get(i)
                        .is_some_and(|r| r.data == e.data && r.value_len == e.value_len)
            })
            .count();
        (matching >= self.cfg.witness_threshold()).then_some(value)
    }
}

impl ClientOp for BcsrReadOp {
    fn op_id(&self) -> OpId {
        self.op
    }

    fn start(&mut self) -> Vec<Envelope> {
        self.rounds = 1;
        self.cfg
            .servers()
            .map(|sid| {
                Envelope::to_server(
                    ClientId::Reader(self.reader),
                    sid,
                    ClientToServer::QueryData { op: self.op },
                )
            })
            .collect()
    }

    fn on_message(&mut self, from: ServerId, msg: &ServerToClient) -> Vec<Envelope> {
        if self.result.is_some() || msg.op() != self.op {
            return Vec::new();
        }
        if let ServerToClient::DataResp {
            tag,
            payload: Payload::Coded(elem),
            ..
        } = msg
        {
            self.responses
                .entry(from)
                .or_insert_with(|| (*tag, elem.clone()));
            if self.responses.len() >= self.cfg.response_quorum() {
                self.conclude();
            }
        }
        Vec::new()
    }

    fn output(&self) -> Option<OpOutput> {
        self.result.clone()
    }

    fn rounds(&self) -> u32 {
        self.rounds
    }

    fn is_write(&self) -> bool {
        false
    }

    fn read_path(&self) -> Option<ReadPath> {
        self.path
    }

    fn validation_failures(&self) -> u32 {
        u32::from(self.path == Some(ReadPath::Slow))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safereg_common::ids::WriterId;

    fn setup() -> (QuorumConfig, ReedSolomon) {
        let cfg = QuorumConfig::minimal_bcsr(1).unwrap(); // n = 6, f = 1, k = 1
        let code = ReedSolomon::new(6, 1).unwrap();
        (cfg, code)
    }

    fn data(op: OpId, tag: Tag, elem: CodedElement) -> ServerToClient {
        ServerToClient::DataResp {
            op,
            tag,
            payload: Payload::Coded(elem),
        }
    }

    #[test]
    fn decodes_fresh_value_from_clean_quorum() {
        let (cfg, code) = setup();
        let v = Value::from("coded value");
        let elems = encode_value(&code, &v);
        let tag = Tag::new(1, WriterId(0));
        let mut op = BcsrReadOp::new(ReaderId(0), 1, cfg, code);
        assert_eq!(op.start().len(), 6);
        let id = op.op_id();
        for i in 0..5u16 {
            op.on_message(ServerId(i), &data(id, tag, elems[i as usize].clone()));
        }
        let out = op.output().unwrap();
        assert_eq!(out.tag(), tag);
        assert_eq!(out.read_value().unwrap(), &v);
        assert_eq!(op.rounds(), 1, "one-shot read");
        assert_eq!(op.read_path(), Some(ReadPath::Fast));
        assert_eq!(op.validation_failures(), 0);
    }

    #[test]
    fn tolerates_stale_and_corrupt_elements() {
        let (cfg, code) = setup();
        let fresh = Value::from("fresh!");
        let stale = Value::from("stale.");
        let fresh_e = encode_value(&code, &fresh);
        let stale_e = encode_value(&code, &stale);
        let t_new = Tag::new(2, WriterId(0));
        let t_old = Tag::new(1, WriterId(0));

        let mut op = BcsrReadOp::new(ReaderId(0), 1, cfg, code);
        op.start();
        let id = op.op_id();
        // Server 5 never replies (erasure). Server 0 is stale. Server 1 is
        // Byzantine: claims t_new but corrupt bytes (an RS "error").
        op.on_message(ServerId(0), &data(id, t_old, stale_e[0].clone()));
        let mut corrupt = fresh_e[1].clone();
        corrupt.data = safereg_common::buf::Bytes::from(vec![0xEE; corrupt.data.len()]);
        op.on_message(ServerId(1), &data(id, t_new, corrupt));
        for i in 2..5u16 {
            op.on_message(ServerId(i), &data(id, t_new, fresh_e[i as usize].clone()));
        }
        let out = op.output().unwrap();
        assert_eq!(out.read_value().unwrap(), &fresh);
        assert_eq!(out.tag(), t_new);
    }

    #[test]
    fn falls_back_to_v0_when_no_plurality_can_decode() {
        let (cfg, code) = setup();
        let mut op = BcsrReadOp::new(ReaderId(0), 1, cfg, code.clone());
        op.start();
        let id = op.op_id();
        // Five servers report five different tags, each with garbage of a
        // different length: nothing has f + 1 = 2 witnesses.
        for i in 0..5u16 {
            let elem = CodedElement {
                index: i,
                value_len: 10 + i as u32,
                data: safereg_common::buf::Bytes::from(vec![i as u8; 10 + i as usize]),
            };
            op.on_message(
                ServerId(i),
                &data(id, Tag::new(1 + i as u64, WriterId(i)), elem),
            );
        }
        let out = op.output().unwrap();
        assert!(out.read_value().unwrap().is_initial());
        assert_eq!(out.tag(), Tag::ZERO);
        assert_eq!(op.read_path(), Some(ReadPath::Slow), "v_0 fallback");
        assert_eq!(op.validation_failures(), 1);
    }

    #[test]
    fn initial_state_returns_v0() {
        let (cfg, code) = setup();
        let v0_elems = encode_value(&code, &Value::initial());
        let mut op = BcsrReadOp::new(ReaderId(0), 1, cfg, code);
        op.start();
        let id = op.op_id();
        for i in 0..5u16 {
            op.on_message(
                ServerId(i),
                &data(id, Tag::ZERO, v0_elems[i as usize].clone()),
            );
        }
        let out = op.output().unwrap();
        assert!(out.read_value().unwrap().is_initial());
        assert_eq!(
            op.read_path(),
            Some(ReadPath::Fast),
            "a witnessed Tag::ZERO quorum is a verified v_0, not a fallback"
        );
    }

    #[test]
    fn byzantine_cannot_fabricate_a_value_alone() {
        // f servers fabricate a plausible tag+codeword; with only f = 1
        // witness the plurality tag check or witness threshold rejects it.
        let (cfg, code) = setup();
        let honest = Value::from("honest");
        let honest_e = encode_value(&code, &honest);
        let t_real = Tag::new(1, WriterId(0));
        let forged = Value::from("FORGED");
        let forged_e = encode_value(&code, &forged);
        let t_fake = Tag::new(99, WriterId(9));

        let mut op = BcsrReadOp::new(ReaderId(0), 1, cfg, code);
        op.start();
        let id = op.op_id();
        op.on_message(ServerId(0), &data(id, t_fake, forged_e[0].clone()));
        for i in 1..5u16 {
            op.on_message(ServerId(i), &data(id, t_real, honest_e[i as usize].clone()));
        }
        let out = op.output().unwrap();
        assert_eq!(out.read_value().unwrap(), &honest);
    }

    #[test]
    fn wrong_index_claims_degrade_to_erasures() {
        let (cfg, code) = setup();
        let v = Value::from("indexed");
        let elems = encode_value(&code, &v);
        let tag = Tag::new(1, WriterId(0));
        let mut op = BcsrReadOp::new(ReaderId(0), 1, cfg, code);
        op.start();
        let id = op.op_id();
        // Server 0 replays server 3's element (index mismatch).
        op.on_message(ServerId(0), &data(id, tag, elems[3].clone()));
        for i in 1..5u16 {
            op.on_message(ServerId(i), &data(id, tag, elems[i as usize].clone()));
        }
        let out = op.output().unwrap();
        assert_eq!(out.read_value().unwrap(), &v);
    }

    #[test]
    fn byzantine_value_len_lie_does_not_block_decoding() {
        // A Byzantine claimer reports the right tag but a wrong value_len;
        // the reader tries length claims by popularity and still decodes.
        let (cfg, code) = setup();
        let v = Value::from("length-lied value");
        let elems = encode_value(&code, &v);
        let tag = Tag::new(1, WriterId(0));
        let mut op = BcsrReadOp::new(ReaderId(0), 1, cfg, code);
        op.start();
        let id = op.op_id();
        let mut liar = elems[0].clone();
        liar.value_len = 9999;
        op.on_message(ServerId(0), &data(id, tag, liar));
        for i in 1..5u16 {
            op.on_message(ServerId(i), &data(id, tag, elems[i as usize].clone()));
        }
        let out = op.output().unwrap();
        assert_eq!(out.read_value().unwrap(), &v);
    }

    #[test]
    fn full_payload_responses_are_ignored() {
        let (cfg, code) = setup();
        let mut op = BcsrReadOp::new(ReaderId(0), 1, cfg, code.clone());
        op.start();
        let id = op.op_id();
        let full = ServerToClient::DataResp {
            op: id,
            tag: Tag::new(1, WriterId(0)),
            payload: Payload::Full(Value::from("not coded")),
        };
        op.on_message(ServerId(0), &full);
        assert!(op.output().is_none());
        let v0_elems = encode_value(&code, &Value::initial());
        for i in 0..5u16 {
            op.on_message(
                ServerId(i),
                &data(id, Tag::ZERO, v0_elems[i as usize].clone()),
            );
        }
        assert!(op.output().is_some());
    }
}
