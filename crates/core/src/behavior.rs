//! Server behaviors: correct replicas and a bestiary of Byzantine
//! strategies, shared by the discrete-event simulator and the live TCP
//! hosts.
//!
//! A [`ServerBehavior`] receives every envelope addressed to its server and
//! returns the envelopes the server emits. Correct behaviors wrap the real
//! protocol state machines; Byzantine ones deviate in the ways the paper's
//! adversary is allowed to (§II-A): wrong values, wrong timestamps, no
//! replies, multiple replies — but they can never forge *another* server's
//! messages (the channels are authenticated).
//!
//! `now` is an opaque monotone u64: the simulator feeds its virtual clock,
//! the TCP hosts feed wall-clock microseconds. Behaviors that compare
//! against deadlines ([`CrashAt`], [`DownBetween`]) only assume
//! monotonicity.

use safereg_common::config::QuorumConfig;
use safereg_common::ids::{ClientId, NodeId, ServerId, WriterId};
use safereg_common::msg::{ClientToServer, Envelope, Message, Payload, ServerToClient};
use safereg_common::rng::DetRng;
use safereg_common::tag::Tag;
use safereg_common::value::Value;

use crate::server::ServerNode;

/// A server's behavior under test — simulated or live.
pub trait ServerBehavior: Send {
    /// The server this behavior plays.
    fn id(&self) -> ServerId;

    /// Handles one delivered envelope, returning envelopes to send.
    fn on_envelope(&mut self, now: u64, env: &Envelope, rng: &mut DetRng) -> Vec<Envelope>;

    /// Payload bytes this server currently stores (E4's storage metric);
    /// behaviors without real storage report 0.
    fn storage_bytes(&self) -> usize {
        0
    }
}

/// A correct server running [`ServerNode`] (BSR/BCSR/variants).
#[derive(Debug)]
pub struct Correct {
    node: ServerNode,
}

impl Correct {
    /// Wraps a protocol server node.
    pub fn new(node: ServerNode) -> Self {
        Correct { node }
    }
}

impl ServerBehavior for Correct {
    fn id(&self) -> ServerId {
        self.node.id()
    }

    fn on_envelope(&mut self, _now: u64, env: &Envelope, _rng: &mut DetRng) -> Vec<Envelope> {
        let (from, msg) = match (&env.src, &env.msg) {
            (NodeId::Client(c), Message::ToServer(m)) => (*c, m),
            _ => return Vec::new(),
        };
        self.node
            .handle(from, msg)
            .into_iter()
            .map(|resp| Envelope::to_client(self.node.id(), from, resp))
            .collect()
    }

    fn storage_bytes(&self) -> usize {
        self.node.storage_bytes()
    }
}

/// Byzantine: never responds to anything.
#[derive(Debug)]
pub struct Silent {
    id: ServerId,
}

impl Silent {
    /// A server that is silent from the start.
    pub fn new(id: ServerId) -> Self {
        Silent { id }
    }
}

impl ServerBehavior for Silent {
    fn id(&self) -> ServerId {
        self.id
    }

    fn on_envelope(&mut self, _now: u64, _env: &Envelope, _rng: &mut DetRng) -> Vec<Envelope> {
        Vec::new()
    }
}

/// Crash fault: correct until `crash_at`, silent afterwards.
pub struct CrashAt {
    inner: Box<dyn ServerBehavior>,
    crash_at: u64,
}

impl CrashAt {
    /// Wraps a behavior that dies at `crash_at`.
    pub fn new(inner: Box<dyn ServerBehavior>, crash_at: u64) -> Self {
        CrashAt { inner, crash_at }
    }
}

impl ServerBehavior for CrashAt {
    fn id(&self) -> ServerId {
        self.inner.id()
    }

    fn on_envelope(&mut self, now: u64, env: &Envelope, rng: &mut DetRng) -> Vec<Envelope> {
        if now >= self.crash_at {
            return Vec::new();
        }
        self.inner.on_envelope(now, env, rng)
    }
}

/// Crash-recovery fault: silent during `[down_from, down_to)`, correct
/// otherwise. Messages delivered while down are lost to this server (its
/// channel endpoint is dead), which a recovered replica experiences as a
/// gap in its log — the quorum logic masks it as long as at most `f`
/// servers are down at once.
pub struct DownBetween {
    inner: Box<dyn ServerBehavior>,
    down_from: u64,
    down_to: u64,
}

impl DownBetween {
    /// Wraps a behavior that is unavailable during `[down_from, down_to)`.
    pub fn new(inner: Box<dyn ServerBehavior>, down_from: u64, down_to: u64) -> Self {
        DownBetween {
            inner,
            down_from,
            down_to,
        }
    }
}

impl ServerBehavior for DownBetween {
    fn id(&self) -> ServerId {
        self.inner.id()
    }

    fn on_envelope(&mut self, now: u64, env: &Envelope, rng: &mut DetRng) -> Vec<Envelope> {
        if (self.down_from..self.down_to).contains(&now) {
            return Vec::new();
        }
        self.inner.on_envelope(now, env, rng)
    }

    fn storage_bytes(&self) -> usize {
        self.inner.storage_bytes()
    }
}

/// Byzantine: acknowledges writes without storing them, so reads see stale
/// state; it also answers reads from the pre-attack state.
///
/// With `lag = 0` the server simply never applies any write (it always
/// answers from `(t_0, v_0)`); with `lag = k` it answers from the entry `k`
/// positions below its maximum — the strategy the Theorem 5 replay uses to
/// resurrect an overwritten value.
#[derive(Debug)]
pub struct StaleReplier {
    node: ServerNode,
    lag: usize,
}

impl StaleReplier {
    /// Creates a stale replier with the given lag.
    pub fn new(node: ServerNode, lag: usize) -> Self {
        StaleReplier { node, lag }
    }
}

impl ServerBehavior for StaleReplier {
    fn id(&self) -> ServerId {
        self.node.id()
    }

    fn on_envelope(&mut self, _now: u64, env: &Envelope, _rng: &mut DetRng) -> Vec<Envelope> {
        let (from, msg) = match (&env.src, &env.msg) {
            (NodeId::Client(c), Message::ToServer(m)) => (*c, m),
            _ => return Vec::new(),
        };
        match msg {
            // Maintain the log correctly (so the lagged entry exists), ack
            // normally — the lie is in the read path.
            ClientToServer::PutData { .. } | ClientToServer::QueryTag { .. } => self
                .node
                .handle(from, msg)
                .into_iter()
                .map(|r| Envelope::to_client(self.node.id(), from, r))
                .collect(),
            ClientToServer::QueryData { op } => {
                // Answer with a stale pair: use the full history to find
                // the entry `lag` below the max.
                let hist = self.node.handle(
                    from,
                    &ClientToServer::QueryHistory {
                        op: *op,
                        above: Tag::ZERO,
                    },
                );
                let entries = match hist.into_iter().next() {
                    Some(ServerToClient::HistoryResp { entries, .. }) if !entries.is_empty() => {
                        entries
                    }
                    _ => return Vec::new(),
                };
                let idx = entries.len().saturating_sub(1 + self.lag);
                let (tag, payload) = entries[idx].clone();
                vec![Envelope::to_client(
                    self.node.id(),
                    from,
                    ServerToClient::DataResp {
                        op: *op,
                        tag,
                        payload,
                    },
                )]
            }
            // For history-style queries, truncate the newest `lag` entries.
            ClientToServer::QueryHistory { .. }
            | ClientToServer::QueryTagList { .. }
            | ClientToServer::QueryValueAt { .. } => {
                let out = self.node.handle(from, msg);
                out.into_iter()
                    .map(|r| {
                        let r = match r {
                            ServerToClient::HistoryResp { op, mut entries } => {
                                entries.truncate(entries.len().saturating_sub(self.lag));
                                ServerToClient::HistoryResp { op, entries }
                            }
                            ServerToClient::TagListResp { op, mut tags } => {
                                tags.truncate(tags.len().saturating_sub(self.lag));
                                ServerToClient::TagListResp { op, tags }
                            }
                            other => other,
                        };
                        Envelope::to_client(self.node.id(), from, r)
                    })
                    .collect()
            }
            _ => Vec::new(),
        }
    }
}

/// Byzantine: responds to reads with fabricated values and huge tags, and
/// to `get-tag` queries with inflated tags (the attack ablation A2 guards
/// against); acks writes without storing.
#[derive(Debug)]
pub struct Fabricator {
    id: ServerId,
    rng: DetRng,
}

impl Fabricator {
    /// Creates a fabricator with its own random stream.
    pub fn new(id: ServerId, seed: u64) -> Self {
        Fabricator {
            id,
            rng: DetRng::seed_from(seed),
        }
    }

    fn forged_pair(&mut self) -> (Tag, Payload) {
        let tag = Tag::new(self.rng.range_u64(1_000_000..2_000_000), WriterId(9999));
        let mut bytes = vec![0u8; 8];
        self.rng.fill_bytes(&mut bytes);
        (tag, Payload::Full(Value::from(bytes)))
    }
}

impl ServerBehavior for Fabricator {
    fn id(&self) -> ServerId {
        self.id
    }

    fn on_envelope(&mut self, _now: u64, env: &Envelope, _rng: &mut DetRng) -> Vec<Envelope> {
        let (from, msg) = match (&env.src, &env.msg) {
            (NodeId::Client(c), Message::ToServer(m)) => (*c, m),
            _ => return Vec::new(),
        };
        let op = msg.op();
        let resp = match msg {
            ClientToServer::QueryTag { .. } => {
                let (tag, _) = self.forged_pair();
                ServerToClient::TagResp { op, tag }
            }
            ClientToServer::PutData { tag, .. } => ServerToClient::PutAck { op, tag: *tag },
            ClientToServer::QueryData { .. } => {
                let (tag, payload) = self.forged_pair();
                ServerToClient::DataResp { op, tag, payload }
            }
            ClientToServer::QueryHistory { .. } => {
                let (tag, payload) = self.forged_pair();
                ServerToClient::HistoryResp {
                    op,
                    entries: vec![(tag, payload)],
                }
            }
            ClientToServer::QueryTagList { .. } => {
                let (tag, _) = self.forged_pair();
                ServerToClient::TagListResp {
                    op,
                    tags: vec![tag],
                }
            }
            ClientToServer::QueryValueAt { tag, .. } => {
                let (_, payload) = self.forged_pair();
                ServerToClient::ValueAtResp {
                    op,
                    tag: *tag,
                    payload: Some(payload),
                }
            }
            _ => return Vec::new(),
        };
        vec![Envelope::to_client(self.id, from, resp)]
    }
}

/// Byzantine: behaves correctly except it reports different (fabricated)
/// values to different *readers* — equivocation. Writers see a correct
/// server, so writes complete; readers get per-client lies.
#[derive(Debug)]
pub struct Equivocator {
    node: ServerNode,
}

impl Equivocator {
    /// Wraps a correctly-maintained node whose read answers equivocate.
    pub fn new(node: ServerNode) -> Self {
        Equivocator { node }
    }
}

impl ServerBehavior for Equivocator {
    fn id(&self) -> ServerId {
        self.node.id()
    }

    fn on_envelope(&mut self, _now: u64, env: &Envelope, _rng: &mut DetRng) -> Vec<Envelope> {
        let (from, msg) = match (&env.src, &env.msg) {
            (NodeId::Client(c), Message::ToServer(m)) => (*c, m),
            _ => return Vec::new(),
        };
        match msg {
            ClientToServer::QueryData { op } => {
                // Value depends on who asks: reader r gets "evil-r".
                let salt = match from {
                    ClientId::Reader(r) => r.0,
                    ClientId::Writer(w) => w.0,
                };
                let tag = self.node.max_tag().next_for(WriterId(8888));
                let payload = Payload::Full(Value::from(format!("evil-{salt}").into_bytes()));
                vec![Envelope::to_client(
                    self.node.id(),
                    from,
                    ServerToClient::DataResp {
                        op: *op,
                        tag,
                        payload,
                    },
                )]
            }
            _ => self
                .node
                .handle(from, msg)
                .into_iter()
                .map(|r| Envelope::to_client(self.node.id(), from, r))
                .collect(),
        }
    }
}

/// Byzantine: acknowledges `put-data` without storing anything (write
/// durability silently broken); reads answer from the initial state.
#[derive(Debug)]
pub struct AckForger {
    id: ServerId,
    cfg: QuorumConfig,
}

impl AckForger {
    /// Creates an ack forger.
    pub fn new(id: ServerId, cfg: QuorumConfig) -> Self {
        AckForger { id, cfg }
    }
}

impl ServerBehavior for AckForger {
    fn id(&self) -> ServerId {
        self.id
    }

    fn on_envelope(&mut self, now: u64, env: &Envelope, rng: &mut DetRng) -> Vec<Envelope> {
        let (from, msg) = match (&env.src, &env.msg) {
            (NodeId::Client(c), Message::ToServer(m)) => (*c, m),
            _ => return Vec::new(),
        };
        match msg {
            ClientToServer::PutData { op, tag, .. } => {
                vec![Envelope::to_client(
                    self.id,
                    from,
                    ServerToClient::PutAck { op: *op, tag: *tag },
                )]
            }
            _ => {
                // Everything else: act like a pristine (empty) correct node.
                let mut fresh = Correct::new(ServerNode::new_replicated(self.id, self.cfg));
                fresh.on_envelope(now, env, rng)
            }
        }
    }
}

/// Byzantine: answers every read query with one fixed `(tag, payload)` pair
/// and acks writes without storing — the building block for hand-crafted
/// adversarial schedules (the Theorem 6 replay uses it to make servers
/// vouch for elements they never received).
#[derive(Debug)]
pub struct FixedResponder {
    id: ServerId,
    tag: Tag,
    payload: Payload,
}

impl FixedResponder {
    /// Creates a responder pinned to one pair.
    pub fn new(id: ServerId, tag: Tag, payload: Payload) -> Self {
        FixedResponder { id, tag, payload }
    }
}

impl ServerBehavior for FixedResponder {
    fn id(&self) -> ServerId {
        self.id
    }

    fn on_envelope(&mut self, _now: u64, env: &Envelope, _rng: &mut DetRng) -> Vec<Envelope> {
        let (from, msg) = match (&env.src, &env.msg) {
            (NodeId::Client(c), Message::ToServer(m)) => (*c, m),
            _ => return Vec::new(),
        };
        let op = msg.op();
        let resp = match msg {
            ClientToServer::QueryTag { .. } => ServerToClient::TagResp { op, tag: self.tag },
            ClientToServer::PutData { tag, .. } => ServerToClient::PutAck { op, tag: *tag },
            ClientToServer::QueryData { .. } => ServerToClient::DataResp {
                op,
                tag: self.tag,
                payload: self.payload.clone(),
            },
            ClientToServer::QueryHistory { .. } => ServerToClient::HistoryResp {
                op,
                entries: vec![(self.tag, self.payload.clone())],
            },
            ClientToServer::QueryTagList { .. } => ServerToClient::TagListResp {
                op,
                tags: vec![self.tag],
            },
            ClientToServer::QueryValueAt { tag, .. } => ServerToClient::ValueAtResp {
                op,
                tag: *tag,
                payload: (*tag == self.tag).then(|| self.payload.clone()),
            },
            _ => return Vec::new(),
        };
        vec![Envelope::to_client(self.id, from, resp)]
    }
}

/// The named Byzantine roles a live replica can be spawned with — the
/// subset of the bestiary that makes sense for a long-running host (the
/// schedule-crafting behaviors like [`FixedResponder`] stay test-only).
///
/// `Correct` is included so role *rotation* can restore a replica to honest
/// service without special-casing the spawn path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ByzRole {
    /// Honest replica.
    #[default]
    Correct,
    /// Never answers.
    Silent,
    /// Acks writes, answers reads one entry stale.
    StaleAck,
    /// Forges values and tags from a seeded stream.
    Fabricator,
    /// Tells each reader a different story.
    Equivocator,
}

impl ByzRole {
    /// Every faulty role, in rotation order. `Correct` is excluded: the
    /// rotation helpers pick from this list when a replica's turn to
    /// misbehave comes up.
    pub const FAULTY: [ByzRole; 4] = [
        ByzRole::Silent,
        ByzRole::StaleAck,
        ByzRole::Fabricator,
        ByzRole::Equivocator,
    ];

    /// Stable label for logs and metrics.
    pub fn label(self) -> &'static str {
        match self {
            ByzRole::Correct => "correct",
            ByzRole::Silent => "silent",
            ByzRole::StaleAck => "stale-ack",
            ByzRole::Fabricator => "fabricator",
            ByzRole::Equivocator => "equivocator",
        }
    }

    /// The faulty role a replica plays in `epoch`, rotated so consecutive
    /// epochs exercise different strategies and different replicas of the
    /// same epoch differ too.
    pub fn for_epoch(epoch: u64, slot: usize) -> ByzRole {
        Self::FAULTY[(epoch as usize + slot) % Self::FAULTY.len()]
    }

    /// Builds a replicated-mode behavior instance for this role. `seed`
    /// feeds the fabricator's forgery stream so runs are reproducible.
    pub fn build(self, id: ServerId, cfg: QuorumConfig, seed: u64) -> Box<dyn ServerBehavior> {
        match self {
            ByzRole::Correct => Box::new(Correct::new(ServerNode::new_replicated(id, cfg))),
            ByzRole::Silent => Box::new(Silent::new(id)),
            ByzRole::StaleAck => {
                Box::new(StaleReplier::new(ServerNode::new_replicated(id, cfg), 1))
            }
            ByzRole::Fabricator => Box::new(Fabricator::new(id, seed)),
            ByzRole::Equivocator => Box::new(Equivocator::new(ServerNode::new_replicated(id, cfg))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safereg_common::ids::{ReaderId, WriterId};
    use safereg_common::msg::OpId;

    fn cfg() -> QuorumConfig {
        QuorumConfig::minimal_bsr(1).unwrap()
    }

    fn put_env(s: u16, num: u64, val: &str) -> Envelope {
        Envelope::to_server(
            ClientId::Writer(WriterId(1)),
            ServerId(s),
            ClientToServer::PutData {
                op: OpId::new(WriterId(1), num),
                tag: Tag::new(num, WriterId(1)),
                payload: Payload::Full(Value::from(val)),
            },
        )
    }

    fn query_env(s: u16) -> Envelope {
        Envelope::to_server(
            ClientId::Reader(ReaderId(0)),
            ServerId(s),
            ClientToServer::QueryData {
                op: OpId::new(ReaderId(0), 1),
            },
        )
    }

    fn data_resp_of(out: &[Envelope]) -> (Tag, Value) {
        match &out[0].msg {
            Message::ToClient(ServerToClient::DataResp { tag, payload, .. }) => {
                (*tag, payload.as_full().unwrap().clone())
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn every_role_builds_and_reports_its_id() {
        let mut roles = vec![ByzRole::Correct];
        roles.extend(ByzRole::FAULTY);
        for role in roles {
            let b = role.build(ServerId(3), cfg(), 7);
            assert_eq!(b.id(), ServerId(3), "{}", role.label());
        }
    }

    #[test]
    fn role_rotation_covers_all_faulty_roles_and_differs_per_slot() {
        let over_epochs: Vec<ByzRole> = (0..4).map(|e| ByzRole::for_epoch(e, 0)).collect();
        assert_eq!(over_epochs, ByzRole::FAULTY.to_vec());
        assert_ne!(ByzRole::for_epoch(0, 0), ByzRole::for_epoch(0, 1));
    }

    #[test]
    fn stale_ack_role_lies_on_reads_but_acks_writes() {
        let mut rng = DetRng::seed_from(0);
        let mut b = ByzRole::StaleAck.build(ServerId(0), cfg(), 0);
        b.on_envelope(0, &put_env(0, 1, "v1"), &mut rng);
        b.on_envelope(1, &put_env(0, 2, "v2"), &mut rng);
        let (tag, v) = data_resp_of(&b.on_envelope(2, &query_env(0), &mut rng));
        assert_eq!(tag, Tag::new(1, WriterId(1)), "lags one entry behind");
        assert_eq!(v.as_bytes(), b"v1");
    }

    #[test]
    fn fabricator_role_is_seed_deterministic() {
        let mut rng = DetRng::seed_from(0);
        let mut a = ByzRole::Fabricator.build(ServerId(1), cfg(), 42);
        let mut b = ByzRole::Fabricator.build(ServerId(1), cfg(), 42);
        let ra = data_resp_of(&a.on_envelope(0, &query_env(1), &mut rng));
        let rb = data_resp_of(&b.on_envelope(0, &query_env(1), &mut rng));
        assert_eq!(ra, rb, "same seed, same forgery");
    }
}
