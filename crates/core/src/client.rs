//! Client façades: long-lived writer/reader handles that mint operations.
//!
//! Protocol operations ([`crate::write::WriteOp`], [`crate::read::BsrReadOp`], …)
//! are one-shot state machines; these façades hold what persists *across*
//! operations — the client's sequence counter and, for readers, the local
//! `(t_local, v_local)` pair of Fig. 2 line 1 — and enforce the model's
//! "at most one operation per client" rule by construction (each call mints
//! a fresh operation; feeding the outcome back is the caller's join point).

use safereg_common::config::QuorumConfig;
use safereg_common::ids::{ReaderId, WriterId};
use safereg_common::tag::Tag;
use safereg_common::value::Value;
use safereg_mds::rs::ReedSolomon;

use crate::bcsr::BcsrReadOp;
use crate::op::OpOutput;
use crate::read::BsrReadOp;
use crate::regular::{Bsr2pReadOp, BsrHReadOp};
use crate::write::WriteOp;

/// A BSR writer client (Fig. 1).
#[derive(Debug, Clone)]
pub struct BsrWriter {
    id: WriterId,
    cfg: QuorumConfig,
    seq: u64,
}

impl BsrWriter {
    /// Creates a writer for a deployment.
    pub fn new(id: WriterId, cfg: QuorumConfig) -> Self {
        BsrWriter { id, cfg, seq: 0 }
    }

    /// This writer's identifier.
    pub fn id(&self) -> WriterId {
        self.id
    }

    /// Mints the next write operation.
    pub fn write(&mut self, value: Value) -> WriteOp {
        self.seq += 1;
        WriteOp::replicated(self.id, self.seq, self.cfg, value)
    }
}

/// Shared reader state: the local pair and sequence counter.
#[derive(Debug, Clone)]
struct ReaderState {
    id: ReaderId,
    cfg: QuorumConfig,
    seq: u64,
    local: (Tag, Value),
}

impl ReaderState {
    fn new(id: ReaderId, cfg: QuorumConfig) -> Self {
        ReaderState {
            id,
            cfg,
            seq: 0,
            local: (Tag::ZERO, Value::initial()),
        }
    }

    /// Folds a completed read's outcome into the local pair (monotone).
    fn absorb(&mut self, out: &OpOutput) {
        if let OpOutput::Read { value, tag } = out {
            if (*tag, value) > (self.local.0, &self.local.1) {
                self.local = (*tag, value.clone());
            }
        }
    }
}

macro_rules! reader_facade {
    ($(#[$doc:meta])* $name:ident => $op:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name {
            state: ReaderState,
        }

        impl $name {
            /// Creates a reader for a deployment.
            pub fn new(id: ReaderId, cfg: QuorumConfig) -> Self {
                $name { state: ReaderState::new(id, cfg) }
            }

            /// This reader's identifier.
            pub fn id(&self) -> ReaderId {
                self.state.id
            }

            /// The reader-local `(t_local, v_local)` pair.
            pub fn local(&self) -> &(Tag, Value) {
                &self.state.local
            }

            /// Mints the next read operation, seeded with the local pair.
            pub fn read(&mut self) -> $op {
                self.state.seq += 1;
                $op::new(self.state.id, self.state.seq, self.state.cfg, self.state.local.clone())
            }

            /// Folds a completed read's outcome back into the local pair.
            pub fn absorb(&mut self, out: &OpOutput) {
                self.state.absorb(out);
            }
        }
    };
}

reader_facade! {
    /// A BSR reader client (Fig. 2): one-shot safe reads.
    BsrReader => BsrReadOp
}

reader_facade! {
    /// A BSR-H reader client (§III-C variant 1): one-shot regular reads
    /// over full histories.
    BsrHReader => BsrHReadOp
}

reader_facade! {
    /// A BSR-2P reader client (§III-C variant 2): two-phase regular reads.
    Bsr2pReader => Bsr2pReadOp
}

/// A BCSR writer client (Fig. 4): erasure-coded writes.
#[derive(Debug, Clone)]
pub struct BcsrWriter {
    id: WriterId,
    cfg: QuorumConfig,
    code: ReedSolomon,
    seq: u64,
}

impl BcsrWriter {
    /// Creates a coded writer.
    ///
    /// # Errors
    ///
    /// Returns the [`safereg_mds::MdsError`] when the configuration admits
    /// no `[n, n − 5f]` code (i.e. `n ≤ 5f`).
    pub fn new(id: WriterId, cfg: QuorumConfig) -> Result<Self, safereg_mds::MdsError> {
        let k = cfg.mds_k().unwrap_or(0);
        let code = ReedSolomon::new(cfg.n(), k)?;
        Ok(BcsrWriter {
            id,
            cfg,
            code,
            seq: 0,
        })
    }

    /// Creates a coded writer with an explicit (possibly under-provisioned)
    /// code — used by the Theorem 6 replay to instantiate BCSR at `n ≤ 5f`
    /// with `k > n − 5f`.
    ///
    /// # Panics
    ///
    /// Panics when `code.n() != cfg.n()`.
    pub fn with_code(id: WriterId, cfg: QuorumConfig, code: ReedSolomon) -> Self {
        assert_eq!(code.n(), cfg.n(), "code length must equal the server count");
        BcsrWriter {
            id,
            cfg,
            code,
            seq: 0,
        }
    }

    /// This writer's identifier.
    pub fn id(&self) -> WriterId {
        self.id
    }

    /// The `[n, k]` code in use.
    pub fn code(&self) -> &ReedSolomon {
        &self.code
    }

    /// Mints the next coded write operation.
    pub fn write(&mut self, value: &Value) -> WriteOp {
        self.seq += 1;
        WriteOp::coded(self.id, self.seq, self.cfg, &self.code, value)
    }
}

/// A BCSR reader client (Fig. 5): one-shot erasure-coded reads.
#[derive(Debug, Clone)]
pub struct BcsrReader {
    id: ReaderId,
    cfg: QuorumConfig,
    code: ReedSolomon,
    seq: u64,
}

impl BcsrReader {
    /// Creates a coded reader.
    ///
    /// # Errors
    ///
    /// Returns the [`safereg_mds::MdsError`] when the configuration admits
    /// no `[n, n − 5f]` code (i.e. `n ≤ 5f`).
    pub fn new(id: ReaderId, cfg: QuorumConfig) -> Result<Self, safereg_mds::MdsError> {
        let k = cfg.mds_k().unwrap_or(0);
        let code = ReedSolomon::new(cfg.n(), k)?;
        Ok(BcsrReader {
            id,
            cfg,
            code,
            seq: 0,
        })
    }

    /// Creates a coded reader with an explicit code (see
    /// [`BcsrWriter::with_code`]).
    ///
    /// # Panics
    ///
    /// Panics when `code.n() != cfg.n()`.
    pub fn with_code(id: ReaderId, cfg: QuorumConfig, code: ReedSolomon) -> Self {
        assert_eq!(code.n(), cfg.n(), "code length must equal the server count");
        BcsrReader {
            id,
            cfg,
            code,
            seq: 0,
        }
    }

    /// This reader's identifier.
    pub fn id(&self) -> ReaderId {
        self.id
    }

    /// Mints the next coded read operation.
    pub fn read(&mut self) -> BcsrReadOp {
        self.seq += 1;
        BcsrReadOp::new(self.id, self.seq, self.cfg, self.code.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::ClientOp;

    fn cfg() -> QuorumConfig {
        QuorumConfig::minimal_bsr(1).unwrap()
    }

    #[test]
    fn writer_sequences_operations() {
        let mut w = BsrWriter::new(WriterId(2), cfg());
        let a = w.write(Value::from("a"));
        let b = w.write(Value::from("b"));
        assert_eq!(a.op_id().seq + 1, b.op_id().seq);
        assert_eq!(w.id(), WriterId(2));
    }

    #[test]
    fn reader_local_pair_is_monotone() {
        let mut r = BsrReader::new(ReaderId(1), cfg());
        assert_eq!(r.local().0, Tag::ZERO);
        r.absorb(&OpOutput::Read {
            value: Value::from("x"),
            tag: Tag::new(3, WriterId(1)),
        });
        assert_eq!(r.local().0, Tag::new(3, WriterId(1)));
        // An older outcome does not regress the pair.
        r.absorb(&OpOutput::Read {
            value: Value::from("old"),
            tag: Tag::new(1, WriterId(1)),
        });
        assert_eq!(r.local().0, Tag::new(3, WriterId(1)));
        // A write outcome is ignored.
        r.absorb(&OpOutput::Written {
            tag: Tag::new(9, WriterId(1)),
        });
        assert_eq!(r.local().0, Tag::new(3, WriterId(1)));
    }

    #[test]
    fn reads_are_seeded_with_the_local_pair() {
        let mut r = BsrReader::new(ReaderId(1), cfg());
        r.absorb(&OpOutput::Read {
            value: Value::from("seed"),
            tag: Tag::new(2, WriterId(1)),
        });
        let op = r.read();
        // The op must return at least the local pair even with no witnesses.
        // (Exercised end-to-end in read.rs tests; here we check the seq.)
        assert_eq!(op.op_id().seq, 1);
        let op2 = r.read();
        assert_eq!(op2.op_id().seq, 2);
    }

    #[test]
    fn bcsr_clients_require_a_valid_code() {
        let bad = QuorumConfig::new(5, 1).unwrap(); // n = 5f: no k
        assert!(BcsrWriter::new(WriterId(0), bad).is_err());
        assert!(BcsrReader::new(ReaderId(0), bad).is_err());

        let good = QuorumConfig::minimal_bcsr(2).unwrap(); // n = 11, k = 1
        let w = BcsrWriter::new(WriterId(0), good).unwrap();
        assert_eq!(w.code().k(), 1);
        assert!(BcsrReader::new(ReaderId(0), good).is_ok());
    }

    #[test]
    fn variant_readers_mint_their_op_types() {
        let mut h = BsrHReader::new(ReaderId(0), cfg());
        let mut p = Bsr2pReader::new(ReaderId(1), cfg());
        assert!(!h.read().is_write());
        assert!(!p.read().is_write());
    }
}
