//! The paper's register emulations, as sans-io state machines.
//!
//! This crate implements the primary contribution of *Semi-Fast
//! Byzantine-tolerant Shared Register without Reliable Broadcast* (Konwar,
//! Kumar, Tseng — ICDCS 2020):
//!
//! * [`server::ServerNode`] — the server of Fig. 3 / Fig. 6 (one
//!   implementation serves every protocol; payloads are opaque),
//! * [`write::WriteOp`] — the two-phase write of Fig. 1 / Fig. 4
//!   (`get-tag` then `put-data`), replicated or erasure-coded,
//! * [`read::BsrReadOp`] — BSR's one-shot read (Fig. 2): wait for `n − f`
//!   responses, trust the highest pair with `f + 1` witnesses,
//! * [`regular::BsrHReadOp`] / [`regular::Bsr2pReadOp`] — the two
//!   regular-register read variants sketched in §III-C (full-history
//!   one-shot reads, and two-phase tag-list + value-fetch reads),
//! * [`bcsr::BcsrReadOp`] — BCSR's one-shot erasure-coded read (Fig. 5)
//!   with error-and-erasure decoding,
//! * [`client`] — small client façades (`BsrWriter`, `BsrReader`, …) that
//!   mint operations and maintain the reader-local `(t_local, v_local)`
//!   cache of Fig. 2 line 1.
//!
//! Every operation implements [`op::ClientOp`]: it emits
//! [`safereg_common::msg::Envelope`]s from `start`/`on_message` and never
//! touches a socket or a clock, so the deterministic simulator and the TCP
//! transport drive identical code.
//!
//! # Quick example (driving BSR by hand)
//!
//! ```
//! use safereg_common::{config::QuorumConfig, ids::{ReaderId, WriterId}, value::Value};
//! use safereg_core::client::{BsrReader, BsrWriter};
//! use safereg_core::op::ClientOp;
//! use safereg_core::server::ServerNode;
//! use safereg_common::msg::Message;
//!
//! let cfg = QuorumConfig::minimal_bsr(1)?; // n = 5, f = 1
//! let mut servers: Vec<ServerNode> =
//!     cfg.servers().map(|id| ServerNode::new_replicated(id, cfg)).collect();
//!
//! // Deliver every envelope synchronously until the op completes.
//! let mut drive = |op: &mut dyn ClientOp, servers: &mut Vec<ServerNode>| {
//!     let mut queue = op.start();
//!     while let Some(env) = queue.pop() {
//!         match env.msg {
//!             Message::ToServer(m) => {
//!                 let sid = env.dst.as_server().unwrap();
//!                 let client = env.src.as_client().unwrap();
//!                 for resp in servers[sid.0 as usize].handle(client, &m) {
//!                     queue.extend(op.on_message(sid, &resp));
//!                 }
//!             }
//!             _ => unreachable!(),
//!         }
//!     }
//! };
//!
//! let mut writer = BsrWriter::new(WriterId(0), cfg);
//! let mut w = writer.write(Value::from("hello"));
//! drive(&mut w, &mut servers);
//! assert!(w.output().is_some());
//!
//! let mut reader = BsrReader::new(ReaderId(0), cfg);
//! let mut r = reader.read();
//! drive(&mut r, &mut servers);
//! let out = r.output().unwrap();
//! assert_eq!(out.read_value().unwrap().as_bytes(), b"hello");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod bcsr;
pub mod behavior;
pub mod client;
pub mod op;
pub mod read;
pub mod regular;
pub mod server;
pub mod write;

pub use bcsr::BcsrReadOp;
pub use behavior::{ByzRole, ServerBehavior};
pub use client::{BcsrReader, BcsrWriter, Bsr2pReader, BsrHReader, BsrReader, BsrWriter};
pub use op::{ClientOp, OpOutput};
pub use read::BsrReadOp;
pub use regular::{Bsr2pReadOp, BsrHReadOp};
pub use server::ServerNode;
pub use write::WriteOp;
