//! The client-operation interface.
//!
//! Every read and write in the workspace is a state machine implementing
//! [`ClientOp`]: the runtime calls [`ClientOp::start`] once, feeds it every
//! server response addressed to the operation, forwards the envelopes it
//! emits, and watches [`ClientOp::output`] for completion. This is the
//! sans-io boundary that lets the deterministic simulator and the TCP
//! transport drive identical protocol code.

use safereg_common::ids::ServerId;
use safereg_common::msg::{Envelope, OpId, ServerToClient};
use safereg_common::tag::Tag;
use safereg_common::value::Value;

pub use safereg_common::history::ReadPath;

/// What a completed operation produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpOutput {
    /// A write completed after fixing this tag.
    Written {
        /// The tag the write installed.
        tag: Tag,
    },
    /// A read completed, returning this value.
    Read {
        /// The value returned to the application.
        value: Value,
        /// The tag associated with the value ([`Tag::ZERO`] for `v_0`).
        tag: Tag,
    },
}

impl OpOutput {
    /// The tag carried by the outcome.
    pub fn tag(&self) -> Tag {
        match self {
            OpOutput::Written { tag } | OpOutput::Read { tag, .. } => *tag,
        }
    }

    /// The value a read returned, if this is a read outcome.
    pub fn read_value(&self) -> Option<&Value> {
        match self {
            OpOutput::Read { value, .. } => Some(value),
            OpOutput::Written { .. } => None,
        }
    }
}

/// A client operation driven by message exchange.
///
/// Contract:
/// * [`ClientOp::start`] is called exactly once and returns the first batch
///   of request envelopes.
/// * [`ClientOp::on_message`] is called for every server→client message the
///   runtime delivers to this client while the operation runs; messages for
///   other operations (mismatched [`OpId`]) are ignored internally, so the
///   runtime may deliver stragglers freely. It may return follow-up
///   envelopes (e.g. the `put-data` phase after `get-tag` completes).
/// * Once [`ClientOp::output`] is `Some`, the operation is complete and no
///   further envelopes will be emitted.
pub trait ClientOp: std::fmt::Debug + Send {
    /// The operation's identifier (echoed by servers).
    fn op_id(&self) -> OpId;

    /// Begins the operation, returning its first messages.
    fn start(&mut self) -> Vec<Envelope>;

    /// Feeds one server response; returns any follow-up messages.
    fn on_message(&mut self, from: ServerId, msg: &ServerToClient) -> Vec<Envelope>;

    /// The outcome, once complete.
    fn output(&self) -> Option<OpOutput>;

    /// Client-to-server round trips used so far (Definition 3).
    fn rounds(&self) -> u32;

    /// `true` for writes, `false` for reads (used by history recording).
    fn is_write(&self) -> bool;

    /// How the read concluded, for semi-fast-path accounting: `Some(Fast)`
    /// when the returned value was freshly witnessed on the protocol's
    /// normal round structure, `Some(Slow)` when it fell back (empty `𝒫`,
    /// stale witnessed best, candidate retries, failed decode). `None`
    /// until [`ClientOp::output`] is `Some`, and always `None` for writes
    /// and for protocols without the fast/slow distinction.
    fn read_path(&self) -> Option<ReadPath> {
        None
    }

    /// Witness/validation failures the operation observed: empty witness
    /// sets, BSR-2P candidates that failed value validation, BCSR decode
    /// attempts that could not be verified. Zero for writes.
    fn validation_failures(&self) -> u32 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safereg_common::ids::WriterId;

    #[test]
    fn output_accessors() {
        let t = Tag::new(3, WriterId(1));
        let w = OpOutput::Written { tag: t };
        assert_eq!(w.tag(), t);
        assert!(w.read_value().is_none());

        let r = OpOutput::Read {
            value: Value::from("v"),
            tag: t,
        };
        assert_eq!(r.tag(), t);
        assert_eq!(r.read_value().unwrap().as_bytes(), b"v");
    }
}
