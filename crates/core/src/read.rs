//! BSR's one-shot read (Fig. 2).
//!
//! The reader sends `QUERY-DATA` to all servers, waits for `n − f`
//! responses, forms the set `𝒫` of `(tag, value)` pairs reported by at
//! least `f + 1` distinct servers (*witnesses*), and returns the highest
//! such pair if it beats the reader-local pair `(t_local, v_local)`;
//! otherwise it returns the most recent value the reader has previously
//! heard of — possibly `v_0` (Fig. 2 lines 5–9).

use std::collections::BTreeMap;

use safereg_common::config::QuorumConfig;
use safereg_common::ids::{ClientId, ReaderId, ServerId};
use safereg_common::msg::{ClientToServer, Envelope, OpId, Payload, ServerToClient};
use safereg_common::tag::Tag;
use safereg_common::value::Value;

use crate::op::{ClientOp, OpOutput, ReadPath};

/// One BSR read operation (Fig. 2).
///
/// The reader-local pair of Fig. 2 line 1 is passed in at construction and
/// the (possibly newer) pair is part of the outcome; [`crate::client::BsrReader`]
/// wires the two together across operations.
#[derive(Debug)]
pub struct BsrReadOp {
    reader: ReaderId,
    op: OpId,
    cfg: QuorumConfig,
    local: (Tag, Value),
    /// First response per server (Byzantine repeats are ignored).
    responses: BTreeMap<ServerId, (Tag, Value)>,
    result: Option<OpOutput>,
    path: Option<ReadPath>,
    rounds: u32,
    threshold: usize,
}

impl BsrReadOp {
    /// Creates a read carrying the reader's current local pair.
    pub fn new(reader: ReaderId, seq: u64, cfg: QuorumConfig, local: (Tag, Value)) -> Self {
        let threshold = cfg.witness_threshold();
        BsrReadOp {
            reader,
            op: OpId::new(reader, seq),
            cfg,
            local,
            responses: BTreeMap::new(),
            result: None,
            path: None,
            rounds: 0,
            threshold,
        }
    }

    /// Overrides the witness threshold (ablation A1 only — the paper's
    /// rule is `f + 1`; `≤ f` admits fabricated values, larger thresholds
    /// lose freshness coverage).
    #[must_use]
    pub fn with_witness_threshold(mut self, threshold: usize) -> Self {
        self.threshold = threshold.max(1);
        self
    }

    fn client(&self) -> ClientId {
        ClientId::Reader(self.reader)
    }

    fn conclude(&mut self) {
        // Tally witnesses per (tag, value) pair — a pair needs f + 1
        // distinct servers vouching for it (Fig. 2 line 5, Lemma 5).
        let mut witnesses: BTreeMap<(Tag, &Value), usize> = BTreeMap::new();
        for (tag, value) in self.responses.values() {
            *witnesses.entry((*tag, value)).or_insert(0) += 1;
        }
        let threshold = self.threshold;
        let best = witnesses
            .iter()
            .rev()
            .find(|(_, count)| **count >= threshold)
            .map(|((tag, value), _)| (*tag, (*value).clone()));

        // Fast path: the returned value is backed by f + 1 witnesses from
        // this very round — either a freshly adopted pair or a witnessed
        // confirmation of the local one. Slow path: 𝒫 was empty or held
        // only pairs staler than the local cache (write concurrency or
        // Byzantine interference, Theorem 3's schedule).
        self.path = Some(match &best {
            Some((t, v)) if (*t, v) >= (self.local.0, &self.local.1) => ReadPath::Fast,
            _ => ReadPath::Slow,
        });
        // Fig. 2 lines 7–9: adopt the verified pair only if it beats the
        // local pair; always return v_local.
        let (tag, value) = match best {
            Some((t, v)) if (t, &v) > (self.local.0, &self.local.1) => (t, v),
            _ => self.local.clone(),
        };
        self.result = Some(OpOutput::Read { value, tag });
    }
}

impl ClientOp for BsrReadOp {
    fn op_id(&self) -> OpId {
        self.op
    }

    fn start(&mut self) -> Vec<Envelope> {
        self.rounds = 1;
        self.cfg
            .servers()
            .map(|sid| {
                Envelope::to_server(
                    self.client(),
                    sid,
                    ClientToServer::QueryData { op: self.op },
                )
            })
            .collect()
    }

    fn on_message(&mut self, from: ServerId, msg: &ServerToClient) -> Vec<Envelope> {
        if self.result.is_some() || msg.op() != self.op {
            return Vec::new();
        }
        if let ServerToClient::DataResp {
            tag,
            payload: Payload::Full(value),
            ..
        } = msg
        {
            self.responses
                .entry(from)
                .or_insert_with(|| (*tag, value.clone()));
            if self.responses.len() >= self.cfg.response_quorum() {
                self.conclude();
            }
        }
        Vec::new()
    }

    fn output(&self) -> Option<OpOutput> {
        self.result.clone()
    }

    fn rounds(&self) -> u32 {
        self.rounds
    }

    fn is_write(&self) -> bool {
        false
    }

    fn read_path(&self) -> Option<ReadPath> {
        self.path
    }

    fn validation_failures(&self) -> u32 {
        u32::from(self.path == Some(ReadPath::Slow))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safereg_common::ids::WriterId;

    fn cfg() -> QuorumConfig {
        QuorumConfig::minimal_bsr(1).unwrap() // n = 5, f = 1, quorum 4, witnesses 2
    }

    fn read_op() -> BsrReadOp {
        BsrReadOp::new(ReaderId(0), 1, cfg(), (Tag::ZERO, Value::initial()))
    }

    fn data(op: OpId, num: u64, w: u16, v: &str) -> ServerToClient {
        ServerToClient::DataResp {
            op,
            tag: Tag::new(num, WriterId(w)),
            payload: Payload::Full(Value::from(v)),
        }
    }

    #[test]
    fn one_round_and_witnessed_value_wins() {
        let mut op = read_op();
        let sent = op.start();
        assert_eq!(sent.len(), 5);

        let id = op.op_id();
        op.on_message(ServerId(0), &data(id, 3, 1, "fresh"));
        op.on_message(ServerId(1), &data(id, 3, 1, "fresh"));
        op.on_message(ServerId(2), &data(id, 1, 1, "old"));
        assert!(op.output().is_none(), "needs n - f = 4 responses");
        op.on_message(ServerId(3), &data(id, 1, 1, "old"));

        let out = op.output().unwrap();
        assert_eq!(out.read_value().unwrap().as_bytes(), b"fresh");
        assert_eq!(out.tag(), Tag::new(3, WriterId(1)));
        assert_eq!(op.rounds(), 1, "one-shot read (Definition 3)");
        assert_eq!(op.read_path(), Some(ReadPath::Fast));
        assert_eq!(op.validation_failures(), 0);
    }

    #[test]
    fn unwitnessed_high_tag_is_rejected() {
        // A single Byzantine server advertises a huge tag; with only one
        // witness it cannot be returned (Lemma 5).
        let mut op = read_op();
        op.start();
        let id = op.op_id();
        op.on_message(ServerId(0), &data(id, u64::MAX, 9, "forged"));
        op.on_message(ServerId(1), &data(id, 2, 1, "real"));
        op.on_message(ServerId(2), &data(id, 2, 1, "real"));
        op.on_message(ServerId(3), &data(id, 2, 1, "real"));
        let out = op.output().unwrap();
        assert_eq!(out.read_value().unwrap().as_bytes(), b"real");
    }

    #[test]
    fn empty_p_falls_back_to_local_pair() {
        // All servers report distinct pairs (the Theorem 3 schedule): 𝒫 is
        // empty and the read returns the local pair.
        let local = (Tag::new(1, WriterId(1)), Value::from("cached"));
        let mut op = BsrReadOp::new(ReaderId(0), 2, cfg(), local);
        op.start();
        let id = op.op_id();
        op.on_message(ServerId(0), &data(id, 2, 1, "a"));
        op.on_message(ServerId(1), &data(id, 2, 2, "b"));
        op.on_message(ServerId(2), &data(id, 2, 3, "c"));
        op.on_message(ServerId(3), &data(id, 2, 4, "d"));
        let out = op.output().unwrap();
        assert_eq!(out.read_value().unwrap().as_bytes(), b"cached");
        assert_eq!(out.tag(), Tag::new(1, WriterId(1)));
        assert_eq!(
            op.read_path(),
            Some(ReadPath::Slow),
            "𝒫 empty: cache fallback"
        );
        assert_eq!(op.validation_failures(), 1);
    }

    #[test]
    fn witnessed_pair_older_than_local_is_not_adopted() {
        let local = (Tag::new(5, WriterId(1)), Value::from("newer"));
        let mut op = BsrReadOp::new(ReaderId(0), 3, cfg(), local);
        op.start();
        let id = op.op_id();
        for i in 0..4u16 {
            op.on_message(ServerId(i), &data(id, 2, 1, "older"));
        }
        let out = op.output().unwrap();
        assert_eq!(out.read_value().unwrap().as_bytes(), b"newer");
        assert_eq!(
            op.read_path(),
            Some(ReadPath::Slow),
            "returned value is not witnessed by this round"
        );
    }

    #[test]
    fn read_path_is_none_until_complete() {
        let mut op = read_op();
        assert_eq!(op.read_path(), None);
        op.start();
        let id = op.op_id();
        op.on_message(ServerId(0), &data(id, 1, 1, "v"));
        assert_eq!(op.read_path(), None, "no quorum yet");
    }

    #[test]
    fn same_tag_different_values_split_witnesses() {
        // Byzantine equivocation: same tag, different values — each variant
        // needs f + 1 witnesses on the exact (tag, value) pair.
        let mut op = read_op();
        op.start();
        let id = op.op_id();
        op.on_message(ServerId(0), &data(id, 4, 1, "x"));
        op.on_message(ServerId(1), &data(id, 4, 1, "y"));
        op.on_message(ServerId(2), &data(id, 1, 1, "base"));
        op.on_message(ServerId(3), &data(id, 1, 1, "base"));
        let out = op.output().unwrap();
        assert_eq!(out.read_value().unwrap().as_bytes(), b"base");
    }

    #[test]
    fn duplicate_server_responses_do_not_double_witness() {
        let mut op = read_op();
        op.start();
        let id = op.op_id();
        op.on_message(ServerId(0), &data(id, 9, 1, "dup"));
        op.on_message(ServerId(0), &data(id, 9, 1, "dup"));
        op.on_message(ServerId(1), &data(id, 0, 0, ""));
        op.on_message(ServerId(2), &data(id, 0, 0, ""));
        assert!(
            op.output().is_none(),
            "three distinct servers responded so far"
        );
        op.on_message(ServerId(3), &data(id, 0, 0, ""));
        let out = op.output().unwrap();
        assert_ne!(out.read_value().unwrap().as_bytes(), b"dup");
    }

    #[test]
    fn coded_payloads_are_not_counted_by_bsr_reader() {
        let mut op = read_op();
        op.start();
        let id = op.op_id();
        let coded = ServerToClient::DataResp {
            op: id,
            tag: Tag::new(1, WriterId(1)),
            payload: Payload::Coded(safereg_common::msg::CodedElement {
                index: 0,
                value_len: 4,
                data: safereg_common::buf::Bytes::from_static(b"el"),
            }),
        };
        op.on_message(ServerId(0), &coded);
        assert!(op.output().is_none());
        for i in 1..5u16 {
            op.on_message(ServerId(i), &data(id, 0, 0, ""));
        }
        assert!(
            op.output().is_some(),
            "quorum formed by well-typed responses"
        );
    }
}
