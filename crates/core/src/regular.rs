//! The two regular-register read variants of §III-C.
//!
//! The paper proves BSR is safe but **not** regular (Theorem 3: a reader
//! can miss a completed write while concurrent writes are in flight) and
//! sketches two fixes:
//!
//! 1. **BSR-H** ([`BsrHReadOp`]): the server sends "the entire history of
//!    writes (`L`) instead of sending just the locally available `(t, v)`
//!    pair". Still a one-shot read; the reader picks the largest pair with
//!    `f + 1` witnesses across the received histories. Because every
//!    correct server that acknowledged a completed write keeps the pair in
//!    its history, at least `n − 3f ≥ f + 1` of any `n − f` responses
//!    contain it, so the result is never staler than the last completed
//!    write.
//!
//! 2. **BSR-2P** ([`Bsr2pReadOp`]): "we make the reads slow" — phase one
//!    fetches a history of all tags, the reader picks the largest tag
//!    verified by `≥ f + 1` servers, and phase two fetches the value
//!    stored under that tag, completing on `f + 1` matching replies. This
//!    implementation adds the fallback the sketch leaves implicit: if a
//!    candidate tag (possibly promoted by Byzantine servers) fails to
//!    gather `f + 1` matching values among `n − f` phase-two responses,
//!    the reader retries with the next-lower candidate; the tag of the
//!    latest completed write always succeeds, so the loop terminates.

use std::collections::{BTreeMap, BTreeSet};

use safereg_common::config::QuorumConfig;
use safereg_common::ids::{ClientId, ReaderId, ServerId};
use safereg_common::msg::{ClientToServer, Envelope, OpId, ServerToClient};
use safereg_common::tag::Tag;
use safereg_common::value::Value;

use crate::op::{ClientOp, OpOutput, ReadPath};

/// BSR-H: one-shot read over full histories (§III-C, first bullet).
#[derive(Debug)]
pub struct BsrHReadOp {
    reader: ReaderId,
    op: OpId,
    cfg: QuorumConfig,
    local: (Tag, Value),
    /// First history per server, deduplicated into a set of pairs.
    histories: BTreeMap<ServerId, BTreeSet<(Tag, Value)>>,
    result: Option<OpOutput>,
    path: Option<ReadPath>,
    rounds: u32,
}

impl BsrHReadOp {
    /// Creates a history read carrying the reader's current local pair.
    pub fn new(reader: ReaderId, seq: u64, cfg: QuorumConfig, local: (Tag, Value)) -> Self {
        BsrHReadOp {
            reader,
            op: OpId::new(reader, seq),
            cfg,
            local,
            histories: BTreeMap::new(),
            result: None,
            path: None,
            rounds: 0,
        }
    }

    fn conclude(&mut self) {
        // Witness counting over pairs, one vote per server regardless of
        // how long (or how padded) its history is.
        let mut witnesses: BTreeMap<&(Tag, Value), usize> = BTreeMap::new();
        for history in self.histories.values() {
            for pair in history {
                *witnesses.entry(pair).or_insert(0) += 1;
            }
        }
        let threshold = self.cfg.witness_threshold();
        let best = witnesses
            .iter()
            .rev()
            .find(|(_, count)| **count >= threshold)
            .map(|(pair, _)| (*pair).clone());
        // Same classification as BSR — fast iff the returned value carries
        // f + 1 witnesses from this round's histories — with one wrinkle:
        // a warm reader queries only the delta above its local pair, so a
        // quorum of *empty* histories is a fresh confirmation that nothing
        // newer exists (fast), not a fallback.
        let all_deltas_empty = self.histories.values().all(BTreeSet::is_empty);
        self.path = Some(match &best {
            Some((t, v)) if (*t, v) >= (self.local.0, &self.local.1) => ReadPath::Fast,
            None if all_deltas_empty => ReadPath::Fast,
            _ => ReadPath::Slow,
        });
        let (tag, value) = match best {
            Some((t, v)) if (t, &v) > (self.local.0, &self.local.1) => (t, v),
            _ => self.local.clone(),
        };
        self.result = Some(OpOutput::Read { value, tag });
    }
}

impl ClientOp for BsrHReadOp {
    fn op_id(&self) -> OpId {
        self.op
    }

    fn start(&mut self) -> Vec<Envelope> {
        self.rounds = 1;
        self.cfg
            .servers()
            .map(|sid| {
                Envelope::to_server(
                    ClientId::Reader(self.reader),
                    sid,
                    ClientToServer::QueryHistory {
                        op: self.op,
                        above: self.local.0,
                    },
                )
            })
            .collect()
    }

    fn on_message(&mut self, from: ServerId, msg: &ServerToClient) -> Vec<Envelope> {
        if self.result.is_some() || msg.op() != self.op {
            return Vec::new();
        }
        if let ServerToClient::HistoryResp { entries, .. } = msg {
            self.histories.entry(from).or_insert_with(|| {
                entries
                    .iter()
                    .filter_map(|(t, p)| p.as_full().map(|v| (*t, v.clone())))
                    .collect()
            });
            if self.histories.len() >= self.cfg.response_quorum() {
                self.conclude();
            }
        }
        Vec::new()
    }

    fn output(&self) -> Option<OpOutput> {
        self.result.clone()
    }

    fn rounds(&self) -> u32 {
        self.rounds
    }

    fn is_write(&self) -> bool {
        false
    }

    fn read_path(&self) -> Option<ReadPath> {
        self.path
    }

    fn validation_failures(&self) -> u32 {
        u32::from(self.path == Some(ReadPath::Slow))
    }
}

#[derive(Debug)]
enum TwoPhase {
    /// Phase 1: collecting tag lists.
    TagList {
        lists: BTreeMap<ServerId, BTreeSet<Tag>>,
    },
    /// Phase 2: fetching the value for `candidates[cursor]`.
    Fetch {
        candidates: Vec<Tag>,
        cursor: usize,
        responses: BTreeMap<ServerId, Option<Value>>,
    },
    Done,
}

/// BSR-2P: the two-phase (slow) regular read (§III-C, second bullet).
#[derive(Debug)]
pub struct Bsr2pReadOp {
    reader: ReaderId,
    op: OpId,
    cfg: QuorumConfig,
    local: (Tag, Value),
    phase: TwoPhase,
    result: Option<OpOutput>,
    path: Option<ReadPath>,
    /// Candidates that failed phase-two validation (Byzantine-promoted tags
    /// or incomplete writes) before the read concluded.
    failed_candidates: u32,
    rounds: u32,
}

impl Bsr2pReadOp {
    /// Creates a two-phase read carrying the reader's current local pair.
    pub fn new(reader: ReaderId, seq: u64, cfg: QuorumConfig, local: (Tag, Value)) -> Self {
        Bsr2pReadOp {
            reader,
            op: OpId::new(reader, seq),
            cfg,
            local,
            phase: TwoPhase::TagList {
                lists: BTreeMap::new(),
            },
            result: None,
            path: None,
            failed_candidates: 0,
            rounds: 0,
        }
    }

    fn client(&self) -> ClientId {
        ClientId::Reader(self.reader)
    }

    fn fetch_envelopes(&self, tag: Tag) -> Vec<Envelope> {
        self.cfg
            .servers()
            .map(|sid| {
                Envelope::to_server(
                    self.client(),
                    sid,
                    ClientToServer::QueryValueAt { op: self.op, tag },
                )
            })
            .collect()
    }

    fn finish(&mut self, tag: Tag, value: Value) {
        // Fast iff the first candidate validated and its pair is what the
        // read returns; retried candidates or a stale validated pair (the
        // reader's own cache is newer but unverified) are the slow path.
        let validated_wins = (tag, &value) >= (self.local.0, &self.local.1);
        self.path = Some(if validated_wins && self.failed_candidates == 0 {
            ReadPath::Fast
        } else {
            ReadPath::Slow
        });
        let (tag, value) = if (tag, &value) > (self.local.0, &self.local.1) {
            (tag, value)
        } else {
            self.local.clone()
        };
        self.phase = TwoPhase::Done;
        self.result = Some(OpOutput::Read { value, tag });
    }

    /// Moves to fetching `candidates[cursor]`, or gives up on the local
    /// pair when the candidate list is exhausted.
    fn advance(&mut self, candidates: Vec<Tag>, cursor: usize) -> Vec<Envelope> {
        match candidates.get(cursor) {
            Some(tag) => {
                let tag = *tag;
                self.phase = TwoPhase::Fetch {
                    candidates,
                    cursor,
                    responses: BTreeMap::new(),
                };
                self.rounds += 1;
                self.fetch_envelopes(tag)
            }
            None => {
                // Candidate list exhausted: give up on the local pair.
                let (tag, value) = self.local.clone();
                self.phase = TwoPhase::Done;
                self.path = Some(ReadPath::Slow);
                self.result = Some(OpOutput::Read { value, tag });
                Vec::new()
            }
        }
    }
}

impl ClientOp for Bsr2pReadOp {
    fn op_id(&self) -> OpId {
        self.op
    }

    fn start(&mut self) -> Vec<Envelope> {
        self.rounds = 1;
        self.cfg
            .servers()
            .map(|sid| {
                Envelope::to_server(
                    self.client(),
                    sid,
                    ClientToServer::QueryTagList { op: self.op },
                )
            })
            .collect()
    }

    fn on_message(&mut self, from: ServerId, msg: &ServerToClient) -> Vec<Envelope> {
        if self.result.is_some() || msg.op() != self.op {
            return Vec::new();
        }
        enum Action {
            None,
            Advance { candidates: Vec<Tag>, cursor: usize },
            Finish { tag: Tag, value: Value },
        }
        let quorum = self.cfg.response_quorum();
        let threshold = self.cfg.witness_threshold();
        let action = match (&mut self.phase, msg) {
            (TwoPhase::TagList { lists }, ServerToClient::TagListResp { tags, .. }) => {
                lists
                    .entry(from)
                    .or_insert_with(|| tags.iter().copied().collect());
                if lists.len() >= quorum {
                    // Candidates: tags vouched for by ≥ f + 1 servers,
                    // tried from the highest down.
                    let mut witnesses: BTreeMap<Tag, usize> = BTreeMap::new();
                    for list in lists.values() {
                        for t in list {
                            *witnesses.entry(*t).or_insert(0) += 1;
                        }
                    }
                    let candidates: Vec<Tag> = witnesses
                        .iter()
                        .rev()
                        .filter(|(_, c)| **c >= threshold)
                        .map(|(t, _)| *t)
                        .collect();
                    Action::Advance {
                        candidates,
                        cursor: 0,
                    }
                } else {
                    Action::None
                }
            }
            (
                TwoPhase::Fetch {
                    candidates,
                    cursor,
                    responses,
                },
                ServerToClient::ValueAtResp { tag, payload, .. },
            ) => {
                let want = candidates[*cursor];
                if *tag != want {
                    Action::None // straggler from a previous candidate
                } else {
                    responses
                        .entry(from)
                        .or_insert_with(|| payload.as_ref().and_then(|p| p.as_full().cloned()));
                    if responses.len() >= quorum {
                        // f + 1 matching values validate the candidate.
                        let mut counts: BTreeMap<&Value, usize> = BTreeMap::new();
                        for v in responses.values().flatten() {
                            *counts.entry(v).or_insert(0) += 1;
                        }
                        let winner = counts
                            .into_iter()
                            .find(|(_, c)| *c >= threshold)
                            .map(|(v, _)| v.clone());
                        match winner {
                            Some(value) => Action::Finish { tag: want, value },
                            None => {
                                // Candidate failed (Byzantine-promoted or an
                                // incomplete write): try the next one.
                                self.failed_candidates += 1;
                                Action::Advance {
                                    candidates: std::mem::take(candidates),
                                    cursor: *cursor + 1,
                                }
                            }
                        }
                    } else {
                        Action::None
                    }
                }
            }
            _ => Action::None,
        };
        match action {
            Action::None => Vec::new(),
            Action::Advance { candidates, cursor } => self.advance(candidates, cursor),
            Action::Finish { tag, value } => {
                self.finish(tag, value);
                Vec::new()
            }
        }
    }

    fn output(&self) -> Option<OpOutput> {
        self.result.clone()
    }

    fn rounds(&self) -> u32 {
        self.rounds
    }

    fn is_write(&self) -> bool {
        false
    }

    fn read_path(&self) -> Option<ReadPath> {
        self.path
    }

    fn validation_failures(&self) -> u32 {
        self.failed_candidates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safereg_common::ids::WriterId;
    use safereg_common::msg::Payload;

    fn cfg() -> QuorumConfig {
        QuorumConfig::minimal_bsr(1).unwrap() // n = 5, f = 1
    }

    fn t(num: u64, w: u16) -> Tag {
        Tag::new(num, WriterId(w))
    }

    fn hist_resp(op: OpId, pairs: &[(Tag, &str)]) -> ServerToClient {
        ServerToClient::HistoryResp {
            op,
            entries: pairs
                .iter()
                .map(|(tag, v)| (*tag, Payload::Full(Value::from(*v))))
                .collect(),
        }
    }

    #[test]
    fn history_read_recovers_buried_completed_write() {
        // The Theorem 3 schedule: each server's *latest* pair differs, but
        // the completed write (1, w1) is in every correct history.
        let mut op = BsrHReadOp::new(ReaderId(0), 1, cfg(), (Tag::ZERO, Value::initial()));
        assert_eq!(op.start().len(), 5);
        let id = op.op_id();
        op.on_message(
            ServerId(1),
            &hist_resp(id, &[(Tag::ZERO, ""), (t(1, 1), "v1"), (t(2, 2), "v2")]),
        );
        op.on_message(
            ServerId(2),
            &hist_resp(id, &[(Tag::ZERO, ""), (t(1, 1), "v1"), (t(2, 3), "v3")]),
        );
        op.on_message(
            ServerId(3),
            &hist_resp(id, &[(Tag::ZERO, ""), (t(1, 1), "v1"), (t(2, 4), "v4")]),
        );
        op.on_message(
            ServerId(4),
            &hist_resp(id, &[(Tag::ZERO, ""), (t(1, 1), "v1"), (t(2, 5), "v5")]),
        );
        let out = op.output().unwrap();
        assert_eq!(out.tag(), t(1, 1));
        assert_eq!(out.read_value().unwrap().as_bytes(), b"v1");
        assert_eq!(op.rounds(), 1, "BSR-H stays one-shot");
        assert_eq!(op.read_path(), Some(ReadPath::Fast));
    }

    #[test]
    fn warm_history_read_queries_only_the_delta() {
        use safereg_common::msg::{ClientToServer, Message};
        // A reader whose local pair is already at (3, w1) asks servers only
        // for newer entries.
        let local = (t(3, 1), Value::from("cached"));
        let mut op = BsrHReadOp::new(ReaderId(0), 2, cfg(), local.clone());
        let sent = op.start();
        for env in &sent {
            match &env.msg {
                Message::ToServer(ClientToServer::QueryHistory { above, .. }) => {
                    assert_eq!(*above, t(3, 1));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        // Empty delta histories: the read returns the local pair.
        let id = op.op_id();
        for i in 0..4u16 {
            op.on_message(ServerId(i), &hist_resp(id, &[]));
        }
        let out = op.output().unwrap();
        assert_eq!(out.tag(), t(3, 1));
        assert_eq!(out.read_value().unwrap().as_bytes(), b"cached");
        assert_eq!(
            op.read_path(),
            Some(ReadPath::Fast),
            "a quorum of empty deltas freshly confirms the local pair"
        );
        assert_eq!(op.validation_failures(), 0);
    }

    #[test]
    fn history_read_ignores_padded_byzantine_history() {
        // A Byzantine server repeats a pair many times in its history; it
        // still counts as one witness.
        let mut op = BsrHReadOp::new(ReaderId(0), 1, cfg(), (Tag::ZERO, Value::initial()));
        op.start();
        let id = op.op_id();
        let fake = [
            (t(9, 9), "forged"),
            (t(9, 9), "forged"),
            (t(9, 9), "forged"),
        ];
        op.on_message(ServerId(0), &hist_resp(id, &fake));
        op.on_message(
            ServerId(1),
            &hist_resp(id, &[(Tag::ZERO, ""), (t(1, 1), "real")]),
        );
        op.on_message(
            ServerId(2),
            &hist_resp(id, &[(Tag::ZERO, ""), (t(1, 1), "real")]),
        );
        op.on_message(
            ServerId(3),
            &hist_resp(id, &[(Tag::ZERO, ""), (t(1, 1), "real")]),
        );
        let out = op.output().unwrap();
        assert_eq!(out.read_value().unwrap().as_bytes(), b"real");
    }

    fn tag_list(op: OpId, tags: &[Tag]) -> ServerToClient {
        ServerToClient::TagListResp {
            op,
            tags: tags.to_vec(),
        }
    }

    fn value_at(op: OpId, tag: Tag, v: Option<&str>) -> ServerToClient {
        ServerToClient::ValueAtResp {
            op,
            tag,
            payload: v.map(|s| Payload::Full(Value::from(s))),
        }
    }

    #[test]
    fn two_phase_read_happy_path() {
        let mut op = Bsr2pReadOp::new(ReaderId(0), 1, cfg(), (Tag::ZERO, Value::initial()));
        assert_eq!(op.start().len(), 5);
        let id = op.op_id();

        // Phase 1: all honest servers vouch for (1, w1).
        for i in 0..3u16 {
            assert!(op
                .on_message(ServerId(i), &tag_list(id, &[Tag::ZERO, t(1, 1)]))
                .is_empty());
        }
        let fetch = op.on_message(ServerId(3), &tag_list(id, &[Tag::ZERO, t(1, 1)]));
        assert_eq!(fetch.len(), 5, "phase 2 queries all servers");

        // Phase 2: f + 1 matching values complete the read.
        op.on_message(ServerId(0), &value_at(id, t(1, 1), Some("v1")));
        op.on_message(ServerId(1), &value_at(id, t(1, 1), Some("v1")));
        op.on_message(ServerId(2), &value_at(id, t(1, 1), Some("v1")));
        op.on_message(ServerId(3), &value_at(id, t(1, 1), Some("v1")));
        let out = op.output().unwrap();
        assert_eq!(out.read_value().unwrap().as_bytes(), b"v1");
        assert_eq!(op.rounds(), 2);
        assert_eq!(
            op.read_path(),
            Some(ReadPath::Fast),
            "first candidate validated: the protocol's normal two rounds"
        );
        assert_eq!(op.validation_failures(), 0);
    }

    #[test]
    fn two_phase_falls_back_past_byzantine_candidate() {
        let mut op = Bsr2pReadOp::new(ReaderId(0), 1, cfg(), (Tag::ZERO, Value::initial()));
        op.start();
        let id = op.op_id();

        // Byzantine server 0 vouches for a bogus high tag; one slow honest
        // server happens to echo it too (it stores an incomplete write), so
        // the bogus tag reaches f + 1 witnesses and becomes a candidate.
        op.on_message(ServerId(0), &tag_list(id, &[t(9, 9), t(1, 1), Tag::ZERO]));
        op.on_message(ServerId(1), &tag_list(id, &[t(9, 9), t(1, 1), Tag::ZERO]));
        op.on_message(ServerId(2), &tag_list(id, &[t(1, 1), Tag::ZERO]));
        let fetch = op.on_message(ServerId(3), &tag_list(id, &[t(1, 1), Tag::ZERO]));
        assert_eq!(fetch.len(), 5, "first candidate is (9, w9)");

        // Phase 2 for (9, w9): only 2 servers produce a value and they
        // disagree → no f+1 match → fall to (1, w1).
        op.on_message(ServerId(0), &value_at(id, t(9, 9), Some("evil")));
        op.on_message(ServerId(1), &value_at(id, t(9, 9), Some("other")));
        op.on_message(ServerId(2), &value_at(id, t(9, 9), None));
        let refetch = op.on_message(ServerId(3), &value_at(id, t(9, 9), None));
        assert_eq!(refetch.len(), 5, "retry with next candidate");

        for i in 0..4u16 {
            op.on_message(ServerId(i), &value_at(id, t(1, 1), Some("v1")));
        }
        let out = op.output().unwrap();
        assert_eq!(out.tag(), t(1, 1));
        assert_eq!(out.read_value().unwrap().as_bytes(), b"v1");
        assert_eq!(op.rounds(), 3, "one extra round for the failed candidate");
        assert_eq!(op.read_path(), Some(ReadPath::Slow), "candidate retried");
        assert_eq!(op.validation_failures(), 1);
    }

    #[test]
    fn two_phase_exhausted_candidates_return_local() {
        let local = (t(2, 2), Value::from("mine"));
        let mut op = Bsr2pReadOp::new(ReaderId(0), 1, cfg(), local);
        op.start();
        let id = op.op_id();
        // Histories agree only on t0.
        for i in 0..4u16 {
            op.on_message(ServerId(i), &tag_list(id, &[Tag::ZERO]));
        }
        // Candidate t0: v0 matches everywhere, but local (2, w2) is newer.
        for i in 0..4u16 {
            op.on_message(ServerId(i), &value_at(id, Tag::ZERO, Some("")));
        }
        let out = op.output().unwrap();
        assert_eq!(out.tag(), t(2, 2));
        assert_eq!(out.read_value().unwrap().as_bytes(), b"mine");
        assert_eq!(
            op.read_path(),
            Some(ReadPath::Slow),
            "returned pair is the unverified local cache"
        );
    }

    #[test]
    fn straggler_value_responses_are_ignored() {
        let mut op = Bsr2pReadOp::new(ReaderId(0), 1, cfg(), (Tag::ZERO, Value::initial()));
        op.start();
        let id = op.op_id();
        for i in 0..4u16 {
            op.on_message(ServerId(i), &tag_list(id, &[Tag::ZERO, t(1, 1)]));
        }
        // Responses tagged for a different candidate are dropped.
        for i in 0..4u16 {
            assert!(op
                .on_message(ServerId(i), &value_at(id, t(7, 7), Some("stale")))
                .is_empty());
        }
        assert!(op.output().is_none());
    }
}
