//! The server of Fig. 3 (BSR) and Fig. 6 (BCSR).
//!
//! One implementation serves every protocol in the workspace because the
//! server never interprets payloads: it keeps the list `L ⊆ T × V` of
//! `(tag, payload)` pairs, answers `QUERY-TAG` with `max L`, stores
//! `PUT-DATA` pairs, acknowledges, and answers the various read queries.
//!
//! ## History retention
//!
//! Fig. 3 line 5 stores an incoming pair only "if `t_in` is higher than the
//! locally available tag". For BSR this is equivalent to storing every pair
//! (the maximum of `L` evolves identically), but for the regular-register
//! variants of §III-C it is **not**: a correct server that already holds a
//! higher tag would drop the pair, and an adversarial schedule can then
//! leave a completed write visible in fewer than `f + 1` histories,
//! breaking the variants' freshness. [`ServerNode`] therefore retains every
//! received pair by default ([`HistoryRetention::All`]); the paper-literal
//! behaviour is available as [`HistoryRetention::MaxOnly`] and the harness's
//! ablation A4 demonstrates the difference.

use std::collections::BTreeMap;

use safereg_common::config::QuorumConfig;
use safereg_common::ids::{ClientId, ServerId};
use safereg_common::msg::{ClientToServer, Payload, ServerToClient};
use safereg_common::tag::Tag;
use safereg_common::value::Value;

/// How much of the write history a server keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HistoryRetention {
    /// Keep every received `(tag, payload)` pair (default; required by the
    /// §III-C regular-register variants).
    #[default]
    All,
    /// Keep a pair only when its tag exceeds the current maximum — the
    /// literal reading of Fig. 3 line 5. Sufficient for BSR/BCSR safety,
    /// insufficient for the regular variants (ablation A4).
    MaxOnly,
    /// Keep at most this many pairs, evicting the smallest tags first.
    /// Bounds memory; keeps the variants fresh as long as the window covers
    /// concurrent writes.
    Window(usize),
}

/// A correct server replica.
///
/// State is exactly Fig. 3 / Fig. 6: the list `L`, initialised with
/// `(t_0, v_0)` (or `(t_0, c_0^s)` for coded deployments).
#[derive(Debug, Clone)]
pub struct ServerNode {
    id: ServerId,
    cfg: QuorumConfig,
    log: BTreeMap<Tag, Payload>,
    retention: HistoryRetention,
}

impl ServerNode {
    /// Creates a replicated-register server holding `(t_0, v_0)` (Fig. 3).
    pub fn new_replicated(id: ServerId, cfg: QuorumConfig) -> Self {
        ServerNode::with_initial(id, cfg, Payload::Full(Value::initial()))
    }

    /// Creates a server with an explicit initial payload — used by BCSR
    /// deployments where server `s` starts with its coded element `c_0^s`
    /// (Fig. 6 state variables).
    pub fn with_initial(id: ServerId, cfg: QuorumConfig, initial: Payload) -> Self {
        let mut log = BTreeMap::new();
        log.insert(Tag::ZERO, initial);
        ServerNode {
            id,
            cfg,
            log,
            retention: HistoryRetention::All,
        }
    }

    /// Sets the history-retention policy (builder style).
    #[must_use]
    pub fn with_retention(mut self, retention: HistoryRetention) -> Self {
        self.retention = retention;
        self
    }

    /// This server's identifier.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// The system configuration the server was deployed with.
    pub fn config(&self) -> &QuorumConfig {
        &self.cfg
    }

    /// The highest tag in `L`.
    pub fn max_tag(&self) -> Tag {
        *self
            .log
            .keys()
            .next_back()
            .expect("log always holds (t0, v0)")
    }

    /// Number of `(tag, payload)` pairs currently stored.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// The payload stored under `tag`, if present.
    pub fn stored(&self, tag: &Tag) -> Option<&Payload> {
        self.log.get(tag)
    }

    /// Total payload bytes stored (the storage-cost metric of §I-C).
    pub fn storage_bytes(&self) -> usize {
        self.log.values().map(Payload::payload_bytes).sum()
    }

    /// Handles one client message, returning the responses to send back to
    /// `from`.
    ///
    /// `QueryDataSub`/`ReadComplete` belong to the RB baseline's relay
    /// servers and yield no response here.
    pub fn handle(&mut self, from: ClientId, msg: &ClientToServer) -> Vec<ServerToClient> {
        let _ = from;
        match msg {
            // get-tag-resp (Fig. 3 line 2): send max{t : (t, *) ∈ L}.
            ClientToServer::QueryTag { op } => {
                vec![ServerToClient::TagResp {
                    op: *op,
                    tag: self.max_tag(),
                }]
            }
            // put-data-resp (Fig. 3 line 4): store, then always ack — the
            // ack must not depend on storing or writes lose liveness.
            ClientToServer::PutData { op, tag, payload } => {
                self.store(*tag, payload.clone());
                vec![ServerToClient::PutAck { op: *op, tag: *tag }]
            }
            // get-data-resp (Fig. 3 line 8): send the pair with the highest
            // local tag.
            ClientToServer::QueryData { op } => {
                let (tag, payload) = self
                    .log
                    .iter()
                    .next_back()
                    .expect("log always holds (t0, v0)");
                vec![ServerToClient::DataResp {
                    op: *op,
                    tag: *tag,
                    payload: payload.clone(),
                }]
            }
            // §III-C variant 1: send the history of writes — only the
            // delta above the reader's local tag (everything at or below
            // it is already covered by the reader's monotone cache).
            ClientToServer::QueryHistory { op, above } => {
                let entries: Vec<(Tag, Payload)> = self
                    .log
                    .range((
                        std::ops::Bound::Excluded(*above),
                        std::ops::Bound::Unbounded,
                    ))
                    .map(|(t, p)| (*t, p.clone()))
                    .collect();
                vec![ServerToClient::HistoryResp { op: *op, entries }]
            }
            // §III-C variant 2 phase 1: a history of all the tags.
            ClientToServer::QueryTagList { op } => {
                vec![ServerToClient::TagListResp {
                    op: *op,
                    tags: self.log.keys().copied().collect(),
                }]
            }
            // §III-C variant 2 phase 2: the write corresponding to tag t.
            ClientToServer::QueryValueAt { op, tag } => {
                vec![ServerToClient::ValueAtResp {
                    op: *op,
                    tag: *tag,
                    payload: self.log.get(tag).cloned(),
                }]
            }
            // RB-baseline subscription messages are not part of the paper's
            // server; the baseline has its own server type.
            ClientToServer::QueryDataSub { .. } | ClientToServer::ReadComplete { .. } => Vec::new(),
        }
    }

    fn store(&mut self, tag: Tag, payload: Payload) {
        match self.retention {
            HistoryRetention::All => {
                self.log.entry(tag).or_insert(payload);
            }
            HistoryRetention::MaxOnly => {
                if tag > self.max_tag() {
                    self.log.insert(tag, payload);
                }
            }
            HistoryRetention::Window(cap) => {
                self.log.entry(tag).or_insert(payload);
                while self.log.len() > cap.max(1) {
                    let smallest = *self.log.keys().next().expect("non-empty");
                    self.log.remove(&smallest);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safereg_common::ids::{ReaderId, WriterId};
    use safereg_common::msg::OpId;

    fn cfg() -> QuorumConfig {
        QuorumConfig::minimal_bsr(1).unwrap()
    }

    fn server() -> ServerNode {
        ServerNode::new_replicated(ServerId(0), cfg())
    }

    fn wop(seq: u64) -> OpId {
        OpId::new(WriterId(1), seq)
    }

    fn rop(seq: u64) -> OpId {
        OpId::new(ReaderId(1), seq)
    }

    fn put(s: &mut ServerNode, seq: u64, num: u64, writer: u16, val: &str) -> Vec<ServerToClient> {
        s.handle(
            ClientId::Writer(WriterId(writer)),
            &ClientToServer::PutData {
                op: OpId::new(WriterId(writer), seq),
                tag: Tag::new(num, WriterId(writer)),
                payload: Payload::Full(Value::from(val)),
            },
        )
    }

    #[test]
    fn initial_state_answers_t0_v0() {
        let mut s = server();
        let resp = s.handle(
            ClientId::Reader(ReaderId(1)),
            &ClientToServer::QueryData { op: rop(1) },
        );
        assert_eq!(
            resp,
            vec![ServerToClient::DataResp {
                op: rop(1),
                tag: Tag::ZERO,
                payload: Payload::Full(Value::initial())
            }]
        );
        assert_eq!(s.max_tag(), Tag::ZERO);
    }

    #[test]
    fn put_data_stores_and_always_acks() {
        let mut s = server();
        assert_eq!(
            put(&mut s, 1, 5, 1, "v5"),
            vec![ServerToClient::PutAck {
                op: wop(1),
                tag: Tag::new(5, WriterId(1))
            }]
        );
        // A lower tag still acks (liveness) and, under All retention, is
        // kept in the history.
        assert_eq!(
            put(&mut s, 2, 3, 2, "v3"),
            vec![ServerToClient::PutAck {
                op: OpId::new(WriterId(2), 2),
                tag: Tag::new(3, WriterId(2))
            }]
        );
        assert_eq!(s.max_tag(), Tag::new(5, WriterId(1)));
        assert_eq!(s.log_len(), 3); // t0 + two writes
    }

    #[test]
    fn query_data_returns_highest_pair() {
        let mut s = server();
        put(&mut s, 1, 1, 1, "a");
        put(&mut s, 2, 2, 1, "b");
        put(&mut s, 3, 1, 2, "c"); // lower than (2, w1)
        let resp = s.handle(
            ClientId::Reader(ReaderId(0)),
            &ClientToServer::QueryData { op: rop(9) },
        );
        match &resp[0] {
            ServerToClient::DataResp { tag, payload, .. } => {
                assert_eq!(*tag, Tag::new(2, WriterId(1)));
                assert_eq!(payload.as_full().unwrap().as_bytes(), b"b");
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn query_tag_reports_maximum() {
        let mut s = server();
        put(&mut s, 1, 7, 1, "x");
        let resp = s.handle(
            ClientId::Writer(WriterId(2)),
            &ClientToServer::QueryTag { op: wop(4) },
        );
        assert_eq!(
            resp,
            vec![ServerToClient::TagResp {
                op: wop(4),
                tag: Tag::new(7, WriterId(1))
            }]
        );
    }

    #[test]
    fn history_and_tag_list_are_ascending() {
        let mut s = server();
        put(&mut s, 1, 2, 1, "b");
        put(&mut s, 2, 1, 1, "a");
        let hist = s.handle(
            ClientId::Reader(ReaderId(0)),
            &ClientToServer::QueryHistory {
                op: rop(1),
                above: Tag::ZERO,
            },
        );
        match &hist[0] {
            ServerToClient::HistoryResp { entries, .. } => {
                let tags: Vec<Tag> = entries.iter().map(|(t, _)| *t).collect();
                // The delta query excludes everything at or below `above`
                // (here Tag::ZERO, so the initial pair is omitted).
                assert_eq!(
                    tags,
                    vec![Tag::new(1, WriterId(1)), Tag::new(2, WriterId(1))]
                );
            }
            other => panic!("unexpected response {other:?}"),
        }
        let list = s.handle(
            ClientId::Reader(ReaderId(0)),
            &ClientToServer::QueryTagList { op: rop(2) },
        );
        match &list[0] {
            ServerToClient::TagListResp { tags, .. } => assert_eq!(tags.len(), 3),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn value_at_returns_exact_entry_or_none() {
        let mut s = server();
        put(&mut s, 1, 4, 1, "val4");
        let hit = s.handle(
            ClientId::Reader(ReaderId(0)),
            &ClientToServer::QueryValueAt {
                op: rop(1),
                tag: Tag::new(4, WriterId(1)),
            },
        );
        match &hit[0] {
            ServerToClient::ValueAtResp {
                payload: Some(p), ..
            } => {
                assert_eq!(p.as_full().unwrap().as_bytes(), b"val4");
            }
            other => panic!("unexpected response {other:?}"),
        }
        let miss = s.handle(
            ClientId::Reader(ReaderId(0)),
            &ClientToServer::QueryValueAt {
                op: rop(2),
                tag: Tag::new(9, WriterId(9)),
            },
        );
        assert!(matches!(
            &miss[0],
            ServerToClient::ValueAtResp { payload: None, .. }
        ));
    }

    #[test]
    fn max_only_retention_drops_lower_tags() {
        let mut s = server().with_retention(HistoryRetention::MaxOnly);
        put(&mut s, 1, 5, 1, "high");
        put(&mut s, 2, 3, 2, "low");
        assert_eq!(s.log_len(), 2); // t0 + high; low dropped
        assert!(s.stored(&Tag::new(3, WriterId(2))).is_none());
        assert_eq!(s.max_tag(), Tag::new(5, WriterId(1)));
    }

    #[test]
    fn windowed_retention_evicts_smallest() {
        let mut s = server().with_retention(HistoryRetention::Window(2));
        put(&mut s, 1, 1, 1, "a");
        put(&mut s, 2, 2, 1, "b");
        put(&mut s, 3, 3, 1, "c");
        assert_eq!(s.log_len(), 2);
        assert!(s.stored(&Tag::ZERO).is_none());
        assert_eq!(s.max_tag(), Tag::new(3, WriterId(1)));
    }

    #[test]
    fn duplicate_tag_keeps_first_payload() {
        let mut s = server();
        put(&mut s, 1, 1, 1, "original");
        put(&mut s, 2, 1, 1, "impostor");
        assert_eq!(
            s.stored(&Tag::new(1, WriterId(1)))
                .unwrap()
                .as_full()
                .unwrap()
                .as_bytes(),
            b"original"
        );
    }

    #[test]
    fn storage_bytes_sums_payloads() {
        let mut s = server();
        put(&mut s, 1, 1, 1, "abcd");
        put(&mut s, 2, 2, 1, "efgh");
        assert_eq!(s.storage_bytes(), 8); // v0 is empty
    }

    #[test]
    fn baseline_messages_are_ignored() {
        let mut s = server();
        assert!(s
            .handle(
                ClientId::Reader(ReaderId(0)),
                &ClientToServer::QueryDataSub { op: rop(1) }
            )
            .is_empty());
        assert!(s
            .handle(
                ClientId::Reader(ReaderId(0)),
                &ClientToServer::ReadComplete { op: rop(1) }
            )
            .is_empty());
    }
}
