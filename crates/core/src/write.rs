//! The two-phase write of Fig. 1 (BSR) and Fig. 4 (BCSR).
//!
//! Phase `get-tag`: query all servers, wait for `n − f` responses, select
//! the `(f+1)`-th highest tag (discarding up to `f` Byzantine-inflated
//! tags). Phase `put-data`: increment the tag's number, send the payload —
//! the full value to every server for BSR, coded element `c_i = Φ_i(v)` to
//! server `i` for BCSR — and wait for `n − f` acknowledgements.

use std::collections::{BTreeMap, BTreeSet};

use safereg_common::config::QuorumConfig;
use safereg_common::ids::{ClientId, ServerId, WriterId};
use safereg_common::msg::{ClientToServer, CodedElement, Envelope, OpId, Payload, ServerToClient};
use safereg_common::tag::{select_f1_highest, Tag};
use safereg_common::value::Value;
use safereg_mds::rs::ReedSolomon;
use safereg_mds::stripe::encode_value;

use crate::op::{ClientOp, OpOutput};

/// What the write stores at each server.
///
/// Both variants are zero-copy fan-outs: the replicated value clones a
/// shared [`Bytes`](safereg_common::buf::Bytes) buffer per envelope, and
/// the coded elements are all O(1) slices of a single arena built by
/// [`encode_value`] — encoding once and slicing per destination, so `n`
/// `put-data` envelopes share one payload allocation.
#[derive(Debug, Clone)]
enum WriteKind {
    /// The same full value to every server (BSR).
    Replicated(Value),
    /// Element `i` to server `i` (BCSR); `elements.len() == n`.
    Coded(Vec<CodedElement>),
}

/// How the `get-tag` phase picks its base tag.
///
/// The paper's rule is [`TagSelection::Robust`]; [`TagSelection::Max`]
/// exists only for ablation A2, which demonstrates that taking the maximum
/// lets a single Byzantine server inflate the register's tag space
/// unboundedly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TagSelection {
    /// The `(f+1)`-th highest collected tag (Fig. 1 line 4).
    #[default]
    Robust,
    /// The maximum collected tag — vulnerable to tag inflation (A2).
    Max,
}

#[derive(Debug)]
enum Phase {
    GetTag { tags: BTreeMap<ServerId, Tag> },
    PutData { tag: Tag, acks: BTreeSet<ServerId> },
    Done { tag: Tag },
}

/// A write operation (Fig. 1 / Fig. 4), usable for BSR and BCSR.
///
/// # Examples
///
/// ```
/// use safereg_common::{config::QuorumConfig, ids::WriterId, value::Value};
/// use safereg_core::{op::ClientOp, write::WriteOp};
///
/// let cfg = QuorumConfig::minimal_bsr(1)?;
/// let mut op = WriteOp::replicated(WriterId(0), 1, cfg, Value::from("v"));
/// let first = op.start();
/// assert_eq!(first.len(), cfg.n()); // QUERY-TAG to every server
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct WriteOp {
    writer: WriterId,
    op: OpId,
    cfg: QuorumConfig,
    kind: WriteKind,
    phase: Phase,
    rounds: u32,
    selection: TagSelection,
    /// Servers the `put-data` phase contacts (ablation A5; default `n`).
    fanout: usize,
}

impl WriteOp {
    /// Creates a replicated write (BSR, Fig. 1).
    pub fn replicated(writer: WriterId, seq: u64, cfg: QuorumConfig, value: Value) -> Self {
        WriteOp {
            writer,
            op: OpId::new(writer, seq),
            cfg,
            kind: WriteKind::Replicated(value),
            phase: Phase::GetTag {
                tags: BTreeMap::new(),
            },
            rounds: 0,
            selection: TagSelection::Robust,
            fanout: cfg.n(),
        }
    }

    /// Overrides the tag-selection rule (ablation A2 only — the default is
    /// the paper's robust rule).
    #[must_use]
    pub fn with_tag_selection(mut self, selection: TagSelection) -> Self {
        self.selection = selection;
        self
    }

    /// Restricts the `put-data` fan-out to the first `m` servers, waiting
    /// for `m − f` acknowledgements (ablation A5 only — the paper's write
    /// contacts all `n` servers; Lemma 7 proves `m ≥ 3f` is necessary and
    /// the ablation shows `m < n` already costs safety or liveness).
    #[must_use]
    pub fn with_fanout(mut self, m: usize) -> Self {
        self.fanout = m.clamp(1, self.cfg.n());
        self
    }

    /// Creates an erasure-coded write (BCSR, Fig. 4): the value is encoded
    /// up front into `n` coded elements with the given `[n, k]` code.
    ///
    /// # Panics
    ///
    /// Panics when `code.n() != cfg.n()` — a deployment wiring bug.
    pub fn coded(
        writer: WriterId,
        seq: u64,
        cfg: QuorumConfig,
        code: &ReedSolomon,
        value: &Value,
    ) -> Self {
        assert_eq!(code.n(), cfg.n(), "code length must equal the server count");
        WriteOp {
            writer,
            op: OpId::new(writer, seq),
            cfg,
            kind: WriteKind::Coded(encode_value(code, value)),
            phase: Phase::GetTag {
                tags: BTreeMap::new(),
            },
            rounds: 0,
            selection: TagSelection::Robust,
            fanout: cfg.n(),
        }
    }

    fn client(&self) -> ClientId {
        ClientId::Writer(self.writer)
    }

    fn put_data_envelopes(&self, tag: Tag) -> Vec<Envelope> {
        self.cfg
            .servers()
            .take(self.fanout)
            .map(|sid| {
                let payload = match &self.kind {
                    WriteKind::Replicated(v) => Payload::Full(v.clone()),
                    WriteKind::Coded(elements) => Payload::Coded(elements[sid.0 as usize].clone()),
                };
                Envelope::to_server(
                    self.client(),
                    sid,
                    ClientToServer::PutData {
                        op: self.op,
                        tag,
                        payload,
                    },
                )
            })
            .collect()
    }

    /// The tag this write installed, once `put-data` began.
    pub fn tag(&self) -> Option<Tag> {
        match &self.phase {
            Phase::GetTag { .. } => None,
            Phase::PutData { tag, .. } | Phase::Done { tag } => Some(*tag),
        }
    }
}

impl ClientOp for WriteOp {
    fn op_id(&self) -> OpId {
        self.op
    }

    fn start(&mut self) -> Vec<Envelope> {
        self.rounds = 1;
        self.cfg
            .servers()
            .map(|sid| {
                Envelope::to_server(self.client(), sid, ClientToServer::QueryTag { op: self.op })
            })
            .collect()
    }

    fn on_message(&mut self, from: ServerId, msg: &ServerToClient) -> Vec<Envelope> {
        if msg.op() != self.op {
            return Vec::new();
        }
        match (&mut self.phase, msg) {
            (Phase::GetTag { tags }, ServerToClient::TagResp { tag, .. }) => {
                // First response per server counts; Byzantine repeats are
                // ignored.
                tags.entry(from).or_insert(*tag);
                if tags.len() >= self.cfg.response_quorum() {
                    // Fig. 1 line 4: the (f+1)-th highest tag, then line 6:
                    // (t.num + 1, w).
                    let collected: Vec<Tag> = tags.values().copied().collect();
                    let base = match self.selection {
                        TagSelection::Robust => select_f1_highest(&collected, self.cfg.f()),
                        TagSelection::Max => collected.iter().copied().max().unwrap_or(Tag::ZERO),
                    };
                    let tag = base.next_for(self.writer);
                    self.phase = Phase::PutData {
                        tag,
                        acks: BTreeSet::new(),
                    };
                    self.rounds += 1;
                    return self.put_data_envelopes(tag);
                }
                Vec::new()
            }
            (Phase::PutData { tag, acks }, ServerToClient::PutAck { tag: acked, .. }) => {
                if acked == tag {
                    acks.insert(from);
                    // The paper's threshold is n − f; a reduced fan-out
                    // (ablation A5) waits for m − f of its m targets.
                    let needed = self
                        .cfg
                        .response_quorum()
                        .min(self.fanout.saturating_sub(self.cfg.f()).max(1));
                    if acks.len() >= needed {
                        self.phase = Phase::Done { tag: *tag };
                    }
                }
                Vec::new()
            }
            // Stragglers from a superseded phase or foreign messages.
            _ => Vec::new(),
        }
    }

    fn output(&self) -> Option<OpOutput> {
        match &self.phase {
            Phase::Done { tag } => Some(OpOutput::Written { tag: *tag }),
            _ => None,
        }
    }

    fn rounds(&self) -> u32 {
        self.rounds
    }

    fn is_write(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safereg_common::msg::Message;

    fn cfg() -> QuorumConfig {
        QuorumConfig::minimal_bsr(1).unwrap() // n = 5, f = 1
    }

    fn tag_resp(op: OpId, tag: Tag) -> ServerToClient {
        ServerToClient::TagResp { op, tag }
    }

    #[test]
    fn two_phases_and_completion() {
        let cfg = cfg();
        let mut op = WriteOp::replicated(WriterId(3), 1, cfg, Value::from("hello"));
        let queries = op.start();
        assert_eq!(queries.len(), 5);
        assert!(queries
            .iter()
            .all(|e| matches!(&e.msg, Message::ToServer(ClientToServer::QueryTag { .. }))));

        // n − f = 4 tag responses trigger put-data.
        let mut puts = Vec::new();
        for i in 0..4u16 {
            puts = op.on_message(ServerId(i), &tag_resp(op.op_id(), Tag::ZERO));
            if !puts.is_empty() {
                break;
            }
        }
        assert_eq!(puts.len(), 5, "put-data goes to all servers");
        assert_eq!(op.tag(), Some(Tag::new(1, WriterId(3))));
        assert!(op.output().is_none());

        for i in 0..4u16 {
            op.on_message(
                ServerId(i),
                &ServerToClient::PutAck {
                    op: op.op_id(),
                    tag: Tag::new(1, WriterId(3)),
                },
            );
        }
        assert_eq!(
            op.output(),
            Some(OpOutput::Written {
                tag: Tag::new(1, WriterId(3))
            })
        );
        assert_eq!(op.rounds(), 2);
        assert!(op.is_write());
    }

    #[test]
    fn byzantine_tag_inflation_is_discarded() {
        let cfg = cfg();
        let mut op = WriteOp::replicated(WriterId(1), 1, cfg, Value::from("x"));
        op.start();
        // One Byzantine server reports a huge tag; the (f+1)-th highest of
        // the 4 collected tags must ignore it.
        op.on_message(
            ServerId(0),
            &tag_resp(op.op_id(), Tag::new(u64::MAX - 1, WriterId(9))),
        );
        op.on_message(ServerId(1), &tag_resp(op.op_id(), Tag::new(4, WriterId(2))));
        op.on_message(ServerId(2), &tag_resp(op.op_id(), Tag::new(3, WriterId(2))));
        op.on_message(ServerId(3), &tag_resp(op.op_id(), Tag::ZERO));
        assert_eq!(op.tag(), Some(Tag::new(5, WriterId(1)))); // 4 + 1, not MAX
    }

    #[test]
    fn duplicate_responses_from_one_server_count_once() {
        let cfg = cfg();
        let mut op = WriteOp::replicated(WriterId(1), 1, cfg, Value::from("x"));
        op.start();
        for _ in 0..10 {
            assert!(op
                .on_message(ServerId(0), &tag_resp(op.op_id(), Tag::ZERO))
                .is_empty());
        }
        assert!(op.tag().is_none(), "one server cannot form a quorum alone");
    }

    #[test]
    fn acks_for_wrong_tag_are_ignored() {
        let cfg = cfg();
        let mut op = WriteOp::replicated(WriterId(1), 1, cfg, Value::from("x"));
        op.start();
        for i in 0..4u16 {
            op.on_message(ServerId(i), &tag_resp(op.op_id(), Tag::ZERO));
        }
        let wrong = Tag::new(99, WriterId(9));
        for i in 0..5u16 {
            op.on_message(
                ServerId(i),
                &ServerToClient::PutAck {
                    op: op.op_id(),
                    tag: wrong,
                },
            );
        }
        assert!(op.output().is_none());
    }

    #[test]
    fn foreign_op_ids_are_ignored() {
        let cfg = cfg();
        let mut op = WriteOp::replicated(WriterId(1), 7, cfg, Value::from("x"));
        op.start();
        let foreign = OpId::new(WriterId(1), 6);
        for i in 0..5u16 {
            op.on_message(ServerId(i), &tag_resp(foreign, Tag::new(3, WriterId(2))));
        }
        assert!(op.tag().is_none());
    }

    #[test]
    fn reduced_fanout_contacts_fewer_servers() {
        let cfg = cfg();
        let mut op = WriteOp::replicated(WriterId(1), 1, cfg, Value::from("x")).with_fanout(3);
        op.start();
        let mut puts = Vec::new();
        for i in 0..4u16 {
            let out = op.on_message(ServerId(i), &tag_resp(op.op_id(), Tag::ZERO));
            if !out.is_empty() {
                puts = out;
            }
        }
        assert_eq!(puts.len(), 3, "put-data goes to only m servers");
        // Completion at m - f = 2 acks.
        let tag = op.tag().unwrap();
        op.on_message(
            ServerId(0),
            &ServerToClient::PutAck {
                op: op.op_id(),
                tag,
            },
        );
        assert!(op.output().is_none());
        op.on_message(
            ServerId(1),
            &ServerToClient::PutAck {
                op: op.op_id(),
                tag,
            },
        );
        assert!(op.output().is_some());
    }

    #[test]
    fn coded_write_sends_distinct_elements() {
        let cfg = QuorumConfig::minimal_bcsr(1).unwrap(); // n = 6, k = 1
        let code = ReedSolomon::new(6, 1).unwrap();
        let mut op = WriteOp::coded(WriterId(0), 1, cfg, &code, &Value::from("data"));
        op.start();
        let mut puts = Vec::new();
        for i in 0..5u16 {
            let out = op.on_message(ServerId(i), &tag_resp(op.op_id(), Tag::ZERO));
            if !out.is_empty() {
                puts = out;
                break;
            }
        }
        assert_eq!(puts.len(), 6);
        let mut seen = std::collections::BTreeSet::new();
        for env in &puts {
            match &env.msg {
                Message::ToServer(ClientToServer::PutData {
                    payload: Payload::Coded(c),
                    ..
                }) => {
                    let sid = env.dst.as_server().unwrap();
                    assert_eq!(c.index, sid.0, "element i goes to server i");
                    seen.insert(c.index);
                }
                other => panic!("unexpected message {other:?}"),
            }
        }
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn coded_put_data_payloads_share_one_arena() {
        let cfg = QuorumConfig::minimal_bcsr(1).unwrap();
        let code = ReedSolomon::new(6, 1).unwrap();
        let value = Value::from(vec![9u8; 30]);
        let mut op = WriteOp::coded(WriterId(0), 1, cfg, &code, &value);
        op.start();
        let mut puts = Vec::new();
        for i in 0..5u16 {
            let out = op.on_message(ServerId(i), &tag_resp(op.op_id(), Tag::ZERO));
            if !out.is_empty() {
                puts = out;
                break;
            }
        }
        // Every fragment's bytes live in one contiguous arena: the
        // envelopes' payloads are slices, not per-server allocations.
        let ptrs: Vec<usize> = puts
            .iter()
            .map(|env| match &env.msg {
                Message::ToServer(ClientToServer::PutData {
                    payload: Payload::Coded(c),
                    ..
                }) => c.data.as_ref().as_ptr() as usize,
                other => panic!("unexpected message {other:?}"),
            })
            .collect();
        let frag_len = 30usize.div_ceil(1); // ⌈value_len / k⌉ with k = 1
        let base = ptrs[0];
        for (i, p) in ptrs.iter().enumerate() {
            assert_eq!(*p, base + i * frag_len, "fragment {i} not in the arena");
        }
    }
}
