//! Property-based tests for the protocol state machines.
//!
//! These drive operations directly against server nodes with randomized
//! response orderings, response subsets and interleavings — the degrees of
//! freedom the asynchronous network has — and assert the protocol-level
//! postconditions.
//!
//! The always-on suite derives every degree of freedom from the
//! deterministic [`DetRng`] (reproducible from the seeds below,
//! shrinking-free); the original proptest suite sits behind the
//! off-by-default `proptests` feature.

use safereg_common::config::QuorumConfig;
use safereg_common::ids::{ClientId, ReaderId, ServerId, WriterId};
use safereg_common::msg::{ClientToServer, Envelope, Message, OpId, Payload, ServerToClient};
use safereg_common::rng::DetRng;
use safereg_common::tag::Tag;
use safereg_common::value::Value;
use safereg_core::client::{BsrReader, BsrWriter};
use safereg_core::op::ClientOp;
use safereg_core::server::ServerNode;

/// Drives an op against the servers, delivering messages in an order
/// chosen by `order_seed`, with servers in `silent` never responding.
fn drive(op: &mut dyn ClientOp, servers: &mut [ServerNode], silent: &[usize], order_seed: u64) {
    let mut rng = DetRng::seed_from(order_seed);
    let mut queue: Vec<Envelope> = op.start();
    let mut guard = 0;
    while !queue.is_empty() {
        guard += 1;
        assert!(guard < 10_000, "runaway exchange");
        let idx = rng.index(queue.len());
        let env = queue.swap_remove(idx);
        match (&env.dst, &env.msg) {
            (dst, Message::ToServer(m)) => {
                let sid = dst.as_server().unwrap();
                if silent.contains(&(sid.0 as usize)) {
                    continue;
                }
                let from = env.src.as_client().unwrap();
                for resp in servers[sid.0 as usize].handle(from, m) {
                    queue.push(Envelope::to_client(sid, from, resp));
                }
            }
            (_, Message::ToClient(m)) => {
                let sid = env.src.as_server().unwrap();
                queue.extend(op.on_message(sid, m));
            }
            _ => unreachable!("core protocols exchange only client/server messages"),
        }
    }
}

fn cluster(cfg: QuorumConfig) -> Vec<ServerNode> {
    cfg.servers()
        .map(|sid| ServerNode::new_replicated(sid, cfg))
        .collect()
}

#[test]
fn write_completes_and_increments_under_any_order() {
    let mut rng = DetRng::seed_from(0x0B5E_0001);
    for _ in 0..64 {
        let order = rng.next_u64();
        let f = 1 + rng.index(2);
        let cfg = QuorumConfig::minimal_bsr(f).unwrap();
        let mut servers = cluster(cfg);
        let silent = [rng.index(cfg.n())];

        let mut writer = BsrWriter::new(WriterId(0), cfg);
        let mut op1 = writer.write(Value::from("first"));
        drive(&mut op1, &mut servers, &silent, order);
        let t1 = op1.output().expect("write 1 completes").tag();
        assert_eq!(t1, Tag::new(1, WriterId(0)));

        let mut op2 = writer.write(Value::from("second"));
        drive(&mut op2, &mut servers, &silent, order.wrapping_add(1));
        let t2 = op2.output().expect("write 2 completes").tag();
        assert_eq!(t2, Tag::new(2, WriterId(0)));
    }
}

#[test]
fn read_after_write_returns_it_under_any_order() {
    let mut rng = DetRng::seed_from(0x0B5E_0002);
    for _ in 0..64 {
        let order = rng.next_u64();
        let f = 1 + rng.index(2);
        let cfg = QuorumConfig::minimal_bsr(f).unwrap();
        let mut servers = cluster(cfg);
        // Different silent server per phase: the adversary may crash-stop
        // any single server, and reads must still find f + 1 witnesses.
        let silent_w = [rng.index(cfg.n())];
        let silent_r = [rng.index(cfg.n())];

        let mut writer = BsrWriter::new(WriterId(1), cfg);
        let mut w = writer.write(Value::from("durable"));
        drive(&mut w, &mut servers, &silent_w, order);
        assert!(w.output().is_some());

        let mut reader = BsrReader::new(ReaderId(0), cfg);
        let mut r = reader.read();
        drive(&mut r, &mut servers, &silent_r, order.wrapping_add(7));
        let out = r.output().expect("read completes");
        assert_eq!(out.read_value().unwrap().as_bytes(), b"durable");
        assert_eq!(out.tag(), Tag::new(1, WriterId(1)));
    }
}

#[test]
fn concurrent_writers_get_distinct_increasing_tags() {
    let mut rng = DetRng::seed_from(0x0B5E_0003);
    for _ in 0..64 {
        let order = rng.next_u64();
        let writer_count = 2 + rng.index(3);
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let mut servers = cluster(cfg);
        let mut tags = Vec::new();
        // Writers run one after another here (sequential interleaving is
        // one legal schedule); tags must strictly increase across writers.
        for w in 0..writer_count {
            let mut writer = BsrWriter::new(WriterId(w as u16), cfg);
            let mut op = writer.write(Value::from(format!("v{w}").into_bytes()));
            drive(&mut op, &mut servers, &[], order.wrapping_add(w as u64));
            tags.push(op.output().unwrap().tag());
        }
        for pair in tags.windows(2) {
            assert!(pair[1] > pair[0], "tags must grow: {tags:?}");
        }
    }
}

#[test]
fn server_log_is_monotone_in_max_tag() {
    let mut rng = DetRng::seed_from(0x0B5E_0004);
    for _ in 0..64 {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let mut server = ServerNode::new_replicated(ServerId(0), cfg);
        let mut max_seen = Tag::ZERO;
        let puts = 1 + rng.index(29);
        for i in 0..puts {
            let num = 1 + rng.range_u64(0..19);
            let writer = rng.index(4) as u16;
            let byte = rng.next_u64() as u8;
            let tag = Tag::new(num, WriterId(writer));
            server.handle(
                ClientId::Writer(WriterId(writer)),
                &ClientToServer::PutData {
                    op: OpId::new(WriterId(writer), i as u64),
                    tag,
                    payload: Payload::Full(Value::from(vec![byte])),
                },
            );
            max_seen = max_seen.max(tag);
            assert_eq!(server.max_tag(), max_seen);
        }
    }
}

#[test]
fn reader_never_returns_unwitnessed_data() {
    let mut rng = DetRng::seed_from(0x0B5E_0005);
    for _ in 0..64 {
        // Feed arbitrary (server, tag, value) responses; whatever the read
        // returns must either be the local pair or have had f + 1 distinct
        // servers vouching for the exact (tag, value).
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let mut reader = BsrReader::new(ReaderId(0), cfg);
        let mut op = reader.read();
        op.start();
        let id = op.op_id();
        // The op counts only the first response per server while the
        // operation is still running; mirror that exactly.
        let mut first: std::collections::BTreeMap<u16, (Tag, Vec<u8>)> =
            std::collections::BTreeMap::new();
        let responses = 4 + rng.index(8);
        for _ in 0..responses {
            let sid = rng.index(5) as u16;
            let num = rng.range_u64(0..4);
            let byte = rng.next_u64() as u8;
            let tag = Tag::new(num, WriterId(0));
            let value = vec![byte];
            if op.output().is_none() {
                first.entry(sid).or_insert_with(|| (tag, value.clone()));
            }
            op.on_message(
                ServerId(sid),
                &ServerToClient::DataResp {
                    op: id,
                    tag,
                    payload: Payload::Full(Value::from(value)),
                },
            );
        }
        if let Some(out) = op.output() {
            let v = out.read_value().unwrap();
            if !v.is_initial() {
                let key = (out.tag(), v.as_bytes().to_vec());
                let witnesses = first
                    .values()
                    .filter(|(t, val)| *t == key.0 && *val == key.1)
                    .count();
                assert!(
                    witnesses >= cfg.witness_threshold(),
                    "returned {key:?} with only {witnesses} witnesses"
                );
            }
        }
    }
}

/// Original proptest suite; requires re-adding `proptest` as a
/// dev-dependency (see the `proptests` feature note in Cargo.toml).
#[cfg(feature = "proptests")]
mod proptest_suite {
    use proptest::prelude::*;
    use safereg_common::config::QuorumConfig;
    use safereg_common::ids::{ReaderId, WriterId};
    use safereg_common::tag::Tag;
    use safereg_common::value::Value;
    use safereg_core::client::BsrWriter;
    use safereg_core::op::ClientOp;

    use super::{cluster, drive};

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn write_completes_and_increments_under_any_order(
            order in any::<u64>(),
            f in 1usize..3,
            silent_pick in any::<u64>(),
        ) {
            let cfg = QuorumConfig::minimal_bsr(f).unwrap();
            let mut servers = cluster(cfg);
            let silent = [(silent_pick % cfg.n() as u64) as usize];

            let mut writer = BsrWriter::new(WriterId(0), cfg);
            let mut op1 = writer.write(Value::from("first"));
            drive(&mut op1, &mut servers, &silent, order);
            let t1 = op1.output().expect("write 1 completes").tag();
            prop_assert_eq!(t1, Tag::new(1, WriterId(0)));

            let mut op2 = writer.write(Value::from("second"));
            drive(&mut op2, &mut servers, &silent, order.wrapping_add(1));
            let t2 = op2.output().expect("write 2 completes").tag();
            prop_assert_eq!(t2, Tag::new(2, WriterId(0)));
        }

        #[test]
        fn read_after_write_returns_it_under_any_order(
            order in any::<u64>(),
            f in 1usize..3,
            silent_pick in any::<u64>(),
        ) {
            use safereg_core::client::BsrReader;
            let cfg = QuorumConfig::minimal_bsr(f).unwrap();
            let mut servers = cluster(cfg);
            let silent_w = [(silent_pick % cfg.n() as u64) as usize];
            let silent_r = [((silent_pick >> 8) % cfg.n() as u64) as usize];

            let mut writer = BsrWriter::new(WriterId(1), cfg);
            let mut w = writer.write(Value::from("durable"));
            drive(&mut w, &mut servers, &silent_w, order);
            prop_assert!(w.output().is_some());

            let mut reader = BsrReader::new(ReaderId(0), cfg);
            let mut r = reader.read();
            drive(&mut r, &mut servers, &silent_r, order.wrapping_add(7));
            let out = r.output().expect("read completes");
            prop_assert_eq!(out.read_value().unwrap().as_bytes(), b"durable");
            prop_assert_eq!(out.tag(), Tag::new(1, WriterId(1)));
        }
    }
}
