//! Authenticated message frames.
//!
//! [`AuthCodec`] seals a payload as `payload || HMAC(key, payload)` and
//! opens only frames whose MAC verifies. The TCP transport wraps every wire
//! message in such a frame, giving the point-to-point authenticity the
//! paper's model assumes of its channels.

use safereg_common::buf::Bytes;

use crate::hmac::HmacSha256;
use crate::keychain::Key;
use crate::sha256::DIGEST_LEN;

/// Error returned when opening a frame fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthError {
    /// The frame was shorter than a MAC.
    TooShort {
        /// Observed frame length.
        len: usize,
    },
    /// The MAC did not verify — the frame was forged or corrupted.
    BadMac,
}

impl std::fmt::Display for AuthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuthError::TooShort { len } => {
                write!(f, "frame of {len} bytes is shorter than a MAC")
            }
            AuthError::BadMac => write!(f, "message authentication code mismatch"),
        }
    }
}

impl std::error::Error for AuthError {}

/// Seals and opens MAC-authenticated frames under one link key.
///
/// # Examples
///
/// ```
/// use safereg_crypto::{auth::AuthCodec, keychain::KeyChain};
/// use safereg_common::ids::{NodeId, ServerId, WriterId};
///
/// let chain = KeyChain::from_master_seed(b"seed");
/// let key = chain.pair_key(NodeId::from(ServerId(0)), NodeId::from(WriterId(0)));
/// let codec = AuthCodec::new(key);
///
/// let frame = codec.seal(b"PUT-DATA");
/// assert_eq!(codec.open(&frame)?, b"PUT-DATA");
/// # Ok::<(), safereg_crypto::auth::AuthError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AuthCodec {
    key: Key,
}

impl AuthCodec {
    /// Creates a codec for one link key.
    pub fn new(key: Key) -> Self {
        AuthCodec { key }
    }

    /// Appends the payload's MAC, producing an authenticated frame.
    pub fn seal(&self, payload: &[u8]) -> Vec<u8> {
        let mac = HmacSha256::mac(self.key.as_bytes(), payload);
        let mut frame = Vec::with_capacity(payload.len() + DIGEST_LEN);
        frame.extend_from_slice(payload);
        frame.extend_from_slice(&mac);
        frame
    }

    /// MACs a payload given as discontiguous parts, without concatenating
    /// them first.
    ///
    /// The MAC is over the parts' logical concatenation, so
    /// `mac_of_parts(&[a, b])` equals the MAC `seal` would embed for
    /// `a ++ b`. This is what lets the transport seal an envelope whose
    /// encoding is split into a serialized head and a zero-copy payload
    /// tail without ever materializing the joined buffer.
    pub fn mac_of_parts(&self, parts: &[&[u8]]) -> [u8; DIGEST_LEN] {
        let mut h = HmacSha256::new(self.key.as_bytes());
        for part in parts {
            h.update(part);
        }
        h.finalize()
    }

    /// Verifies a frame and returns its payload.
    ///
    /// # Errors
    ///
    /// [`AuthError::TooShort`] when the frame cannot contain a MAC;
    /// [`AuthError::BadMac`] when verification fails (forgery, corruption,
    /// or a frame sealed under a different link key).
    pub fn open<'a>(&self, frame: &'a [u8]) -> Result<&'a [u8], AuthError> {
        if frame.len() < DIGEST_LEN {
            return Err(AuthError::TooShort { len: frame.len() });
        }
        let (payload, mac) = frame.split_at(frame.len() - DIGEST_LEN);
        if HmacSha256::verify(self.key.as_bytes(), payload, mac) {
            Ok(payload)
        } else {
            Err(AuthError::BadMac)
        }
    }

    /// Verifies a [`Bytes`] frame and returns its payload as an O(1) slice
    /// of the same buffer — no copy is made.
    ///
    /// # Errors
    ///
    /// Same as [`AuthCodec::open`].
    pub fn open_bytes(&self, frame: &Bytes) -> Result<Bytes, AuthError> {
        let payload = self.open(frame.as_ref())?;
        Ok(frame.slice(..payload.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keychain::KeyChain;
    use safereg_common::ids::{NodeId, ServerId, WriterId};

    fn codec_for(seed: &[u8]) -> AuthCodec {
        let chain = KeyChain::from_master_seed(seed);
        AuthCodec::new(chain.pair_key(NodeId::from(ServerId(0)), NodeId::from(WriterId(0))))
    }

    #[test]
    fn seal_open_roundtrip() {
        let codec = codec_for(b"seed");
        for payload in [&b""[..], b"x", &[0u8; 1000][..]] {
            let frame = codec.seal(payload);
            assert_eq!(codec.open(&frame).unwrap(), payload);
        }
    }

    #[test]
    fn tampered_payload_is_rejected() {
        let codec = codec_for(b"seed");
        let mut frame = codec.seal(b"value=1");
        frame[0] ^= 0xFF;
        assert_eq!(codec.open(&frame), Err(AuthError::BadMac));
    }

    #[test]
    fn tampered_mac_is_rejected() {
        let codec = codec_for(b"seed");
        let mut frame = codec.seal(b"value=1");
        let end = frame.len() - 1;
        frame[end] ^= 0x01;
        assert_eq!(codec.open(&frame), Err(AuthError::BadMac));
    }

    #[test]
    fn wrong_key_is_rejected() {
        let a = codec_for(b"seed-a");
        let b = codec_for(b"seed-b");
        let frame = a.seal(b"hello");
        assert_eq!(b.open(&frame), Err(AuthError::BadMac));
    }

    #[test]
    fn short_frame_is_rejected() {
        let codec = codec_for(b"seed");
        assert_eq!(codec.open(&[0u8; 5]), Err(AuthError::TooShort { len: 5 }));
    }

    #[test]
    fn mac_of_parts_matches_contiguous_seal() {
        let codec = codec_for(b"seed");
        let frame = codec.seal(b"head-bytes|tail-bytes");
        let mac = codec.mac_of_parts(&[b"head-bytes|", b"tail-bytes"]);
        assert_eq!(&frame[frame.len() - DIGEST_LEN..], &mac);
        // Degenerate splits agree too.
        assert_eq!(
            codec.mac_of_parts(&[b"", b"head-bytes|tail-bytes", b""]),
            mac
        );
    }

    #[test]
    fn open_bytes_returns_a_zero_copy_slice() {
        let codec = codec_for(b"seed");
        let frame = Bytes::from(codec.seal(b"zero-copy payload"));
        let payload = codec.open_bytes(&frame).unwrap();
        assert_eq!(payload.as_ref(), b"zero-copy payload");
        // The payload aliases the frame's allocation.
        assert_eq!(payload.as_ref().as_ptr(), frame.as_ref().as_ptr());

        let mut tampered = frame.as_ref().to_vec();
        tampered[0] ^= 0xFF;
        assert_eq!(
            codec.open_bytes(&Bytes::from(tampered)),
            Err(AuthError::BadMac)
        );
    }

    #[test]
    fn byzantine_server_cannot_forge_other_links() {
        // s1 is Byzantine and knows every key it is an endpoint of, but not
        // the s0<->w0 link key; anything it fabricates for that link fails.
        let chain = KeyChain::from_master_seed(b"cluster");
        let s0w0 =
            AuthCodec::new(chain.pair_key(NodeId::from(ServerId(0)), NodeId::from(WriterId(0))));
        let s1w0 =
            AuthCodec::new(chain.pair_key(NodeId::from(ServerId(1)), NodeId::from(WriterId(0))));
        let forged = s1w0.seal(b"fake ack from s0");
        assert_eq!(s0w0.open(&forged), Err(AuthError::BadMac));
    }
}
