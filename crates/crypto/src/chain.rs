//! Per-replica HMAC-chained response attestations.
//!
//! The accountability layer (DESIGN.md §13) makes every server response
//! *attributable*: alongside each reply the server emits a [`ChainLink`] —
//! a digest of the response MACed under the server's [audit
//! key](crate::keychain::KeyChain::audit_key) and chained to the previous
//! link via its MAC. A link is therefore a non-repudiable statement "server
//! `s` vouched for tag `t` / value digest `d` in operation `op`", and two
//! authentic links that contradict each other convict `s` from the links
//! alone — no trust in the accuser is needed beyond holding the deployment
//! seed (see the trust caveat on `audit_key`).
//!
//! The chain serves two purposes the per-link MAC alone would not:
//!
//! * **Fork detection.** Two authentic links with the same
//!   `(server, incarnation, seq)` but different content prove the server
//!   maintained two histories.
//! * **Ordering evidence.** `prev` commits each link to its predecessor, so
//!   an auditor holding a suffix of links can check they form one history.
//!
//! `incarnation` distinguishes legitimate restarts (crash/recovery resets
//! `seq` to 0 with a fresh incarnation) from forks within one process
//! lifetime; without it every supervised restart in the soak harness would
//! read as a forked chain.

use safereg_common::codec::{BytesReader, Wire, WireError, WireReader};
use safereg_common::ids::ServerId;
use safereg_common::msg::OpId;
use safereg_common::tag::Tag;

use crate::hmac::HmacSha256;
use crate::keychain::{Key, KeyChain};
use crate::sha256::DIGEST_LEN;

/// Which response message a link attests to.
///
/// Distinguishing the kinds keeps a `TagResp` (which carries no payload,
/// `value_digest == 0`) from ever reading as an equivocation against a
/// `DataResp` at the same tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkKind {
    /// A `TagResp` — the server vouched for a tag only.
    TagResp,
    /// A `PutAck` — the server vouched it stored the write's tag.
    PutAck,
    /// A `DataResp` — the server vouched for a tag *and* an entry digest.
    DataResp,
}

impl Wire for LinkKind {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        buf.push(match self {
            LinkKind::TagResp => 0,
            LinkKind::PutAck => 1,
            LinkKind::DataResp => 2,
        });
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode_from(r)? {
            0 => Ok(LinkKind::TagResp),
            1 => Ok(LinkKind::PutAck),
            2 => Ok(LinkKind::DataResp),
            t => Err(WireError::BadDiscriminant {
                ty: "LinkKind",
                got: t,
            }),
        }
    }

    fn wire_len(&self) -> usize {
        1
    }
}

/// One link of a server's response chain.
///
/// The MAC covers every other field (including `prev`, which chains links
/// together), keyed by `audit_key(server)` — so authenticity of a link can
/// be checked offline from the link alone plus the deployment seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainLink {
    /// The attesting server.
    pub server: ServerId,
    /// Process-lifetime counter; restarts bump it and reset `seq`.
    pub incarnation: u64,
    /// Position of this link in the chain of one incarnation.
    pub seq: u64,
    /// The client operation the response answered.
    pub op: OpId,
    /// Which response message is attested.
    pub kind: LinkKind,
    /// Digest of the register key the response concerned.
    pub key_digest: u64,
    /// The tag the server vouched for.
    pub tag: Tag,
    /// Digest of the vouched entry (0 for tag-only responses).
    pub value_digest: u64,
    /// MAC of the previous link (all-zero for the first link).
    pub prev: [u8; DIGEST_LEN],
    /// `HMAC(audit_key(server), fields-above)`.
    pub mac: [u8; DIGEST_LEN],
}

impl ChainLink {
    /// Encoded size of every link.
    pub const WIRE_LEN: usize = 2 + 8 + 8 + 11 + 1 + 8 + 10 + 8 + DIGEST_LEN + DIGEST_LEN;

    /// Encodes the MAC-covered fields (everything but `mac`).
    fn preimage(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(Self::WIRE_LEN - DIGEST_LEN);
        self.server.encode_to(&mut buf);
        self.incarnation.encode_to(&mut buf);
        self.seq.encode_to(&mut buf);
        self.op.encode_to(&mut buf);
        self.kind.encode_to(&mut buf);
        self.key_digest.encode_to(&mut buf);
        self.tag.encode_to(&mut buf);
        self.value_digest.encode_to(&mut buf);
        buf.extend_from_slice(&self.prev);
        buf
    }

    /// Checks the link's MAC against the server's audit key.
    ///
    /// `true` means the claimed server (or another holder of the deployment
    /// seed) really produced this link; a corrupted or forged link fails.
    pub fn verify(&self, chain: &KeyChain) -> bool {
        let key = chain.audit_key(self.server);
        HmacSha256::verify(key.as_bytes(), &self.preimage(), &self.mac)
    }
}

impl Wire for ChainLink {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.preimage());
        buf.extend_from_slice(&self.mac);
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let server = ServerId::decode_from(r)?;
        let incarnation = u64::decode_from(r)?;
        let seq = u64::decode_from(r)?;
        let op = OpId::decode_from(r)?;
        let kind = LinkKind::decode_from(r)?;
        let key_digest = u64::decode_from(r)?;
        let tag = Tag::decode_from(r)?;
        let value_digest = u64::decode_from(r)?;
        let mut prev = [0u8; DIGEST_LEN];
        prev.copy_from_slice(r.take(DIGEST_LEN)?);
        let mut mac = [0u8; DIGEST_LEN];
        mac.copy_from_slice(r.take(DIGEST_LEN)?);
        Ok(ChainLink {
            server,
            incarnation,
            seq,
            op,
            kind,
            key_digest,
            tag,
            value_digest,
            prev,
            mac,
        })
    }

    fn decode_borrowed(r: &mut BytesReader<'_>) -> Result<Self, WireError> {
        // Fixed-size: decode from a scratch reader without allocation.
        let bytes = r.take(Self::WIRE_LEN)?;
        let mut inner = WireReader::new(bytes);
        Self::decode_from(&mut inner)
    }

    fn wire_len(&self) -> usize {
        Self::WIRE_LEN
    }
}

/// A server's rolling response chain: mints MAC-chained [`ChainLink`]s.
///
/// One instance per replica process (ISSUE 10's "per-replica rolling
/// chain"); the host serializes appends behind a mutex, so `seq` totally
/// orders every attested response of one incarnation.
#[derive(Debug)]
pub struct ResponseChain {
    key: Key,
    server: ServerId,
    incarnation: u64,
    seq: u64,
    head: [u8; DIGEST_LEN],
}

impl ResponseChain {
    /// Starts a fresh chain for `server` at the given incarnation.
    pub fn new(chain: &KeyChain, server: ServerId, incarnation: u64) -> Self {
        ResponseChain {
            key: chain.audit_key(server),
            server,
            incarnation,
            seq: 0,
            head: [0u8; DIGEST_LEN],
        }
    }

    /// Mints the next link, vouching for one response.
    pub fn append(
        &mut self,
        op: OpId,
        kind: LinkKind,
        key_digest: u64,
        tag: Tag,
        value_digest: u64,
    ) -> ChainLink {
        let mut link = ChainLink {
            server: self.server,
            incarnation: self.incarnation,
            seq: self.seq,
            op,
            kind,
            key_digest,
            tag,
            value_digest,
            prev: self.head,
            mac: [0u8; DIGEST_LEN],
        };
        link.mac = HmacSha256::mac(self.key.as_bytes(), &link.preimage());
        self.seq += 1;
        self.head = link.mac;
        link
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safereg_common::ids::{ClientId, ReaderId, WriterId};

    fn op(seq: u64) -> OpId {
        OpId {
            client: ClientId::Reader(ReaderId(1)),
            seq,
        }
    }

    fn tag(num: u64) -> Tag {
        Tag {
            num,
            writer: WriterId(0),
        }
    }

    #[test]
    fn links_verify_and_chain() {
        let kc = KeyChain::from_master_seed(b"seed");
        let mut chain = ResponseChain::new(&kc, ServerId(2), 1);
        let a = chain.append(op(0), LinkKind::TagResp, 7, tag(1), 0);
        let b = chain.append(op(1), LinkKind::DataResp, 7, tag(1), 42);
        assert!(a.verify(&kc));
        assert!(b.verify(&kc));
        assert_eq!(a.seq, 0);
        assert_eq!(b.seq, 1);
        assert_eq!(b.prev, a.mac);
        assert_eq!(a.prev, [0u8; DIGEST_LEN]);
    }

    #[test]
    fn tampered_links_fail_verification() {
        let kc = KeyChain::from_master_seed(b"seed");
        let mut chain = ResponseChain::new(&kc, ServerId(2), 1);
        let good = chain.append(op(0), LinkKind::DataResp, 7, tag(1), 42);
        for mutate in [
            |l: &mut ChainLink| l.tag = tag(9),
            |l: &mut ChainLink| l.value_digest = 43,
            |l: &mut ChainLink| l.seq += 1,
            |l: &mut ChainLink| l.incarnation += 1,
            |l: &mut ChainLink| l.server = ServerId(3),
            |l: &mut ChainLink| l.prev[0] ^= 1,
            |l: &mut ChainLink| l.mac[0] ^= 1,
        ] {
            let mut bad = good;
            mutate(&mut bad);
            assert!(!bad.verify(&kc));
        }
        assert!(good.verify(&kc));
    }

    #[test]
    fn wrong_seed_rejects_links() {
        let kc = KeyChain::from_master_seed(b"seed");
        let other = KeyChain::from_master_seed(b"other");
        let mut chain = ResponseChain::new(&kc, ServerId(0), 0);
        let link = chain.append(op(0), LinkKind::PutAck, 1, tag(1), 0);
        assert!(link.verify(&kc));
        assert!(!link.verify(&other));
    }

    #[test]
    fn wire_roundtrip_is_exact() {
        let kc = KeyChain::from_master_seed(b"seed");
        let mut chain = ResponseChain::new(&kc, ServerId(5), 3);
        let link = chain.append(op(9), LinkKind::DataResp, 0xDEAD, tag(4), 0xBEEF);
        let bytes = link.to_bytes();
        assert_eq!(bytes.len(), ChainLink::WIRE_LEN);
        assert_eq!(link.wire_len(), ChainLink::WIRE_LEN);
        let back = ChainLink::from_bytes(&bytes).unwrap();
        assert_eq!(back, link);
        assert!(back.verify(&kc));
    }

    #[test]
    fn restart_incarnations_do_not_fork() {
        // Two incarnations both start at seq 0: same position, different
        // incarnation — verifiers must treat them as distinct histories.
        let kc = KeyChain::from_master_seed(b"seed");
        let a =
            ResponseChain::new(&kc, ServerId(1), 0).append(op(0), LinkKind::TagResp, 1, tag(1), 0);
        let b =
            ResponseChain::new(&kc, ServerId(1), 1).append(op(0), LinkKind::TagResp, 1, tag(2), 0);
        assert!(a.verify(&kc) && b.verify(&kc));
        assert_eq!((a.seq, b.seq), (0, 0));
        assert_ne!(a.incarnation, b.incarnation);
    }
}
