//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1), built on [`crate::sha256`].
//!
//! Verified against RFC 4231 test vectors in the tests.

use crate::sha256::{Sha256, DIGEST_LEN};

const BLOCK_LEN: usize = 64;

/// Streaming HMAC-SHA-256.
///
/// # Examples
///
/// ```
/// use safereg_crypto::hmac::HmacSha256;
///
/// let mac = HmacSha256::mac(b"key", b"message");
/// assert!(HmacSha256::verify(b"key", b"message", &mac));
/// assert!(!HmacSha256::verify(b"key", b"tampered", &mac));
/// ```
#[derive(Debug, Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates an HMAC instance keyed with `key` (any length; keys longer
    /// than one block are hashed first, per RFC 2104).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let d = Sha256::digest(key);
            k[..DIGEST_LEN].copy_from_slice(&d);
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = k[i] ^ 0x36;
            opad[i] = k[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            opad_key: opad,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Completes the MAC.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// One-shot MAC of `data` under `key`.
    pub fn mac(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = HmacSha256::new(key);
        h.update(data);
        h.finalize()
    }

    /// Constant-time verification of a MAC.
    ///
    /// Comparison is branch-free over all 32 bytes so a forger learns
    /// nothing from timing.
    pub fn verify(key: &[u8], data: &[u8], mac: &[u8]) -> bool {
        let expect = HmacSha256::mac(key, data);
        if mac.len() != DIGEST_LEN {
            return false;
        }
        let mut diff = 0u8;
        for (a, b) in expect.iter().zip(mac) {
            diff |= a ^ b;
        }
        diff == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(mac: &[u8; DIGEST_LEN]) -> String {
        Sha256::to_hex(mac)
    }

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        let mac = HmacSha256::mac(&key, b"Hi There");
        assert_eq!(
            hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2_short_key() {
        let mac = HmacSha256::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3_repeated_bytes() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        let mac = HmacSha256::mac(&key, &data);
        assert_eq!(
            hex(&mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        let mac = HmacSha256::mac(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let mut h = HmacSha256::new(b"k");
        h.update(b"part one ");
        h.update(b"part two");
        assert_eq!(h.finalize(), HmacSha256::mac(b"k", b"part one part two"));
    }

    #[test]
    fn verify_rejects_wrong_length_and_tamper() {
        let mac = HmacSha256::mac(b"k", b"m");
        assert!(HmacSha256::verify(b"k", b"m", &mac));
        assert!(!HmacSha256::verify(b"k", b"m", &mac[..31]));
        assert!(!HmacSha256::verify(b"other", b"m", &mac));
        let mut bad = mac;
        bad[0] ^= 1;
        assert!(!HmacSha256::verify(b"k", b"m", &bad));
    }
}
