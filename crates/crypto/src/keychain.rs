//! Pairwise key derivation.
//!
//! Every ordered-independent pair of processes shares a symmetric key
//! derived from a cluster master seed: `key(a, b) = HMAC(master,
//! encode(min(a,b)) || encode(max(a,b)))`. Deriving instead of storing keys
//! keeps setup O(1) while still giving each link its own key, so a
//! compromised (Byzantine) server learns only the keys of links it is an
//! endpoint of — it still cannot forge traffic between two other processes,
//! which is the property the paper's signature assumption provides.

use safereg_common::codec::Wire;
use safereg_common::ids::{NodeId, ServerId};

use crate::hmac::HmacSha256;
use crate::sha256::DIGEST_LEN;

/// A 256-bit symmetric key.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Key(pub [u8; DIGEST_LEN]);

impl std::fmt::Debug for Key {
    /// Redacted: keys never appear in logs or panics.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Key(<redacted>)")
    }
}

impl Key {
    /// Borrows the raw key bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

/// Derives pairwise link keys for every process in a deployment.
///
/// # Examples
///
/// ```
/// use safereg_crypto::keychain::KeyChain;
/// use safereg_common::ids::{NodeId, ServerId, WriterId};
///
/// let chain = KeyChain::from_master_seed(b"deployment-42");
/// let a: NodeId = ServerId(0).into();
/// let b: NodeId = WriterId(1).into();
/// // Symmetric: both endpoints derive the same key.
/// assert_eq!(chain.pair_key(a, b), chain.pair_key(b, a));
/// // Distinct links get distinct keys.
/// let c: NodeId = ServerId(1).into();
/// assert_ne!(chain.pair_key(a, b), chain.pair_key(a, c));
/// ```
#[derive(Debug, Clone)]
pub struct KeyChain {
    master: Key,
}

impl KeyChain {
    /// Builds a keychain from a master seed (e.g. a deployment secret).
    pub fn from_master_seed(seed: &[u8]) -> Self {
        // Domain-separate the master key from any other use of the seed.
        KeyChain {
            master: Key(HmacSha256::mac(b"safereg/keychain/v1", seed)),
        }
    }

    /// The shared key for the link between `a` and `b`, independent of
    /// argument order.
    pub fn pair_key(&self, a: NodeId, b: NodeId) -> Key {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let mut material = Vec::with_capacity(16);
        lo.encode_to(&mut material);
        hi.encode_to(&mut material);
        Key(HmacSha256::mac(self.master.as_bytes(), &material))
    }

    /// The per-server key under which a replica MACs its response-chain
    /// links (see [`crate::chain`]).
    ///
    /// Distinct from every [`KeyChain::pair_key`] by domain separation, so a
    /// link MAC can never be confused with channel-frame material. Any
    /// holder of the master seed can re-derive the key and thus re-verify
    /// (or forge) a server's links — conviction evidence is transferable
    /// exactly within the domain that shares the deployment secret, the same
    /// trust boundary the pairwise-MAC channel substitution already assumes.
    pub fn audit_key(&self, server: ServerId) -> Key {
        let mut material = Vec::with_capacity(24);
        material.extend_from_slice(b"safereg/audit/v1");
        server.encode_to(&mut material);
        Key(HmacSha256::mac(self.master.as_bytes(), &material))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safereg_common::ids::{ReaderId, ServerId, WriterId};

    fn n(id: impl Into<NodeId>) -> NodeId {
        id.into()
    }

    #[test]
    fn symmetric_in_endpoints() {
        let chain = KeyChain::from_master_seed(b"s");
        assert_eq!(
            chain.pair_key(n(ServerId(0)), n(ReaderId(1))),
            chain.pair_key(n(ReaderId(1)), n(ServerId(0)))
        );
    }

    #[test]
    fn distinct_links_distinct_keys() {
        let chain = KeyChain::from_master_seed(b"s");
        let k01 = chain.pair_key(n(ServerId(0)), n(ServerId(1)));
        let k02 = chain.pair_key(n(ServerId(0)), n(ServerId(2)));
        let k12 = chain.pair_key(n(ServerId(1)), n(ServerId(2)));
        assert_ne!(k01, k02);
        assert_ne!(k01, k12);
        assert_ne!(k02, k12);
    }

    #[test]
    fn reader_writer_id_collisions_do_not_collide_keys() {
        // ReaderId(1) and WriterId(1) share the numeric id but are distinct
        // processes; their links must differ.
        let chain = KeyChain::from_master_seed(b"s");
        let kr = chain.pair_key(n(ServerId(0)), n(ReaderId(1)));
        let kw = chain.pair_key(n(ServerId(0)), n(WriterId(1)));
        assert_ne!(kr, kw);
    }

    #[test]
    fn different_seeds_different_chains() {
        let a = KeyChain::from_master_seed(b"a");
        let b = KeyChain::from_master_seed(b"b");
        assert_ne!(
            a.pair_key(n(ServerId(0)), n(ServerId(1))),
            b.pair_key(n(ServerId(0)), n(ServerId(1)))
        );
    }

    #[test]
    fn audit_keys_are_per_server_and_domain_separated() {
        let chain = KeyChain::from_master_seed(b"s");
        assert_ne!(chain.audit_key(ServerId(0)), chain.audit_key(ServerId(1)));
        // An audit key never collides with any pair key of the same server.
        let pk = chain.pair_key(n(ServerId(0)), n(ServerId(1)));
        assert_ne!(chain.audit_key(ServerId(0)), pk);
        assert_ne!(chain.audit_key(ServerId(1)), pk);
    }

    #[test]
    fn debug_redacts_key_material() {
        let chain = KeyChain::from_master_seed(b"secret");
        let key = chain.pair_key(n(ServerId(0)), n(ServerId(1)));
        assert_eq!(format!("{key:?}"), "Key(<redacted>)");
    }
}
