//! Channel authentication for `safereg`.
//!
//! The paper's model (§II-A) assumes "the communication channels connecting
//! servers and clients provide message authentication using digital
//! signatures", whose only protocol-relevant effect is that a Byzantine
//! server cannot forge messages *from another process*. Pairwise message
//! authentication codes provide exactly that property for point-to-point
//! channels, so this crate implements — from scratch, with no external
//! crypto dependency —
//!
//! * [`sha256`]: FIPS 180-4 SHA-256,
//! * [`hmac`]: RFC 2104 HMAC-SHA-256,
//! * [`keychain`]: pairwise key derivation for all processes in a system,
//! * [`auth`]: MAC-framed messages used by the TCP transport.
//!
//! DESIGN.md records this substitution (signatures → pairwise MACs) and why
//! it preserves the paper's behaviour.
//!
//! # Examples
//!
//! ```
//! use safereg_crypto::{keychain::KeyChain, auth::AuthCodec};
//! use safereg_common::ids::{NodeId, ServerId, ReaderId};
//!
//! let chain = KeyChain::from_master_seed(b"cluster secret");
//! let reader: NodeId = ReaderId(0).into();
//! let server: NodeId = ServerId(3).into();
//!
//! let tx = AuthCodec::new(chain.pair_key(reader, server));
//! let framed = tx.seal(b"QUERY-DATA");
//! let rx = AuthCodec::new(chain.pair_key(server, reader)); // same pair key
//! assert_eq!(rx.open(&framed).unwrap(), b"QUERY-DATA");
//! ```

pub mod auth;
pub mod chain;
pub mod hmac;
pub mod keychain;
pub mod sha256;

pub use auth::{AuthCodec, AuthError};
pub use chain::{ChainLink, LinkKind, ResponseChain};
pub use hmac::HmacSha256;
pub use keychain::{Key, KeyChain};
pub use sha256::Sha256;
