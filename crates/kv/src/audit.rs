//! Byzantine accountability: evidence, verdicts, and the audit log.
//!
//! Every attestable server response carries a MAC-chained
//! [`ChainLink`] (see [`safereg_crypto::chain`]). The transport feeds each
//! received link into an [`AuditLog`], which cross-checks it against every
//! link seen so far — across readers, writers, and connections — and files
//! [`Evidence`] when two authentic links contradict each other or a single
//! authentic link vouches for something no correct server could say.
//!
//! # Conviction conditions
//!
//! A replica is [`Verdict::Convicted`] only on evidence that re-verifies
//! offline from the links alone (plus the deployment seed):
//!
//! * [`Charge::InadmissibleTag`] — one authentic link vouches for a tag
//!   whose writer is not in the registered writer set. A correct server
//!   stores only tags that arrived in channel-authenticated `PUT-DATA`
//!   frames, which unknown writers cannot produce, so fabricated tags
//!   (e.g. the Fabricator's `WriterId(9999)` forgeries) are self-signed
//!   confessions. `Tag::ZERO` (the initial value) and the cluster-internal
//!   state-transfer writer are always admissible.
//! * [`Charge::Equivocation`] — two authentic links, same
//!   `(server, key, tag, kind)`, different value digest. The tag uniquely
//!   determines the value in these protocols, so a correct server can
//!   never vouch for two values at one tag — this is exactly the lie the
//!   Equivocator tells (a *different* forged value per reader, which is
//!   why the log pools links across clients).
//! * [`Charge::ForkedChain`] — two authentic links occupying the same
//!   `(server, incarnation, seq)` chain position with different content:
//!   the server maintained two histories. Restarts are *not* forks — each
//!   (re)spawn gets a fresh incarnation, so both chains legitimately
//!   starting at `seq = 0` never collide.
//!
//! # Why MAC failure is not equivocation
//!
//! A frame corrupted on the wire (chaos `corrupt`/`truncate`) fails the
//! channel MAC and is dropped before any link is extracted; a link whose
//! own audit MAC fails is ignored for evidence. Both raise *suspicion* at
//! most — convicting on them would let the network frame a correct
//! replica. Suspicion (and Byzantine silence, staleness, drops) never
//! convicts: [`Verdict::Suspect`] is circumstantial, [`Verdict::Convicted`]
//! is proof.

use std::collections::{BTreeMap, BTreeSet};

use safereg_common::buf::Bytes;
use safereg_common::codec::{BytesReader, Wire, WireError, WireReader};
use safereg_common::ids::{ServerId, WriterId};
use safereg_common::sync::Mutex;
use safereg_common::tag::Tag;
use safereg_crypto::chain::ChainLink;
use safereg_crypto::keychain::KeyChain;
use safereg_obs::names;

use crate::server::TRANSFER_WRITER;

/// What a piece of evidence proves. See the module docs for the exact
/// conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Charge {
    /// An authentic link vouches for a tag no registered writer produced.
    InadmissibleTag,
    /// Two authentic links vouch for different values at one tag.
    Equivocation,
    /// Two authentic links occupy one chain position with different content.
    ForkedChain,
}

impl std::fmt::Display for Charge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Charge::InadmissibleTag => "inadmissible-tag",
            Charge::Equivocation => "equivocation",
            Charge::ForkedChain => "forked-chain",
        })
    }
}

impl Wire for Charge {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        buf.push(match self {
            Charge::InadmissibleTag => 0,
            Charge::Equivocation => 1,
            Charge::ForkedChain => 2,
        });
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode_from(r)? {
            0 => Ok(Charge::InadmissibleTag),
            1 => Ok(Charge::Equivocation),
            2 => Ok(Charge::ForkedChain),
            t => Err(WireError::BadDiscriminant {
                ty: "Charge",
                got: t,
            }),
        }
    }
}

/// A self-contained, transferable proof of one replica's misbehaviour:
/// the convicting link(s) plus the sealed reply frames they arrived in.
///
/// Verification ([`Evidence::verify`]) needs only the links and the
/// deployment seed — the frames ride along for forensics (they let an
/// operator replay exactly what the replica said on the wire). Holds no
/// key material, so it can be logged, shipped and stored freely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evidence {
    /// The replica the evidence convicts.
    pub accused: ServerId,
    /// What the links prove.
    pub charge: Charge,
    /// The convicting link.
    pub link: ChainLink,
    /// The contradicting link (`None` for [`Charge::InadmissibleTag`],
    /// which one link proves alone).
    pub other: Option<ChainLink>,
    /// Sealed wire frame `link` arrived in.
    pub frame: Bytes,
    /// Sealed wire frame `other` arrived in (empty when `other` is none).
    pub other_frame: Bytes,
}

impl Wire for Evidence {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        self.accused.encode_to(buf);
        self.charge.encode_to(buf);
        self.link.encode_to(buf);
        self.other.encode_to(buf);
        self.frame.encode_to(buf);
        self.other_frame.encode_to(buf);
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Evidence {
            accused: ServerId::decode_from(r)?,
            charge: Charge::decode_from(r)?,
            link: ChainLink::decode_from(r)?,
            other: Option::<ChainLink>::decode_from(r)?,
            frame: Bytes::decode_from(r)?,
            other_frame: Bytes::decode_from(r)?,
        })
    }

    fn decode_borrowed(r: &mut BytesReader<'_>) -> Result<Self, WireError> {
        Ok(Evidence {
            accused: ServerId::decode_borrowed(r)?,
            charge: Charge::decode_borrowed(r)?,
            link: ChainLink::decode_borrowed(r)?,
            other: Option::<ChainLink>::decode_borrowed(r)?,
            frame: Bytes::decode_borrowed(r)?,
            other_frame: Bytes::decode_borrowed(r)?,
        })
    }
}

/// Whether a correct server could legitimately vouch for `tag`: the
/// initial value, a cluster-internal state transfer, or any registered
/// writer's tag.
fn admissible(tag: &Tag, writers: &BTreeSet<WriterId>) -> bool {
    *tag == Tag::ZERO || tag.writer == TRANSFER_WRITER || writers.contains(&tag.writer)
}

impl Evidence {
    /// Re-verifies this evidence offline: from the evidence, the
    /// deployment seed and the registered writer set alone, with no trust
    /// in whoever filed it. Returns `true` iff the evidence convicts
    /// [`Evidence::accused`].
    pub fn verify(&self, chain: &KeyChain, writers: &[WriterId]) -> bool {
        if self.link.server != self.accused || !self.link.verify(chain) {
            return false;
        }
        match self.charge {
            Charge::InadmissibleTag => {
                let set: BTreeSet<WriterId> = writers.iter().copied().collect();
                !admissible(&self.link.tag, &set)
            }
            Charge::Equivocation => {
                let Some(other) = &self.other else {
                    return false;
                };
                other.server == self.accused
                    && other.verify(chain)
                    && other.key_digest == self.link.key_digest
                    && other.tag == self.link.tag
                    && other.kind == self.link.kind
                    && other.value_digest != self.link.value_digest
            }
            Charge::ForkedChain => {
                let Some(other) = &self.other else {
                    return false;
                };
                other.server == self.accused
                    && other.verify(chain)
                    && other.incarnation == self.link.incarnation
                    && other.seq == self.link.seq
                    && *other != self.link
            }
        }
    }
}

/// The audit verdict on one replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Proven Byzantine by evidence that re-verifies offline.
    Convicted(ServerId),
    /// Circumstantial signals only (mismatched cross-checks, dropped or
    /// forged frames) — never grounds for eviction by itself.
    Suspect,
    /// Nothing against this replica.
    Clean,
}

/// Bound on the per-category link-tracking maps. Evidence is kept
/// unbounded (it is small and precious); the *tracking* state ages out
/// oldest-first so a long soak cannot grow without bound.
const MAX_TRACKED: usize = 65_536;

/// One server's claim about a value: which `(server, key_digest,
/// tag.num, tag.writer, kind)` coordinate it vouched at.
type ClaimKey = (ServerId, u64, u64, u16, u8);

/// The first-seen side of a claim: the vouched value digest plus the
/// link and sealed frame that would convict on contradiction.
type ClaimSeen = (u64, ChainLink, Bytes);

/// Cross-checking state: first-seen links per value claim and per chain
/// position, pooled across every client that feeds this log.
struct Inner {
    /// Value claims: first vouched digest per claim coordinate.
    claims: BTreeMap<ClaimKey, ClaimSeen>,
    /// `(server, incarnation, seq)` → first link at that chain position.
    positions: BTreeMap<(ServerId, u64, u64), (ChainLink, Bytes)>,
    evidence: Vec<Evidence>,
    convicted: BTreeMap<ServerId, Charge>,
    suspicion: BTreeMap<ServerId, u64>,
}

/// Shared audit log: clients feed received links in, verdicts come out.
///
/// One log per deployment (the cluster hands every transport the same
/// `Arc<AuditLog>`) — pooling across readers is what catches an
/// equivocator that lies *consistently per reader*.
pub struct AuditLog {
    chain: KeyChain,
    writers: Mutex<BTreeSet<WriterId>>,
    /// Ground-truth set for the false-accusation counter: replicas the
    /// harness *knows* are correct. Purely observability — verdicts never
    /// consult it.
    known_correct: Mutex<BTreeSet<ServerId>>,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for AuditLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("AuditLog")
            .field("keychain", &"<redacted>")
            .field("evidence", &inner.evidence.len())
            .field("convicted", &inner.convicted.len())
            .finish()
    }
}

impl AuditLog {
    /// Creates an empty log verifying links under `chain`'s audit keys.
    pub fn new(chain: KeyChain) -> Self {
        AuditLog {
            chain,
            writers: Mutex::new(BTreeSet::new()),
            known_correct: Mutex::new(BTreeSet::new()),
            inner: Mutex::new(Inner {
                claims: BTreeMap::new(),
                positions: BTreeMap::new(),
                evidence: Vec::new(),
                convicted: BTreeMap::new(),
                suspicion: BTreeMap::new(),
            }),
        }
    }

    /// Registers writers whose tags are admissible. The deployment must
    /// register every legitimate writer before auditing traffic, or
    /// honest responses relaying their writes would read as fabrications.
    pub fn register_writers(&self, writers: impl IntoIterator<Item = WriterId>) {
        self.writers.lock().extend(writers);
    }

    /// Declares replicas the harness knows to be correct, arming the
    /// `kv.audit.false_accusations` counter for them.
    pub fn expect_correct(&self, servers: impl IntoIterator<Item = ServerId>) {
        self.known_correct.lock().extend(servers);
    }

    /// The registered writer set (for offline [`Evidence::verify`] calls).
    pub fn registered_writers(&self) -> Vec<WriterId> {
        self.writers.lock().iter().copied().collect()
    }

    /// Notes a circumstantial signal against `server` (cross-check
    /// mismatch, forged or dropped frame). Bumps the replica's suspicion
    /// gauge; never convicts.
    pub fn suspect(&self, server: ServerId) {
        let mut inner = self.inner.lock();
        let s = inner.suspicion.entry(server).or_insert(0);
        *s += 1;
        let level = *s;
        drop(inner);
        safereg_obs::global()
            .gauge(&names::audit_suspicion_gauge(server.0))
            .set(level);
    }

    /// Cross-checks one received link against everything seen so far,
    /// filing evidence on contradiction. `frame` is the sealed wire frame
    /// the link arrived in (kept inside any evidence filed).
    ///
    /// Returns the (possibly updated) verdict on the link's server.
    pub fn observe(&self, link: &ChainLink, frame: &Bytes) -> Verdict {
        if !link.verify(&self.chain) {
            // Channel-authentic frame carrying a link that fails its own
            // audit MAC: suspicious, but not offline-provable — an accuser
            // could fabricate such a link about anyone.
            self.suspect(link.server);
            return self.verdict(link.server);
        }
        let writers = self.writers.lock().clone();
        let mut inner = self.inner.lock();
        let mut filed: Vec<Evidence> = Vec::new();

        if !admissible(&link.tag, &writers) {
            filed.push(Evidence {
                accused: link.server,
                charge: Charge::InadmissibleTag,
                link: *link,
                other: None,
                frame: frame.clone(),
                other_frame: Bytes::new(),
            });
        }

        let position = (link.server, link.incarnation, link.seq);
        match inner.positions.get(&position) {
            Some((first, first_frame)) if first != link => {
                filed.push(Evidence {
                    accused: link.server,
                    charge: Charge::ForkedChain,
                    link: *link,
                    other: Some(*first),
                    frame: frame.clone(),
                    other_frame: first_frame.clone(),
                });
            }
            Some(_) => {}
            None => {
                if inner.positions.len() >= MAX_TRACKED {
                    inner.positions.pop_first();
                }
                inner.positions.insert(position, (*link, frame.clone()));
            }
        }

        let claim = (
            link.server,
            link.key_digest,
            link.tag.num,
            link.tag.writer.0,
            link.kind as u8,
        );
        match inner.claims.get(&claim) {
            Some((digest, first, first_frame)) if *digest != link.value_digest => {
                filed.push(Evidence {
                    accused: link.server,
                    charge: Charge::Equivocation,
                    link: *link,
                    other: Some(*first),
                    frame: frame.clone(),
                    other_frame: first_frame.clone(),
                });
            }
            Some(_) => {}
            None => {
                if inner.claims.len() >= MAX_TRACKED {
                    inner.claims.pop_first();
                }
                inner
                    .claims
                    .insert(claim, (link.value_digest, *link, frame.clone()));
            }
        }

        if !filed.is_empty() {
            let reg = safereg_obs::global();
            let newly_convicted = !inner.convicted.contains_key(&link.server);
            for e in filed {
                reg.counter(names::KV_AUDIT_EVIDENCE).inc();
                inner.convicted.entry(e.accused).or_insert(e.charge);
                inner.evidence.push(e);
            }
            if newly_convicted {
                reg.counter(names::KV_AUDIT_CONVICTIONS).inc();
                if self.known_correct.lock().contains(&link.server) {
                    reg.counter(names::KV_AUDIT_FALSE_ACCUSATIONS).inc();
                }
            }
        }

        Self::verdict_locked(&inner, link.server)
    }

    fn verdict_locked(inner: &Inner, server: ServerId) -> Verdict {
        if inner.convicted.contains_key(&server) {
            Verdict::Convicted(server)
        } else if inner.suspicion.get(&server).copied().unwrap_or(0) > 0 {
            Verdict::Suspect
        } else {
            Verdict::Clean
        }
    }

    /// The current verdict on `server`.
    pub fn verdict(&self, server: ServerId) -> Verdict {
        Self::verdict_locked(&self.inner.lock(), server)
    }

    /// All convicted replicas with the charge that first convicted each.
    pub fn convictions(&self) -> Vec<(ServerId, Charge)> {
        self.inner
            .lock()
            .convicted
            .iter()
            .map(|(s, c)| (*s, *c))
            .collect()
    }

    /// A snapshot of every piece of evidence filed so far.
    pub fn evidence(&self) -> Vec<Evidence> {
        self.inner.lock().evidence.clone()
    }

    /// The suspicion level accumulated against `server`.
    pub fn suspicion(&self, server: ServerId) -> u64 {
        self.inner
            .lock()
            .suspicion
            .get(&server)
            .copied()
            .unwrap_or(0)
    }

    /// Re-verifies every filed evidence record offline, as a third party
    /// would. Returns the indices of records that fail — always empty for
    /// a sound log.
    pub fn reverify(&self) -> Vec<usize> {
        let writers = self.registered_writers();
        self.evidence()
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.verify(&self.chain, &writers))
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safereg_common::ids::{ClientId, ReaderId};
    use safereg_common::msg::OpId;
    use safereg_crypto::chain::{LinkKind, ResponseChain};

    fn op(seq: u64) -> OpId {
        OpId {
            client: ClientId::Reader(ReaderId(0)),
            seq,
        }
    }

    fn tag(num: u64, writer: u16) -> Tag {
        Tag {
            num,
            writer: WriterId(writer),
        }
    }

    fn log() -> (KeyChain, AuditLog) {
        let kc = KeyChain::from_master_seed(b"audit-test");
        let log = AuditLog::new(kc.clone());
        log.register_writers([WriterId(0), WriterId(1)]);
        (kc, log)
    }

    #[test]
    fn honest_links_stay_clean() {
        let (kc, log) = log();
        let mut chain = ResponseChain::new(&kc, ServerId(0), 0);
        let frame = Bytes::from_static(b"frame");
        for i in 0..10 {
            let link = chain.append(op(i), LinkKind::DataResp, 7, tag(i, 0), 100 + i);
            assert_eq!(log.observe(&link, &frame), Verdict::Clean);
        }
        // Re-serving the same claim with the same digest is consistent.
        let link = chain.append(op(11), LinkKind::DataResp, 7, tag(9, 0), 109);
        assert_eq!(log.observe(&link, &frame), Verdict::Clean);
        assert!(log.evidence().is_empty());
    }

    #[test]
    fn fabricated_tags_convict_on_one_link() {
        let (kc, log) = log();
        let mut chain = ResponseChain::new(&kc, ServerId(3), 0);
        let link = chain.append(op(0), LinkKind::TagResp, 7, tag(1_500_000, 9999), 0);
        assert_eq!(
            log.observe(&link, &Bytes::new()),
            Verdict::Convicted(ServerId(3))
        );
        let ev = log.evidence();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].charge, Charge::InadmissibleTag);
        assert!(ev[0].verify(&kc, &log.registered_writers()));
    }

    #[test]
    fn equivocation_convicts_across_readers() {
        let (kc, log) = log();
        let mut chain = ResponseChain::new(&kc, ServerId(2), 0);
        // Same key, same tag, different value digests — per-reader lies.
        let a = chain.append(op(0), LinkKind::DataResp, 7, tag(4, 1), 111);
        let b = chain.append(op(1), LinkKind::DataResp, 7, tag(4, 1), 222);
        assert_eq!(log.observe(&a, &Bytes::new()), Verdict::Clean);
        assert_eq!(
            log.observe(&b, &Bytes::new()),
            Verdict::Convicted(ServerId(2))
        );
        let ev = log.evidence();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].charge, Charge::Equivocation);
        assert!(ev[0].verify(&kc, &log.registered_writers()));
        assert!(log.reverify().is_empty());
    }

    #[test]
    fn tag_resp_and_data_resp_at_one_tag_do_not_conflict() {
        let (kc, log) = log();
        let mut chain = ResponseChain::new(&kc, ServerId(1), 0);
        let t = chain.append(op(0), LinkKind::TagResp, 7, tag(4, 1), 0);
        let d = chain.append(op(1), LinkKind::DataResp, 7, tag(4, 1), 999);
        assert_eq!(log.observe(&t, &Bytes::new()), Verdict::Clean);
        assert_eq!(log.observe(&d, &Bytes::new()), Verdict::Clean);
    }

    #[test]
    fn forked_chain_convicts_but_restart_does_not() {
        let (kc, log) = log();
        // Fork: two histories in one incarnation at seq 0.
        let f1 = ResponseChain::new(&kc, ServerId(4), 7).append(
            op(0),
            LinkKind::TagResp,
            1,
            tag(1, 0),
            0,
        );
        let f2 = ResponseChain::new(&kc, ServerId(4), 7).append(
            op(9),
            LinkKind::TagResp,
            2,
            tag(2, 0),
            0,
        );
        assert_eq!(log.observe(&f1, &Bytes::new()), Verdict::Clean);
        assert_eq!(
            log.observe(&f2, &Bytes::new()),
            Verdict::Convicted(ServerId(4))
        );
        // Restart: same seq, fresh incarnation — clean.
        let (kc2, log2) = self::log();
        let r1 = ResponseChain::new(&kc2, ServerId(4), 0).append(
            op(0),
            LinkKind::TagResp,
            1,
            tag(1, 0),
            0,
        );
        let r2 = ResponseChain::new(&kc2, ServerId(4), 1).append(
            op(0),
            LinkKind::TagResp,
            2,
            tag(2, 0),
            0,
        );
        assert_eq!(log2.observe(&r1, &Bytes::new()), Verdict::Clean);
        assert_eq!(log2.observe(&r2, &Bytes::new()), Verdict::Clean);
    }

    #[test]
    fn forged_links_raise_suspicion_not_conviction() {
        let (kc, log) = log();
        let mut chain = ResponseChain::new(&kc, ServerId(0), 0);
        let mut link = chain.append(op(0), LinkKind::TagResp, 1, tag(1, 0), 0);
        link.mac[0] ^= 0xFF;
        assert_eq!(log.observe(&link, &Bytes::new()), Verdict::Suspect);
        assert!(log.evidence().is_empty());
        assert_eq!(log.suspicion(ServerId(0)), 1);
    }

    #[test]
    fn evidence_roundtrips_and_reverifies_offline() {
        let (kc, log) = log();
        let mut chain = ResponseChain::new(&kc, ServerId(2), 0);
        let a = chain.append(op(0), LinkKind::DataResp, 7, tag(4, 1), 111);
        let b = chain.append(op(1), LinkKind::DataResp, 7, tag(4, 1), 222);
        log.observe(&a, &Bytes::from_static(b"frame-a"));
        log.observe(&b, &Bytes::from_static(b"frame-b"));
        let ev = log.evidence().remove(0);
        let bytes = ev.to_bytes();
        let back = Evidence::from_bytes(&bytes).unwrap();
        assert_eq!(back, ev);
        // A third party holding only the bytes, the seed and the writer
        // set reaches the same verdict.
        assert!(back.verify(&kc, &[WriterId(0), WriterId(1)]));
        // ...and tampered evidence does not survive it.
        let mut forged = back.clone();
        forged.accused = ServerId(0);
        assert!(!forged.verify(&kc, &[WriterId(0), WriterId(1)]));
        let mut relinked = back.clone();
        relinked.link.value_digest ^= 0xFF;
        assert!(!relinked.verify(&kc, &[WriterId(0), WriterId(1)]));
    }

    #[test]
    fn false_accusation_counter_stays_zero_for_honest_traffic() {
        let (kc, log) = log();
        log.expect_correct([ServerId(0), ServerId(1)]);
        let mut chain = ResponseChain::new(&kc, ServerId(0), 0);
        for i in 0..50 {
            let link = chain.append(op(i), LinkKind::DataResp, i % 3, tag(i / 3, 0), i * 7);
            assert_ne!(
                log.observe(&link, &Bytes::new()),
                Verdict::Convicted(ServerId(0))
            );
        }
        assert!(log.convictions().is_empty());
    }

    #[test]
    fn debug_output_redacts_the_keychain() {
        let (_, log) = log();
        let dbg = format!("{log:?}");
        assert!(dbg.contains("<redacted>"), "{dbg}");
    }
}
