//! Standalone KV replica daemon.
//!
//! Hosts one replica of a Byzantine-tolerant key-value deployment on a
//! TCP port. Start `n` of these (one per server id); each also serves
//! its observability dump over the reserved `__safereg/metrics` key
//! (fetch it with `safereg-metrics`).
//!
//! ```text
//! safereg-kv-server --id 0 --n 5 --f 1 --listen 127.0.0.1:7000 --secret demo
//! safereg-kv-server --id 1 --n 5 --f 1 --listen 127.0.0.1:7001 --secret demo
//! ...
//! ```
//!
//! Pass `--coded` for erasure-coded registers (needs `n ≥ 5f + 1`), and
//! `--runtime threaded|reactor` to pick the serving runtime (reactor by
//! default), with `--reactors <k>` sizing the reactor pool.

use safereg_common::config::{QuorumConfig, ServerRuntime};
use safereg_common::ids::ServerId;
use safereg_crypto::keychain::KeyChain;
use safereg_kv::tcp::KvServerHost;
use safereg_kv::KvMode;

struct Args {
    id: u16,
    n: usize,
    f: usize,
    listen: String,
    secret: String,
    coded: bool,
    runtime: ServerRuntime,
    reactors: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: safereg-kv-server --id <u16> --n <usize> --f <usize> \
         --listen <addr:port> --secret <string> [--coded] \
         [--runtime threaded|reactor] [--reactors <usize>]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        id: 0,
        n: 0,
        f: 0,
        listen: String::new(),
        secret: String::new(),
        coded: false,
        runtime: ServerRuntime::default(),
        reactors: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--id" => args.id = take().parse().unwrap_or_else(|_| usage()),
            "--n" => args.n = take().parse().unwrap_or_else(|_| usage()),
            "--f" => args.f = take().parse().unwrap_or_else(|_| usage()),
            "--listen" => args.listen = take(),
            "--secret" => args.secret = take(),
            "--coded" => args.coded = true,
            "--runtime" => {
                args.runtime = match take().as_str() {
                    "threaded" => ServerRuntime::Threaded,
                    "reactor" => ServerRuntime::Reactor,
                    _ => usage(),
                }
            }
            "--reactors" => args.reactors = take().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    if args.n == 0 || args.listen.is_empty() || args.secret.is_empty() {
        usage()
    }
    args
}

fn main() {
    let args = parse_args();
    let cfg = match QuorumConfig::new(args.n, args.f) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("invalid configuration: {e}");
            std::process::exit(2);
        }
    };
    let mode = if args.coded {
        if !cfg.supports_bcsr() {
            eprintln!("warning: {cfg} is below BCSR's n >= 5f + 1 bound — reads may be unsafe");
        }
        KvMode::Coded
    } else {
        if !cfg.supports_bsr() {
            eprintln!("warning: {cfg} is below BSR's n >= 4f + 1 bound — reads may be unsafe");
        }
        KvMode::Replicated
    };

    let sid = ServerId(args.id);
    let chain = KeyChain::from_master_seed(args.secret.as_bytes());
    let host = match KvServerHost::builder(sid, cfg, mode, chain)
        .bind(args.listen.as_str())
        .runtime(args.runtime)
        .reactors(args.reactors)
        .spawn()
    {
        Ok(h) => h,
        Err(e) => {
            eprintln!("failed to bind {}: {e}", args.listen);
            std::process::exit(1);
        }
    };
    println!(
        "safereg-kv-server {sid} serving {} kv store on {} ({cfg}, {} runtime)",
        if args.coded { "coded" } else { "replicated" },
        host.addr(),
        args.runtime.label(),
    );
    // Serve until killed; the host's accept thread does the work.
    loop {
        std::thread::park();
    }
}
