//! Dumps the observability registry of a running KV replica.
//!
//! Usage: `safereg-metrics <server-id> <addr> [master-seed]`
//!
//! Connects to the replica, queries the reserved metrics key and prints
//! the line-oriented JSON dump to stdout. The master seed must match the
//! one the deployment was started with (default `safereg`), since the
//! admin path is authenticated like every other frame.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::process::ExitCode;

use safereg_common::ids::{ClientId, ReaderId, ServerId};
use safereg_crypto::keychain::KeyChain;
use safereg_kv::tcp::{fetch_metrics, TcpKvTransport};

fn usage() -> ExitCode {
    eprintln!("usage: safereg-metrics <server-id> <addr> [master-seed]");
    eprintln!("  e.g. safereg-metrics 0 127.0.0.1:4000 my-seed");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 || args.len() > 3 {
        return usage();
    }
    let sid = match args[0].parse::<u16>() {
        Ok(n) => ServerId(n),
        Err(_) => return usage(),
    };
    let addr = match args[1].parse::<SocketAddr>() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bad address {:?}: {e}", args[1]);
            return usage();
        }
    };
    let seed = args.get(2).map_or("safereg", String::as_str);

    let chain = KeyChain::from_master_seed(seed.as_bytes());
    let mut servers = BTreeMap::new();
    servers.insert(sid, addr);
    let mut transport = TcpKvTransport::connect(&servers, chain);
    match fetch_metrics(&mut transport, ClientId::Reader(ReaderId(u16::MAX)), sid, 1) {
        Some(dump) => {
            print!("{dump}");
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("no metrics dump from {sid} at {addr} (wrong seed or server down?)");
            ExitCode::FAILURE
        }
    }
}
