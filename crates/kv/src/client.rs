//! KV client: `put`/`get` over per-key BSR operations.

use std::collections::{BTreeMap, BTreeSet};

use safereg_common::buf::Bytes;
use safereg_common::config::{QuorumConfig, TransportConfig};
use safereg_common::ids::{ClientId, ReaderId, ServerId, WriterId};
use safereg_common::msg::{ClientToServer, Envelope, Message, ServerToClient};
use safereg_common::tag::Tag;
use safereg_common::value::Value;
use safereg_core::bcsr::BcsrReadOp;
use safereg_core::op::{ClientOp, OpOutput};
use safereg_core::read::BsrReadOp;
use safereg_core::write::WriteOp;
use safereg_mds::rs::ReedSolomon;

use crate::server::KvMode;

/// The server could not be reached at the network layer — a refused or
/// dead connection, *not* a reachable server that chose to answer nothing.
///
/// The distinction matters for retries: an unreachable server is a
/// transient network fault worth retrying with backoff, while a silent
/// Byzantine server answering `Ok(vec![])` will stay silent no matter how
/// often it is asked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Unreachable {
    /// The server that could not be reached.
    pub server: ServerId,
}

impl std::fmt::Display for Unreachable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "server {} unreachable", self.server)
    }
}

impl std::error::Error for Unreachable {}

/// Transport used by the KV client: delivers one register message for one
/// key to one server and returns that server's responses.
///
/// `Err(Unreachable)` means the network failed; `Ok(vec![])` means the
/// server was reached but did not answer (Byzantine silence, a rejected
/// MAC, or a message the server has no reply for). The client's retry
/// logic only retries the former.
pub trait KvTransport {
    /// Exchanges one message with one server.
    ///
    /// # Errors
    ///
    /// [`Unreachable`] when the server could not be reached at all.
    fn exchange(
        &mut self,
        from: ClientId,
        to: ServerId,
        key: &[u8],
        msg: &ClientToServer,
    ) -> Result<Vec<ServerToClient>, Unreachable>;
}

/// Errors from KV operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// The operation could not reach a quorum of `n − f` servers.
    QuorumUnavailable {
        /// Servers that responded.
        responded: usize,
        /// Responses needed.
        needed: usize,
        /// Servers that were unreachable at the network layer in the last
        /// retry pass (the rest were reachable but silent).
        unreachable: usize,
    },
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::QuorumUnavailable {
                responded,
                needed,
                unreachable,
            } => {
                write!(
                    f,
                    "only {responded} of the required {needed} servers responded \
                     ({unreachable} unreachable)"
                )
            }
        }
    }
}

impl std::error::Error for KvError {}

/// A key-value client: one writer identity, one reader identity, and the
/// per-key reader-local pairs.
#[derive(Debug)]
pub struct KvClient {
    cfg: QuorumConfig,
    writer: WriterId,
    reader: ReaderId,
    seq: u64,
    mode: KvMode,
    code: Option<ReedSolomon>,
    /// Per-key `(t_local, v_local)` (Fig. 2 line 1, one per register).
    local: BTreeMap<Bytes, (Tag, Value)>,
    /// Retry/backoff policy for unreachable servers.
    policy: TransportConfig,
}

impl KvClient {
    /// Creates a client with distinct writer and reader identities
    /// (replicated mode).
    pub fn new(cfg: QuorumConfig, writer: WriterId, reader: ReaderId) -> Self {
        KvClient {
            cfg,
            writer,
            reader,
            seq: 0,
            mode: KvMode::Replicated,
            code: None,
            local: BTreeMap::new(),
            policy: TransportConfig::default(),
        }
    }

    /// Creates a coded-mode client for a [`crate::server::KvServer::new_coded`]
    /// deployment.
    ///
    /// # Panics
    ///
    /// Panics when the configuration admits no `[n, n − 5f]` code.
    pub fn new_coded(cfg: QuorumConfig, writer: WriterId, reader: ReaderId) -> Self {
        let k = cfg.mds_k().expect("coded KV needs n > 5f");
        let code = ReedSolomon::new(cfg.n(), k).expect("valid code");
        KvClient {
            cfg,
            writer,
            reader,
            seq: 0,
            mode: KvMode::Coded,
            code: Some(code),
            local: BTreeMap::new(),
            policy: TransportConfig::default(),
        }
    }

    /// Overrides the retry/backoff policy applied when servers are
    /// unreachable (`retry_budget` extra passes, waits drawn from the
    /// policy's [`safereg_common::config::BackoffPolicy`]).
    pub fn set_policy(&mut self, policy: TransportConfig) {
        self.policy = policy;
    }

    /// Writes `value` under `key`.
    ///
    /// # Errors
    ///
    /// [`KvError::QuorumUnavailable`] when fewer than `n − f` servers
    /// respond in either phase.
    pub fn put(
        &mut self,
        transport: &mut impl KvTransport,
        key: &[u8],
        value: impl Into<Value>,
    ) -> Result<Tag, KvError> {
        self.seq += 1;
        let mut op = match self.mode {
            KvMode::Replicated => {
                WriteOp::replicated(self.writer, self.seq, self.cfg, value.into())
            }
            KvMode::Coded => WriteOp::coded(
                self.writer,
                self.seq,
                self.cfg,
                self.code.as_ref().expect("coded client holds a code"),
                &value.into(),
            ),
        };
        match self.drive(transport, key, &mut op)? {
            OpOutput::Written { tag } => Ok(tag),
            OpOutput::Read { .. } => unreachable!("write op yields a write outcome"),
        }
    }

    /// Reads the value under `key` (`v_0`, the empty value, when the key
    /// was never written).
    ///
    /// # Errors
    ///
    /// [`KvError::QuorumUnavailable`] when fewer than `n − f` servers
    /// respond.
    pub fn get(&mut self, transport: &mut impl KvTransport, key: &[u8]) -> Result<Value, KvError> {
        self.get_with_tag(transport, key).map(|(value, _)| value)
    }

    /// Reads the value under `key` together with its tag — the handle a
    /// checker needs to match a read against the write it observed.
    ///
    /// # Errors
    ///
    /// [`KvError::QuorumUnavailable`] when fewer than `n − f` servers
    /// respond.
    pub fn get_with_tag(
        &mut self,
        transport: &mut impl KvTransport,
        key: &[u8],
    ) -> Result<(Value, Tag), KvError> {
        self.seq += 1;
        let local = self
            .local
            .get(key)
            .cloned()
            .unwrap_or_else(|| (Tag::ZERO, Value::initial()));
        let mut replicated;
        let mut coded;
        let op: &mut dyn ClientOp = match self.mode {
            KvMode::Replicated => {
                replicated = BsrReadOp::new(self.reader, self.seq, self.cfg, local);
                &mut replicated
            }
            KvMode::Coded => {
                coded = BcsrReadOp::new(
                    self.reader,
                    self.seq,
                    self.cfg,
                    self.code.clone().expect("coded client holds a code"),
                );
                &mut coded
            }
        };
        match self.drive_dyn(transport, key, op)? {
            OpOutput::Read { value, tag } => {
                let entry = self
                    .local
                    .entry(Bytes::copy_from_slice(key))
                    .or_insert_with(|| (Tag::ZERO, Value::initial()));
                if (tag, &value) > (entry.0, &entry.1) {
                    *entry = (tag, value.clone());
                }
                Ok((value, tag))
            }
            OpOutput::Written { .. } => unreachable!("read op yields a read outcome"),
        }
    }

    /// Drives one sans-io operation over the transport until it completes.
    fn drive(
        &mut self,
        transport: &mut impl KvTransport,
        key: &[u8],
        op: &mut dyn ClientOp,
    ) -> Result<OpOutput, KvError> {
        self.drive_dyn(transport, key, op)
    }

    fn drive_dyn(
        &mut self,
        transport: &mut impl KvTransport,
        key: &[u8],
        op: &mut dyn ClientOp,
    ) -> Result<OpOutput, KvError> {
        let reg = safereg_obs::global();
        let mut queue: Vec<Envelope> = op.start();
        let mut responded = 0usize;
        // The retry set: envelopes whose server was unreachable this
        // pass, plus reachable servers that returned *nothing*. An empty
        // reply set means the response was lost or failed to
        // authenticate in flight — indistinguishable from a Byzantine
        // server, but re-asking is idempotent for a correct one and
        // merely wastes a bounded pass on a faulty one, so we re-ask.
        let mut failed: Vec<Envelope> = Vec::new();
        let mut unreachable: BTreeSet<ServerId> = BTreeSet::new();
        let mut pass: u32 = 0;
        loop {
            while let Some(env) = queue.pop() {
                if let Some(out) = op.output() {
                    return Ok(out);
                }
                let (to, msg) = match (&env.dst, &env.msg) {
                    (dst, Message::ToServer(m)) => match dst.as_server() {
                        Some(s) => (s, m),
                        None => continue,
                    },
                    _ => continue,
                };
                let from = env
                    .src
                    .as_client()
                    .expect("client ops originate at clients");
                match transport.exchange(from, to, key, msg) {
                    Ok(replies) => {
                        unreachable.remove(&to);
                        if replies.is_empty() {
                            // Reachable silence: a dropped or corrupted
                            // response. Queue for another ask next pass.
                            failed.push(env);
                            continue;
                        }
                        responded += 1;
                        for reply in replies {
                            queue.extend(op.on_message(to, &reply));
                            if let Some(out) = op.output() {
                                return Ok(out);
                            }
                        }
                    }
                    Err(err) => {
                        reg.counter(safereg_obs::names::KV_EXCHANGE_UNREACHABLE)
                            .inc();
                        unreachable.insert(err.server);
                        failed.push(env);
                    }
                }
            }
            if let Some(out) = op.output() {
                return Ok(out);
            }
            if failed.is_empty() || pass >= self.policy.retry_budget {
                break;
            }
            // Deterministic jitter roll: the KV client is synchronous, so
            // the roll only needs to vary across passes and operations.
            let roll = self
                .seq
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(u64::from(pass));
            let wait = self.policy.backoff.delay(pass, roll);
            reg.histogram(safereg_obs::names::KV_BACKOFF_WAIT_MS)
                .record(wait.as_millis() as u64);
            std::thread::sleep(wait);
            queue = std::mem::take(&mut failed);
            pass += 1;
        }
        Err(KvError::QuorumUnavailable {
            responded,
            needed: self.cfg.response_quorum(),
            unreachable: unreachable.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::InMemKvCluster;

    fn setup() -> (InMemKvCluster, KvClient) {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let cluster = InMemKvCluster::new(cfg);
        let client = KvClient::new(cfg, WriterId(0), ReaderId(0));
        (cluster, client)
    }

    #[test]
    fn put_get_roundtrip() {
        let (mut cluster, mut client) = setup();
        client.put(&mut cluster, b"user:1", "alice").unwrap();
        assert_eq!(
            client.get(&mut cluster, b"user:1").unwrap().as_bytes(),
            b"alice"
        );
        assert!(client.get(&mut cluster, b"user:2").unwrap().is_initial());
    }

    #[test]
    fn keys_are_independent() {
        let (mut cluster, mut client) = setup();
        client.put(&mut cluster, b"a", "1").unwrap();
        client.put(&mut cluster, b"b", "2").unwrap();
        client.put(&mut cluster, b"a", "3").unwrap();
        assert_eq!(client.get(&mut cluster, b"a").unwrap().as_bytes(), b"3");
        assert_eq!(client.get(&mut cluster, b"b").unwrap().as_bytes(), b"2");
    }

    #[test]
    fn tags_grow_per_key() {
        let (mut cluster, mut client) = setup();
        let t1 = client.put(&mut cluster, b"k", "x").unwrap();
        let t2 = client.put(&mut cluster, b"k", "y").unwrap();
        assert!(t2 > t1);
        let fresh = client.put(&mut cluster, b"other", "z").unwrap();
        assert_eq!(fresh.num, 1, "new key starts a fresh tag space");
    }

    #[test]
    fn survives_f_crashes_but_not_more() {
        let (mut cluster, mut client) = setup();
        client.put(&mut cluster, b"k", "v").unwrap();
        cluster.crash(ServerId(0));
        assert_eq!(client.get(&mut cluster, b"k").unwrap().as_bytes(), b"v");
        client.put(&mut cluster, b"k", "v2").unwrap();
        cluster.crash(ServerId(1));
        let err = client.put(&mut cluster, b"k", "v3").unwrap_err();
        assert!(matches!(err, KvError::QuorumUnavailable { .. }));
    }

    #[test]
    fn two_clients_see_each_others_writes() {
        let (mut cluster, mut alice) = setup();
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let mut bob = KvClient::new(cfg, WriterId(1), ReaderId(1));
        alice.put(&mut cluster, b"shared", "from-alice").unwrap();
        assert_eq!(
            bob.get(&mut cluster, b"shared").unwrap().as_bytes(),
            b"from-alice"
        );
        bob.put(&mut cluster, b"shared", "from-bob").unwrap();
        assert_eq!(
            alice.get(&mut cluster, b"shared").unwrap().as_bytes(),
            b"from-bob"
        );
    }
}
