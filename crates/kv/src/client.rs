//! KV client: `put`/`get` over per-key BSR operations.

use std::collections::BTreeMap;

use safereg_common::buf::Bytes;
use safereg_common::config::QuorumConfig;
use safereg_common::ids::{ClientId, ReaderId, ServerId, WriterId};
use safereg_common::msg::{ClientToServer, Envelope, Message, ServerToClient};
use safereg_common::tag::Tag;
use safereg_common::value::Value;
use safereg_core::bcsr::BcsrReadOp;
use safereg_core::op::{ClientOp, OpOutput};
use safereg_core::read::BsrReadOp;
use safereg_core::write::WriteOp;
use safereg_mds::rs::ReedSolomon;

use crate::server::KvMode;

/// Transport used by the KV client: delivers one register message for one
/// key to one server and returns that server's responses (empty when the
/// server is unreachable).
pub trait KvTransport {
    /// Exchanges one message with one server.
    fn exchange(
        &mut self,
        from: ClientId,
        to: ServerId,
        key: &[u8],
        msg: &ClientToServer,
    ) -> Vec<ServerToClient>;
}

/// Errors from KV operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// The operation could not reach a quorum of `n − f` servers.
    QuorumUnavailable {
        /// Servers that responded.
        responded: usize,
        /// Responses needed.
        needed: usize,
    },
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::QuorumUnavailable { responded, needed } => {
                write!(
                    f,
                    "only {responded} of the required {needed} servers responded"
                )
            }
        }
    }
}

impl std::error::Error for KvError {}

/// A key-value client: one writer identity, one reader identity, and the
/// per-key reader-local pairs.
#[derive(Debug)]
pub struct KvClient {
    cfg: QuorumConfig,
    writer: WriterId,
    reader: ReaderId,
    seq: u64,
    mode: KvMode,
    code: Option<ReedSolomon>,
    /// Per-key `(t_local, v_local)` (Fig. 2 line 1, one per register).
    local: BTreeMap<Bytes, (Tag, Value)>,
}

impl KvClient {
    /// Creates a client with distinct writer and reader identities
    /// (replicated mode).
    pub fn new(cfg: QuorumConfig, writer: WriterId, reader: ReaderId) -> Self {
        KvClient {
            cfg,
            writer,
            reader,
            seq: 0,
            mode: KvMode::Replicated,
            code: None,
            local: BTreeMap::new(),
        }
    }

    /// Creates a coded-mode client for a [`crate::server::KvServer::new_coded`]
    /// deployment.
    ///
    /// # Panics
    ///
    /// Panics when the configuration admits no `[n, n − 5f]` code.
    pub fn new_coded(cfg: QuorumConfig, writer: WriterId, reader: ReaderId) -> Self {
        let k = cfg.mds_k().expect("coded KV needs n > 5f");
        let code = ReedSolomon::new(cfg.n(), k).expect("valid code");
        KvClient {
            cfg,
            writer,
            reader,
            seq: 0,
            mode: KvMode::Coded,
            code: Some(code),
            local: BTreeMap::new(),
        }
    }

    /// Writes `value` under `key`.
    ///
    /// # Errors
    ///
    /// [`KvError::QuorumUnavailable`] when fewer than `n − f` servers
    /// respond in either phase.
    pub fn put(
        &mut self,
        transport: &mut impl KvTransport,
        key: &[u8],
        value: impl Into<Value>,
    ) -> Result<Tag, KvError> {
        self.seq += 1;
        let mut op = match self.mode {
            KvMode::Replicated => {
                WriteOp::replicated(self.writer, self.seq, self.cfg, value.into())
            }
            KvMode::Coded => WriteOp::coded(
                self.writer,
                self.seq,
                self.cfg,
                self.code.as_ref().expect("coded client holds a code"),
                &value.into(),
            ),
        };
        match self.drive(transport, key, &mut op)? {
            OpOutput::Written { tag } => Ok(tag),
            OpOutput::Read { .. } => unreachable!("write op yields a write outcome"),
        }
    }

    /// Reads the value under `key` (`v_0`, the empty value, when the key
    /// was never written).
    ///
    /// # Errors
    ///
    /// [`KvError::QuorumUnavailable`] when fewer than `n − f` servers
    /// respond.
    pub fn get(&mut self, transport: &mut impl KvTransport, key: &[u8]) -> Result<Value, KvError> {
        self.seq += 1;
        let local = self
            .local
            .get(key)
            .cloned()
            .unwrap_or_else(|| (Tag::ZERO, Value::initial()));
        let mut replicated;
        let mut coded;
        let op: &mut dyn ClientOp = match self.mode {
            KvMode::Replicated => {
                replicated = BsrReadOp::new(self.reader, self.seq, self.cfg, local);
                &mut replicated
            }
            KvMode::Coded => {
                coded = BcsrReadOp::new(
                    self.reader,
                    self.seq,
                    self.cfg,
                    self.code.clone().expect("coded client holds a code"),
                );
                &mut coded
            }
        };
        match self.drive_dyn(transport, key, op)? {
            OpOutput::Read { value, tag } => {
                let entry = self
                    .local
                    .entry(Bytes::copy_from_slice(key))
                    .or_insert_with(|| (Tag::ZERO, Value::initial()));
                if (tag, &value) > (entry.0, &entry.1) {
                    *entry = (tag, value.clone());
                }
                Ok(value)
            }
            OpOutput::Written { .. } => unreachable!("read op yields a read outcome"),
        }
    }

    /// Drives one sans-io operation over the transport until it completes.
    fn drive(
        &mut self,
        transport: &mut impl KvTransport,
        key: &[u8],
        op: &mut dyn ClientOp,
    ) -> Result<OpOutput, KvError> {
        self.drive_dyn(transport, key, op)
    }

    fn drive_dyn(
        &mut self,
        transport: &mut impl KvTransport,
        key: &[u8],
        op: &mut dyn ClientOp,
    ) -> Result<OpOutput, KvError> {
        let mut queue: Vec<Envelope> = op.start();
        let mut responded = 0usize;
        while let Some(env) = queue.pop() {
            if let Some(out) = op.output() {
                return Ok(out);
            }
            let (to, msg) = match (&env.dst, &env.msg) {
                (dst, Message::ToServer(m)) => match dst.as_server() {
                    Some(s) => (s, m),
                    None => continue,
                },
                _ => continue,
            };
            let from = env
                .src
                .as_client()
                .expect("client ops originate at clients");
            let replies = transport.exchange(from, to, key, msg);
            if !replies.is_empty() {
                responded += 1;
            }
            for reply in replies {
                queue.extend(op.on_message(to, &reply));
                if let Some(out) = op.output() {
                    return Ok(out);
                }
            }
        }
        match op.output() {
            Some(out) => Ok(out),
            None => Err(KvError::QuorumUnavailable {
                responded,
                needed: self.cfg.response_quorum(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::InMemKvCluster;

    fn setup() -> (InMemKvCluster, KvClient) {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let cluster = InMemKvCluster::new(cfg);
        let client = KvClient::new(cfg, WriterId(0), ReaderId(0));
        (cluster, client)
    }

    #[test]
    fn put_get_roundtrip() {
        let (mut cluster, mut client) = setup();
        client.put(&mut cluster, b"user:1", "alice").unwrap();
        assert_eq!(
            client.get(&mut cluster, b"user:1").unwrap().as_bytes(),
            b"alice"
        );
        assert!(client.get(&mut cluster, b"user:2").unwrap().is_initial());
    }

    #[test]
    fn keys_are_independent() {
        let (mut cluster, mut client) = setup();
        client.put(&mut cluster, b"a", "1").unwrap();
        client.put(&mut cluster, b"b", "2").unwrap();
        client.put(&mut cluster, b"a", "3").unwrap();
        assert_eq!(client.get(&mut cluster, b"a").unwrap().as_bytes(), b"3");
        assert_eq!(client.get(&mut cluster, b"b").unwrap().as_bytes(), b"2");
    }

    #[test]
    fn tags_grow_per_key() {
        let (mut cluster, mut client) = setup();
        let t1 = client.put(&mut cluster, b"k", "x").unwrap();
        let t2 = client.put(&mut cluster, b"k", "y").unwrap();
        assert!(t2 > t1);
        let fresh = client.put(&mut cluster, b"other", "z").unwrap();
        assert_eq!(fresh.num, 1, "new key starts a fresh tag space");
    }

    #[test]
    fn survives_f_crashes_but_not_more() {
        let (mut cluster, mut client) = setup();
        client.put(&mut cluster, b"k", "v").unwrap();
        cluster.crash(ServerId(0));
        assert_eq!(client.get(&mut cluster, b"k").unwrap().as_bytes(), b"v");
        client.put(&mut cluster, b"k", "v2").unwrap();
        cluster.crash(ServerId(1));
        let err = client.put(&mut cluster, b"k", "v3").unwrap_err();
        assert!(matches!(err, KvError::QuorumUnavailable { .. }));
    }

    #[test]
    fn two_clients_see_each_others_writes() {
        let (mut cluster, mut alice) = setup();
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let mut bob = KvClient::new(cfg, WriterId(1), ReaderId(1));
        alice.put(&mut cluster, b"shared", "from-alice").unwrap();
        assert_eq!(
            bob.get(&mut cluster, b"shared").unwrap().as_bytes(),
            b"from-alice"
        );
        bob.put(&mut cluster, b"shared", "from-bob").unwrap();
        assert_eq!(
            alice.get(&mut cluster, b"shared").unwrap().as_bytes(),
            b"from-bob"
        );
    }
}
