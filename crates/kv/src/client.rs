//! KV client: `put`/`get` over per-key BSR operations, routed through a
//! [`ShardMap`].
//!
//! Every key hashes to one register-group shard; the client runs the
//! BSR/BCSR exchange against only that shard's replica subset, addressing
//! the protocol's **logical** replica indices and translating them to
//! physical fleet ids at the transport boundary. One transport serves all
//! shards — the per-server connections are keyed by physical id, so `s`
//! shards over `n` servers reuse `n` sockets instead of opening `s × n`.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use safereg_common::buf::Bytes;
use safereg_common::config::{QuorumConfig, TransportConfig};
use safereg_common::epoch::EpochConfig;
use safereg_common::ids::{ClientId, ReaderId, ServerId, WriterId};
use safereg_common::msg::{ClientToServer, Envelope, Message, OpId, ServerToClient};
use safereg_common::shard::{ShardId, ShardMap};
use safereg_common::tag::Tag;
use safereg_common::trace::{Phase, TraceCtx};
use safereg_common::value::Value;
use safereg_core::bcsr::BcsrReadOp;
use safereg_core::op::{ClientOp, OpOutput, ReadPath};
use safereg_core::read::BsrReadOp;
use safereg_core::write::WriteOp;
use safereg_mds::rs::ReedSolomon;
use safereg_obs::metrics::{Counter, Gauge};
use safereg_obs::span::{self, SlowEvidence, SpanKind};
use safereg_obs::trace::wall_micros;

use crate::server::KvMode;

/// The server could not be reached at the network layer — a refused or
/// dead connection, *not* a reachable server that chose to answer nothing.
///
/// The distinction matters for retries: an unreachable server is a
/// transient network fault worth retrying with backoff, while a silent
/// Byzantine server answering `Ok(vec![])` will stay silent no matter how
/// often it is asked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Unreachable {
    /// The (physical) server that could not be reached.
    pub server: ServerId,
}

impl std::fmt::Display for Unreachable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "server {} unreachable", self.server)
    }
}

impl std::error::Error for Unreachable {}

/// Transport used by the KV client: delivers one register message for one
/// key of one shard to one **physical** server and returns that server's
/// responses.
///
/// `Err(Unreachable)` means the network failed; `Ok(vec![])` means the
/// server was reached but did not answer (Byzantine silence, a rejected
/// MAC, a shard the server does not host, or a message the server has no
/// reply for). The client's retry logic only retries the former.
pub trait KvTransport {
    /// Exchanges one message with one server, propagating the caller's
    /// causal trace context (MAC-covered on authenticated transports;
    /// [`TraceCtx::NONE`] when the operation is unsampled, so tracing
    /// costs one branch on the frame path).
    ///
    /// # Errors
    ///
    /// [`Unreachable`] when the server could not be reached at all.
    fn exchange(
        &mut self,
        from: ClientId,
        to: ServerId,
        shard: ShardId,
        key: &[u8],
        msg: &ClientToServer,
        trace: TraceCtx,
    ) -> Result<Vec<ServerToClient>, Unreachable>;

    /// Switches the transport to a newly adopted membership: re-stamp
    /// outgoing frames, connect joiners, drop leavers. The default is a
    /// no-op — in-process transports have no links or stamps to move, and
    /// epoch admission is a wire-path concern.
    fn reconfigure(&mut self, _config: &EpochConfig) {}

    /// Notes a circumstantial accountability signal against `server` —
    /// the client saw it vouch for a value that contradicts another
    /// replica's answer within one quorum. Default no-op; authenticated
    /// transports forward it to the deployment's audit log as suspicion
    /// (never conviction: the client alone cannot tell which of two
    /// contradicting replicas lied).
    fn suspect(&mut self, _server: ServerId) {}
}

/// Errors from KV operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// The operation could not reach a quorum of `m − f` servers within
    /// its key's shard.
    QuorumUnavailable {
        /// Servers that responded.
        responded: usize,
        /// Responses needed.
        needed: usize,
        /// Servers that were unreachable at the network layer in the last
        /// retry pass (the rest were reachable but silent).
        unreachable: usize,
    },
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::QuorumUnavailable {
                responded,
                needed,
                unreachable,
            } => {
                write!(
                    f,
                    "only {responded} of the required {needed} servers responded \
                     ({unreachable} unreachable)"
                )
            }
        }
    }
}

impl std::error::Error for KvError {}

/// How many epoch adoptions a single `put`/`get` rides out before giving
/// up: reconfiguration is one replica per step, so a client more than a
/// few epochs behind re-issues a few times, and a Byzantine server cannot
/// force hops at all (adoption needs `f + 1` distinct voters).
const MAX_EPOCH_HOPS: u32 = 3;

/// Cached per-shard metric handles: formatted names and registry lookups
/// happen once at construction, never on the op hot path.
struct ShardStats {
    ops: Arc<Counter>,
    fast: Arc<Counter>,
    slow: Arc<Counter>,
    ratio: Arc<Gauge>,
}

/// A key-value client: one writer identity, one reader identity, the
/// shard routing table, and the per-key reader-local pairs.
pub struct KvClient {
    map: ShardMap,
    /// The per-shard quorum configuration (`m`, `f`).
    cfg: QuorumConfig,
    writer: WriterId,
    reader: ReaderId,
    seq: u64,
    /// The membership epoch this client believes is current. Bumped by the
    /// `f + 1`-vote adoption rule when `WrongEpoch` redirects converge on a
    /// newer configuration.
    epoch: u32,
    mode: KvMode,
    code: Option<ReedSolomon>,
    /// Per-key `(t_local, v_local)` (Fig. 2 line 1, one per register).
    local: BTreeMap<Bytes, (Tag, Value)>,
    /// Retry/backoff policy for unreachable servers.
    policy: TransportConfig,
    /// Per-shard op/read-path counters, indexed by `ShardId`.
    stats: Vec<ShardStats>,
    /// Hot-shard tracking: the id and op count of the busiest shard.
    hot: Arc<Gauge>,
    hot_ops: Arc<Gauge>,
}

impl std::fmt::Debug for KvClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvClient")
            .field("map", &self.map)
            .field("writer", &self.writer)
            .field("reader", &self.reader)
            .field("mode", &self.mode)
            .finish()
    }
}

impl KvClient {
    /// Creates a single-shard client with distinct writer and reader
    /// identities (replicated mode) — the pre-sharding deployment shape.
    pub fn new(cfg: QuorumConfig, writer: WriterId, reader: ReaderId) -> Self {
        Self::sharded(ShardMap::single(cfg), writer, reader)
    }

    /// Creates a single-shard coded-mode client for a
    /// [`crate::server::KvServer::new_coded`] deployment.
    ///
    /// # Panics
    ///
    /// Panics when the configuration admits no `[n, n − 5f]` code.
    pub fn new_coded(cfg: QuorumConfig, writer: WriterId, reader: ReaderId) -> Self {
        Self::sharded_coded(ShardMap::single(cfg), writer, reader)
    }

    /// Creates a client routing keys through `map` (replicated mode).
    pub fn sharded(map: ShardMap, writer: WriterId, reader: ReaderId) -> Self {
        Self::build(map, writer, reader, KvMode::Replicated)
    }

    /// Creates a coded-mode client routing keys through `map`.
    ///
    /// # Panics
    ///
    /// Panics when the per-shard configuration admits no `[m, m − 5f]`
    /// code.
    pub fn sharded_coded(map: ShardMap, writer: WriterId, reader: ReaderId) -> Self {
        Self::build(map, writer, reader, KvMode::Coded)
    }

    fn build(map: ShardMap, writer: WriterId, reader: ReaderId, mode: KvMode) -> Self {
        let cfg = map.shard_config();
        let code = match mode {
            KvMode::Replicated => None,
            KvMode::Coded => {
                let k = cfg.mds_k().expect("coded KV needs per-shard m > 5f");
                Some(ReedSolomon::new(cfg.n(), k).expect("valid code"))
            }
        };
        // Eager registration: every per-shard series exists (at zero) from
        // the first metrics dump, traffic or not, so JSONL schemas are
        // stable across runs.
        let reg = safereg_obs::global();
        let stats = map
            .shards()
            .map(|g| ShardStats {
                ops: reg.counter(&safereg_obs::names::shard_ops_counter(g.0)),
                fast: reg.counter(&safereg_obs::names::shard_reads_counter(g.0, "fast")),
                slow: reg.counter(&safereg_obs::names::shard_reads_counter(g.0, "slow")),
                ratio: reg.gauge(&safereg_obs::names::shard_fast_ratio_gauge(g.0)),
            })
            .collect();
        KvClient {
            map,
            cfg,
            writer,
            reader,
            seq: 0,
            epoch: 0,
            mode,
            code,
            local: BTreeMap::new(),
            policy: TransportConfig::default(),
            stats,
            hot: reg.gauge(safereg_obs::names::KV_SHARD_HOT),
            hot_ops: reg.gauge(safereg_obs::names::KV_SHARD_HOT_OPS),
        }
    }

    /// The shard placement this client routes through.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The membership epoch this client believes is current.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Aligns the client's epoch counter with a configuration adopted out
    /// of band (cluster-internal transfer clients are born mid-epoch, with
    /// their placement already resolved; only the adoption threshold needs
    /// to know the number).
    pub fn align_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
    }

    /// The shard that serves `key`.
    pub fn shard_of(&self, key: &[u8]) -> ShardId {
        self.map.shard_of(key)
    }

    /// The hottest shard this process has observed and its op count —
    /// the [`KV_SHARD_HOT`](safereg_obs::names::KV_SHARD_HOT) /
    /// [`KV_SHARD_HOT_OPS`](safereg_obs::names::KV_SHARD_HOT_OPS) gauge
    /// pair read back as values. Gauges are global, so under several
    /// clients this reports the fleet-wide maximum, not a per-client one.
    pub fn hot_shard(&self) -> (u16, u64) {
        (self.hot.get() as u16, self.hot_ops.get())
    }

    /// Overrides the retry/backoff policy applied when servers are
    /// unreachable (`retry_budget` extra passes, waits drawn from the
    /// policy's [`safereg_common::config::BackoffPolicy`]).
    pub fn set_policy(&mut self, policy: TransportConfig) {
        self.policy = policy;
    }

    /// Counts one completed operation against its shard, maintaining the
    /// fast-ratio gauge and the hot-shard pair.
    fn note_op(&self, shard: ShardId, path: Option<ReadPath>) {
        let Some(stats) = self.stats.get(shard.0 as usize) else {
            return;
        };
        stats.ops.inc();
        match path {
            Some(ReadPath::Fast) => stats.fast.inc(),
            Some(ReadPath::Slow) => stats.slow.inc(),
            None => {}
        }
        if path.is_some() {
            let (fast, slow) = (stats.fast.get(), stats.slow.get());
            if let Some(ratio) = (fast * 1000).checked_div(fast + slow) {
                stats.ratio.set(ratio);
            }
        }
        let ops = stats.ops.get();
        if ops > self.hot_ops.get() {
            self.hot_ops.set(ops);
            self.hot.set(u64::from(shard.0));
        }
    }

    /// Writes `value` under `key`.
    ///
    /// # Errors
    ///
    /// [`KvError::QuorumUnavailable`] when fewer than `m − f` of the
    /// key's shard replicas respond in either phase.
    pub fn put(
        &mut self,
        transport: &mut impl KvTransport,
        key: &[u8],
        value: impl Into<Value>,
    ) -> Result<Tag, KvError> {
        self.seq += 1;
        let value: Value = value.into();
        let shard = self.map.shard_of(key);
        let root = TraceCtx::for_op(&OpId::new(self.writer, self.seq), self.policy.trace_sample);
        let me = span::node::client(ClientId::Writer(self.writer));
        let started = self.note_start(root, me);
        let mut evidence = SlowEvidence::default();
        let mut hops = 0u32;
        // Each epoch adoption re-issues the protocol op (same sequence
        // number, same trace root) against the new membership — the shard
        // ring depends only on seed and count, so the key's shard is
        // stable across epochs.
        let out = loop {
            let mut op = match self.mode {
                KvMode::Replicated => {
                    WriteOp::replicated(self.writer, self.seq, self.cfg, value.clone())
                }
                KvMode::Coded => WriteOp::coded(
                    self.writer,
                    self.seq,
                    self.cfg,
                    self.code.as_ref().expect("coded client holds a code"),
                    &value,
                ),
            };
            match self.drive_dyn(transport, shard, key, &mut op, root, &mut evidence)? {
                Some(out) => break out,
                None if hops < MAX_EPOCH_HOPS => hops += 1,
                None => {
                    return Err(KvError::QuorumUnavailable {
                        responded: 0,
                        needed: self.cfg.response_quorum(),
                        unreachable: 0,
                    })
                }
            }
        };
        self.note_op(shard, None);
        if root.is_sampled() {
            let now = wall_micros();
            span::record_global_end(
                root.with_phase(Phase::ClientOp),
                now,
                now.saturating_sub(started),
                me,
                None,
            );
        }
        match out {
            OpOutput::Written { tag } => Ok(tag),
            OpOutput::Read { .. } => unreachable!("write op yields a write outcome"),
        }
    }

    /// Reads the value under `key` (`v_0`, the empty value, when the key
    /// was never written).
    ///
    /// # Errors
    ///
    /// [`KvError::QuorumUnavailable`] when fewer than `m − f` of the
    /// key's shard replicas respond.
    pub fn get(&mut self, transport: &mut impl KvTransport, key: &[u8]) -> Result<Value, KvError> {
        self.get_with_tag(transport, key).map(|(value, _)| value)
    }

    /// Reads the value under `key` together with its tag — the handle a
    /// checker needs to match a read against the write it observed.
    ///
    /// # Errors
    ///
    /// [`KvError::QuorumUnavailable`] when fewer than `m − f` of the
    /// key's shard replicas respond.
    pub fn get_with_tag(
        &mut self,
        transport: &mut impl KvTransport,
        key: &[u8],
    ) -> Result<(Value, Tag), KvError> {
        self.seq += 1;
        let shard = self.map.shard_of(key);
        let local = self
            .local
            .get(key)
            .cloned()
            .unwrap_or_else(|| (Tag::ZERO, Value::initial()));
        let root = TraceCtx::for_op(&OpId::new(self.reader, self.seq), self.policy.trace_sample);
        let me = span::node::client(ClientId::Reader(self.reader));
        let started = self.note_start(root, me);
        let mut evidence = SlowEvidence::default();
        let mut hops = 0u32;
        let (out, path) = loop {
            let mut replicated;
            let mut coded;
            let op: &mut dyn ClientOp = match self.mode {
                KvMode::Replicated => {
                    replicated = BsrReadOp::new(self.reader, self.seq, self.cfg, local.clone());
                    &mut replicated
                }
                KvMode::Coded => {
                    coded = BcsrReadOp::new(
                        self.reader,
                        self.seq,
                        self.cfg,
                        self.code.clone().expect("coded client holds a code"),
                    );
                    &mut coded
                }
            };
            match self.drive_dyn(transport, shard, key, &mut *op, root, &mut evidence)? {
                Some(out) => break (out, op.read_path()),
                None if hops < MAX_EPOCH_HOPS => hops += 1,
                None => {
                    return Err(KvError::QuorumUnavailable {
                        responded: 0,
                        needed: self.cfg.response_quorum(),
                        unreachable: 0,
                    })
                }
            }
        };
        self.note_op(shard, path);
        // Every non-fast read gets a concrete cause, sampled or not — the
        // per-cause counters are the histogram the trace bench reports;
        // the exemplar trace id only exists when the op was sampled.
        let cause = match path {
            Some(ReadPath::Slow) => {
                let cause = span::attribute_slow_read(&evidence);
                span::count_slow_cause(cause, root.id);
                Some(cause)
            }
            _ => None,
        };
        if root.is_sampled() {
            let now = wall_micros();
            span::record_global_end(
                root.with_phase(Phase::ClientOp),
                now,
                now.saturating_sub(started),
                me,
                cause,
            );
        }
        match out {
            OpOutput::Read { value, tag } => {
                let entry = self
                    .local
                    .entry(Bytes::copy_from_slice(key))
                    .or_insert_with(|| (Tag::ZERO, Value::initial()));
                if (tag, &value) > (entry.0, &entry.1) {
                    *entry = (tag, value.clone());
                }
                Ok((value, tag))
            }
            OpOutput::Written { .. } => unreachable!("read op yields a read outcome"),
        }
    }

    /// Opens the client-side root span for a sampled op; returns the
    /// wall-clock start stamp (0 when unsampled, never read back).
    fn note_start(&self, root: TraceCtx, me: u32) -> u64 {
        if !root.is_sampled() {
            return 0;
        }
        safereg_obs::global()
            .counter(safereg_obs::names::TRACE_SAMPLED_OPS)
            .inc();
        let now = wall_micros();
        span::record_global(
            root.with_phase(Phase::ClientOp),
            SpanKind::Start,
            now,
            0,
            me,
            0,
        );
        now
    }

    /// Drives one sans-io operation over the transport until it completes
    /// or a newer membership is adopted. The op addresses logical replica
    /// indices `0 .. m−1`; this loop translates them to the shard's
    /// physical replicas on send and back on receive, so the protocol
    /// crates stay shard-oblivious.
    ///
    /// Returns `Ok(None)` when `WrongEpoch` redirects from at least
    /// `f + 1` distinct servers converged on the same newer configuration:
    /// the client has already switched its map, epoch, and transport, and
    /// the caller must re-issue the op against the new membership. A
    /// single Byzantine replica cannot trigger this — nor can it forge a
    /// digest `f` honest servers also vouch for.
    ///
    /// `evidence` accumulates across re-issues — retry passes, unreachable
    /// servers, reachable silence, validation failures, adoptions, and
    /// (only when `trace` is sampled, so the untraced path never reads a
    /// clock per RPC) the spread between fastest and slowest exchange.
    fn drive_dyn(
        &mut self,
        transport: &mut impl KvTransport,
        shard: ShardId,
        key: &[u8],
        op: &mut dyn ClientOp,
        trace: TraceCtx,
        evidence: &mut SlowEvidence,
    ) -> Result<Option<OpOutput>, KvError> {
        let reg = safereg_obs::global();
        let rpc_trace = trace.with_phase(Phase::Rpc);
        let me_node = span::node::client(op.op_id().client);
        let mut queue: Vec<Envelope> = op.start();
        let mut responded = 0usize;
        // The retry set: envelopes whose server was unreachable this
        // pass, plus reachable servers that returned *nothing*. An empty
        // reply set means the response was lost or failed to
        // authenticate in flight — indistinguishable from a Byzantine
        // server, but re-asking is idempotent for a correct one and
        // merely wastes a bounded pass on a faulty one, so we re-ask.
        let mut failed: Vec<Envelope> = Vec::new();
        let mut unreachable: BTreeSet<ServerId> = BTreeSet::new();
        // Membership votes: `(epoch, digest)` → the distinct physical
        // servers vouching for that configuration via `WrongEpoch`.
        let mut votes: BTreeMap<(u32, u64), (BTreeSet<ServerId>, EpochConfig)> = BTreeMap::new();
        // Quorum cross-check (replicated mode only — coded replicas hold
        // *different* fragments at one tag by design): the first full
        // value vouched per tag within this operation; a contradicting
        // second voucher makes both parties suspects.
        let mut vouched: BTreeMap<Tag, (u64, ServerId)> = BTreeMap::new();
        let mut pass: u32 = 0;
        let done = |op: &mut dyn ClientOp, evidence: &mut SlowEvidence, pass, unr: usize| {
            evidence.retry_passes = pass;
            evidence.unreachable = unr as u32;
            evidence.validation_failures = u64::from(op.validation_failures());
        };
        loop {
            while let Some(env) = queue.pop() {
                if let Some(out) = op.output() {
                    done(op, evidence, pass, unreachable.len());
                    return Ok(Some(out));
                }
                let (to, msg) = match (&env.dst, &env.msg) {
                    (dst, Message::ToServer(m)) => match dst.as_server() {
                        Some(s) => (s, m),
                        None => continue,
                    },
                    _ => continue,
                };
                let from = env
                    .src
                    .as_client()
                    .expect("client ops originate at clients");
                let phys = self
                    .map
                    .physical(shard, to)
                    .expect("ops address the shard's m replicas");
                let rpc_start = if rpc_trace.is_sampled() {
                    wall_micros()
                } else {
                    0
                };
                let outcome = transport.exchange(from, phys, shard, key, msg, rpc_trace);
                if rpc_trace.is_sampled() {
                    let now = wall_micros();
                    let dur = now.saturating_sub(rpc_start);
                    evidence.rpc_max_us = evidence.rpc_max_us.max(dur);
                    evidence.rpc_min_us = if evidence.rpc_min_us == 0 {
                        dur
                    } else {
                        evidence.rpc_min_us.min(dur)
                    };
                    span::record_global(
                        rpc_trace,
                        SpanKind::Segment,
                        rpc_start,
                        dur,
                        span::node::client(from),
                        u32::from(phys.0),
                    );
                }
                match outcome {
                    Ok(replies) => {
                        unreachable.remove(&phys);
                        let mut redirected = false;
                        let mut proto = Vec::with_capacity(replies.len());
                        for reply in replies {
                            match reply {
                                ServerToClient::WrongEpoch { config, .. } => {
                                    redirected = true;
                                    // Only *newer* views gather votes: a
                                    // leaver redirecting with its stale
                                    // config must never win back a client.
                                    if config.epoch > self.epoch {
                                        let slot = (config.epoch, config.digest());
                                        votes
                                            .entry(slot)
                                            .or_insert_with(|| (BTreeSet::new(), config))
                                            .0
                                            .insert(phys);
                                    }
                                }
                                other => proto.push(other),
                            }
                        }
                        let threshold = self.cfg.witness_threshold();
                        let adopt = votes
                            .iter()
                            .find(|(_, (voters, _))| voters.len() >= threshold)
                            .map(|(slot, (_, config))| (*slot, config.clone()));
                        if let Some((slot, config)) = adopt {
                            match self.map.for_fleet(config.ids()) {
                                Ok(map) => {
                                    self.map = map;
                                    self.epoch = config.epoch;
                                    transport.reconfigure(&config);
                                    evidence.reconfig += 1;
                                    reg.counter(safereg_obs::names::KV_EPOCH_ADOPTIONS).inc();
                                    done(op, evidence, pass, unreachable.len());
                                    return Ok(None);
                                }
                                // A vouched-for fleet the ring cannot place
                                // (fewer members than a shard needs) is
                                // unusable; drop its votes and carry on.
                                Err(_) => {
                                    votes.remove(&slot);
                                }
                            }
                        }
                        if proto.is_empty() {
                            if !redirected {
                                // Reachable silence: a dropped or corrupted
                                // response. Epoch skew (`redirected`) is
                                // *not* silence — the server answered; it
                                // just cannot serve this stamp.
                                evidence.silent += 1;
                            }
                            failed.push(env);
                            continue;
                        }
                        responded += 1;
                        for reply in proto {
                            if self.mode == KvMode::Replicated {
                                if let ServerToClient::DataResp { tag, payload, .. } = &reply {
                                    let digest = crate::server::entry_digest(tag, payload);
                                    match vouched.get(tag) {
                                        Some((d, first)) if *d != digest => {
                                            // Same tag, different value: one
                                            // of the two vouchers is lying,
                                            // and the client cannot tell
                                            // which — suspicion for both.
                                            transport.suspect(*first);
                                            transport.suspect(phys);
                                        }
                                        Some(_) => {}
                                        None => {
                                            vouched.insert(*tag, (digest, phys));
                                        }
                                    }
                                }
                            }
                            queue.extend(op.on_message(to, &reply));
                            if let Some(out) = op.output() {
                                done(op, evidence, pass, unreachable.len());
                                return Ok(Some(out));
                            }
                        }
                    }
                    Err(err) => {
                        reg.counter(safereg_obs::names::KV_EXCHANGE_UNREACHABLE)
                            .inc();
                        unreachable.insert(err.server);
                        failed.push(env);
                    }
                }
            }
            if let Some(out) = op.output() {
                done(op, evidence, pass, unreachable.len());
                return Ok(Some(out));
            }
            if failed.is_empty() || pass >= self.policy.retry_budget {
                break;
            }
            // Deterministic jitter roll: the KV client is synchronous, so
            // the roll only needs to vary across passes and operations.
            let roll = self
                .seq
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(u64::from(pass));
            let wait = self.policy.backoff.delay(pass, roll);
            reg.histogram(safereg_obs::names::KV_BACKOFF_WAIT_MS)
                .record(wait.as_millis() as u64);
            if trace.is_sampled() {
                span::record_global(
                    trace.with_phase(Phase::Backoff),
                    SpanKind::Retry,
                    wall_micros(),
                    wait.as_micros() as u64,
                    me_node,
                    pass + 1,
                );
            }
            std::thread::sleep(wait);
            queue = std::mem::take(&mut failed);
            pass += 1;
        }
        Err(KvError::QuorumUnavailable {
            responded,
            needed: self.cfg.response_quorum(),
            unreachable: unreachable.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::InMemKvCluster;

    fn setup() -> (InMemKvCluster, KvClient) {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let cluster = InMemKvCluster::new(cfg);
        let client = KvClient::new(cfg, WriterId(0), ReaderId(0));
        (cluster, client)
    }

    #[test]
    fn put_get_roundtrip() {
        let (mut cluster, mut client) = setup();
        client.put(&mut cluster, b"user:1", "alice").unwrap();
        assert_eq!(
            client.get(&mut cluster, b"user:1").unwrap().as_bytes(),
            b"alice"
        );
        assert!(client.get(&mut cluster, b"user:2").unwrap().is_initial());
    }

    #[test]
    fn keys_are_independent() {
        let (mut cluster, mut client) = setup();
        client.put(&mut cluster, b"a", "1").unwrap();
        client.put(&mut cluster, b"b", "2").unwrap();
        client.put(&mut cluster, b"a", "3").unwrap();
        assert_eq!(client.get(&mut cluster, b"a").unwrap().as_bytes(), b"3");
        assert_eq!(client.get(&mut cluster, b"b").unwrap().as_bytes(), b"2");
    }

    #[test]
    fn tags_grow_per_key() {
        let (mut cluster, mut client) = setup();
        let t1 = client.put(&mut cluster, b"k", "x").unwrap();
        let t2 = client.put(&mut cluster, b"k", "y").unwrap();
        assert!(t2 > t1);
        let fresh = client.put(&mut cluster, b"other", "z").unwrap();
        assert_eq!(fresh.num, 1, "new key starts a fresh tag space");
    }

    #[test]
    fn survives_f_crashes_but_not_more() {
        let (mut cluster, mut client) = setup();
        client.put(&mut cluster, b"k", "v").unwrap();
        cluster.crash(ServerId(0));
        assert_eq!(client.get(&mut cluster, b"k").unwrap().as_bytes(), b"v");
        client.put(&mut cluster, b"k", "v2").unwrap();
        cluster.crash(ServerId(1));
        let err = client.put(&mut cluster, b"k", "v3").unwrap_err();
        assert!(matches!(err, KvError::QuorumUnavailable { .. }));
    }

    #[test]
    fn two_clients_see_each_others_writes() {
        let (mut cluster, mut alice) = setup();
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let mut bob = KvClient::new(cfg, WriterId(1), ReaderId(1));
        alice.put(&mut cluster, b"shared", "from-alice").unwrap();
        assert_eq!(
            bob.get(&mut cluster, b"shared").unwrap().as_bytes(),
            b"from-alice"
        );
        bob.put(&mut cluster, b"shared", "from-bob").unwrap();
        assert_eq!(
            alice.get(&mut cluster, b"shared").unwrap().as_bytes(),
            b"from-bob"
        );
    }

    #[test]
    fn sharded_roundtrip_spreads_keys() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let fleet: Vec<ServerId> = (0..8).map(ServerId).collect();
        let map = ShardMap::new(42, 4, fleet, cfg).unwrap();
        let mut cluster = InMemKvCluster::new_sharded(map.clone(), KvMode::Replicated);
        let mut client = KvClient::sharded(map.clone(), WriterId(0), ReaderId(0));
        let mut shards_seen = BTreeSet::new();
        for i in 0..32 {
            let key = format!("key-{i}");
            shards_seen.insert(client.shard_of(key.as_bytes()));
            let val = format!("val-{i}");
            client
                .put(&mut cluster, key.as_bytes(), val.clone().into_bytes())
                .unwrap();
            assert_eq!(
                client.get(&mut cluster, key.as_bytes()).unwrap().as_bytes(),
                val.as_bytes()
            );
        }
        assert!(
            shards_seen.len() > 1,
            "32 keys over 4 shards must touch several: {shards_seen:?}"
        );
    }

    #[test]
    fn sharded_ops_count_per_shard() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let fleet: Vec<ServerId> = (0..5).map(ServerId).collect();
        let map = ShardMap::new(9, 2, fleet, cfg).unwrap();
        let mut cluster = InMemKvCluster::new_sharded(map.clone(), KvMode::Replicated);
        let mut client = KvClient::sharded(map, WriterId(7), ReaderId(7));
        let reg = safereg_obs::global();
        let before: u64 = (0..2)
            .map(|g| reg.counter(&safereg_obs::names::shard_ops_counter(g)).get())
            .sum();
        for i in 0..10 {
            let key = format!("count-{i}");
            client.put(&mut cluster, key.as_bytes(), "v").unwrap();
            client.get(&mut cluster, key.as_bytes()).unwrap();
        }
        let after: u64 = (0..2)
            .map(|g| reg.counter(&safereg_obs::names::shard_ops_counter(g)).get())
            .sum();
        assert_eq!(after - before, 20, "every op lands in some shard counter");
    }
}
