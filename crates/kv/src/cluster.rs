//! In-process KV deployment with fault injection.

use std::collections::BTreeSet;

use safereg_common::config::QuorumConfig;
use safereg_common::ids::{ClientId, ServerId};
use safereg_common::msg::{ClientToServer, ServerToClient};
use safereg_common::shard::{ShardId, ShardMap};
use safereg_common::trace::{Phase, TraceCtx};

use crate::client::{KvTransport, Unreachable};
use crate::server::{KvMode, KvServer};

/// An in-memory cluster of [`KvServer`]s with crash injection — the
/// synchronous deployment used by examples and tests (the simulator and
/// the TCP transport cover asynchronous and real-network deployments of
/// the underlying registers). One process per fleet server; each hosts a
/// register group per shard the [`ShardMap`] places on it.
#[derive(Debug)]
pub struct InMemKvCluster {
    map: ShardMap,
    servers: Vec<KvServer>,
    crashed: BTreeSet<ServerId>,
}

impl InMemKvCluster {
    /// Starts `n` replicated-mode replicas serving one register group
    /// (the pre-sharding deployment shape).
    pub fn new(cfg: QuorumConfig) -> Self {
        Self::new_sharded(ShardMap::single(cfg), KvMode::Replicated)
    }

    /// Starts `n` coded-mode replicas (`n ≥ 5f + 1`), one register group.
    ///
    /// # Panics
    ///
    /// Panics when the configuration admits no `[n, n − 5f]` code.
    pub fn new_coded(cfg: QuorumConfig) -> Self {
        Self::new_sharded(ShardMap::single(cfg), KvMode::Coded)
    }

    /// Starts one replica per fleet server of `map`, each hosting its
    /// placed register groups.
    ///
    /// # Panics
    ///
    /// Panics in coded mode when the per-shard configuration admits no
    /// `[m, m − 5f]` code.
    pub fn new_sharded(map: ShardMap, mode: KvMode) -> Self {
        let servers = map
            .fleet()
            .iter()
            .map(|sid| KvServer::sharded(*sid, map.clone(), mode))
            .collect();
        InMemKvCluster {
            map,
            servers,
            crashed: BTreeSet::new(),
        }
    }

    /// The per-shard deployment configuration.
    pub fn config(&self) -> QuorumConfig {
        self.map.shard_config()
    }

    /// The shard placement the cluster serves.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Crashes a server: it stops responding (fail-silent).
    pub fn crash(&mut self, sid: ServerId) {
        self.crashed.insert(sid);
    }

    /// Restarts a crashed server with its state intact (a crash-recover
    /// server is indistinguishable from a slow one in this model).
    pub fn recover(&mut self, sid: ServerId) {
        self.crashed.remove(&sid);
    }

    /// Total key count across replicas (diagnostics).
    pub fn total_keys(&self) -> usize {
        self.servers.iter().map(KvServer::key_count).sum()
    }

    /// Total stored payload bytes across replicas.
    pub fn total_storage_bytes(&self) -> usize {
        self.servers.iter().map(KvServer::storage_bytes).sum()
    }
}

impl KvTransport for InMemKvCluster {
    fn exchange(
        &mut self,
        from: ClientId,
        to: ServerId,
        shard: ShardId,
        key: &[u8],
        msg: &ClientToServer,
        trace: TraceCtx,
    ) -> Result<Vec<ServerToClient>, Unreachable> {
        // A crashed replica is a network-level fault (connection refused),
        // not Byzantine silence — retry logic may probe it again.
        if self.crashed.contains(&to) {
            return Err(Unreachable { server: to });
        }
        match self.servers.iter().find(|s| s.id() == to) {
            // The in-memory hop keeps the causal chain: the server's
            // lock-wait and dispatch segments attach one hop below the
            // client's op, same as over TCP.
            Some(server) => {
                Ok(server.handle_traced(from, shard, key, msg, trace.hopped(Phase::Dispatch)))
            }
            None => Err(Unreachable { server: to }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::KvClient;
    use safereg_common::ids::{ReaderId, WriterId};

    #[test]
    fn crash_and_recover() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let mut cluster = InMemKvCluster::new(cfg);
        let mut client = KvClient::new(cfg, WriterId(0), ReaderId(0));

        client.put(&mut cluster, b"k", "v1").unwrap();
        cluster.crash(ServerId(2));
        cluster.crash(ServerId(3));
        assert!(
            client.put(&mut cluster, b"k", "v2").is_err(),
            "2 > f crashes starve the quorum"
        );
        cluster.recover(ServerId(3));
        client.put(&mut cluster, b"k", "v3").unwrap();
        assert_eq!(client.get(&mut cluster, b"k").unwrap().as_bytes(), b"v3");
    }

    #[test]
    fn storage_grows_with_keys() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let mut cluster = InMemKvCluster::new(cfg);
        let mut client = KvClient::new(cfg, WriterId(0), ReaderId(0));
        client.put(&mut cluster, b"a", "xx").unwrap();
        client.put(&mut cluster, b"b", "yy").unwrap();
        // A write completes at n − f acks; the remaining server may never
        // see the put, so storage lands between the quorum and full
        // replication.
        let quorum = cfg.response_quorum();
        assert!((2 * quorum..=2 * cfg.n()).contains(&cluster.total_keys()));
        let bytes = cluster.total_storage_bytes();
        assert!((2 * 2 * quorum..=2 * 2 * cfg.n()).contains(&bytes));
    }

    #[test]
    fn sharded_cluster_tolerates_f_crashes_per_shard() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let fleet: Vec<ServerId> = (0..7).map(ServerId).collect();
        let map = ShardMap::new(3, 4, fleet, cfg).unwrap();
        let mut cluster = InMemKvCluster::new_sharded(map.clone(), KvMode::Replicated);
        let mut client = KvClient::sharded(map.clone(), WriterId(0), ReaderId(0));
        client.put(&mut cluster, b"resilient", "v").unwrap();
        // Crash one replica of the key's own shard: still f-tolerant.
        let g = map.shard_of(b"resilient");
        let victim = map.replicas(g).unwrap()[0];
        cluster.crash(victim);
        assert_eq!(
            client.get(&mut cluster, b"resilient").unwrap().as_bytes(),
            b"v"
        );
    }
}

#[cfg(test)]
mod coded_tests {
    use super::*;
    use crate::client::KvClient;
    use safereg_common::ids::{ReaderId, WriterId};

    #[test]
    fn coded_kv_roundtrip_and_savings() {
        let cfg = QuorumConfig::new(8, 1).unwrap(); // k = 3: real coding
        let mut coded = InMemKvCluster::new_coded(cfg);
        let mut client = KvClient::new_coded(cfg, WriterId(0), ReaderId(0));

        let value = vec![0x42u8; 300];
        client.put(&mut coded, b"big", value.clone()).unwrap();
        assert_eq!(
            client.get(&mut coded, b"big").unwrap().as_bytes(),
            &value[..]
        );

        // Coded storage: each replica keeps ceil(300/3) = 100 bytes.
        let mut repl = InMemKvCluster::new(cfg);
        let mut repl_client = KvClient::new(cfg, WriterId(0), ReaderId(0));
        repl_client.put(&mut repl, b"big", value).unwrap();
        assert!(
            coded.total_storage_bytes() * 2 < repl.total_storage_bytes(),
            "coded {} vs replicated {}",
            coded.total_storage_bytes(),
            repl.total_storage_bytes()
        );
    }

    #[test]
    fn coded_kv_survives_f_crashes() {
        let cfg = QuorumConfig::minimal_bcsr(1).unwrap();
        let mut cluster = InMemKvCluster::new_coded(cfg);
        let mut client = KvClient::new_coded(cfg, WriterId(0), ReaderId(0));
        client.put(&mut cluster, b"k", "survives").unwrap();
        cluster.crash(ServerId(5));
        assert_eq!(
            client.get(&mut cluster, b"k").unwrap().as_bytes(),
            b"survives"
        );
    }
}
