//! A Byzantine-tolerant key-value store layered on safe registers.
//!
//! The paper motivates safe registers with geo-replicated key-value
//! storage (§I: Cassandra, Redis, TAO). This crate shows what a downstream
//! system built on the `safereg` protocols looks like: every key is its own
//! MWMR safe register (one tag space and one log per key), servers host a
//! table of per-key register states, and clients run the unmodified BSR
//! operations per key.
//!
//! * [`server::KvServer`] — a replica hosting one
//!   [`safereg_core::server::ServerNode`] per key, created on first write.
//! * [`client::KvClient`] — `put`/`get` over a pluggable [`KvTransport`];
//!   keeps the per-key reader-local pair, so a client's reads of a key are
//!   monotone (it never re-reads something older than what it has seen).
//! * [`cluster::InMemKvCluster`] — an in-process deployment with
//!   crash-fault injection, used by the examples and tests.
//! * [`tcp::TcpKvCluster`] — the same store on real sockets: per-replica
//!   TCP hosts and a MAC-authenticated transport.
//!
//! Consistency: each key individually is a Byzantine-tolerant *safe*
//! register (Definition 1) — reads concurrent with a put may return any
//! previously-written value for that key; quiescent reads return the
//! latest put. There is no cross-key ordering, exactly like the weakly
//! consistent production stores the paper cites.

pub mod audit;
pub mod client;
pub mod cluster;
pub(crate) mod reactor;
pub mod server;
pub mod tcp;

pub use audit::{AuditLog, Charge, Evidence, Verdict};
pub use client::{KvClient, KvError, KvTransport, Unreachable};
pub use cluster::InMemKvCluster;
pub use server::{entry_digest, key_digest, KvMode, KvServer};
pub use tcp::{
    encode_request, fetch_metrics, ClusterBuilder, KvHostBuilder, KvHostOptions, KvServerHost,
    TcpKvCluster, TcpKvTransport, METRICS_KEY,
};
