//! Readiness-driven serving runtime for the KV host.
//!
//! The thread-per-connection runtime in [`tcp`](crate::tcp) spends two OS
//! threads per accepted connection (a blocking reader and a writer draining
//! the bounded outbox). That is simple and fine at tens of connections, but
//! at thousands the stacks and context switches dominate. This module
//! multiplexes every accepted connection onto a small pool of *reactors* —
//! one event loop per hosted shard by default — built on the
//! zero-dependency readiness layer in [`safereg_transport::poll`] (raw
//! `epoll` on Linux, portable `poll` elsewhere).
//!
//! Per connection the reactor keeps a read-accumulation buffer feeding the
//! same borrowing decode as the threaded path, and a bounded outbox of
//! sealed replies drained with vectored writes (four iovecs per frame:
//! length prefix, head, zero-copy tail, MAC) directly from the event loop —
//! no writer threads. Backpressure maps the [`ShedPolicy`] onto readiness:
//! `Block` parks the connection's read interest while the outbox is full
//! (frames already buffered stay buffered, nothing is lost), the drop
//! policies shed from the outbox and count `chan.shed` exactly like the
//! threaded path. A client that stops draining its socket trips the stall
//! budget and is evicted; one that goes quiet trips the idle budget — the
//! same deadline semantics, now enforced by a periodic tick instead of
//! blocking read/write timeouts.
//!
//! When [`TransportConfig::adaptive_outbox`] is set, each connection's
//! outbox capacity breathes with its shed rate through
//! [`AdaptiveCap`]: sustained shedding doubles the cap (up to
//! `chan_capacity_max`), quiet windows shrink it back.

#![allow(clippy::needless_pass_by_value)]

#[cfg(unix)]
pub(crate) use imp::ReactorPool;

#[cfg(unix)]
mod imp {
    use std::collections::{HashMap, VecDeque};
    use std::io::{ErrorKind, IoSlice, Read, Write};
    use std::net::TcpStream;
    use std::os::unix::io::AsRawFd;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::{Duration, Instant};

    use safereg_common::buf::Bytes;
    use safereg_common::config::TransportConfig;
    use safereg_common::ids::ServerId;
    use safereg_common::sync::channel::{AdaptiveCap, CapChange, ShedPolicy};
    use safereg_crypto::keychain::KeyChain;
    use safereg_obs::names;
    use safereg_transport::poll::{Interest, PollBackend, PollEvent, Poller, Waker};

    use crate::server::KvServer;
    use crate::tcp::{count_eviction, process_sealed_frame, FrameDisposition, SealedKv};

    /// How often an otherwise-idle reactor scans its connections for idle
    /// and stall deadline breaches. Short enough to honour the sub-second
    /// budgets the eviction tests configure; long enough to be noise at
    /// the default budgets.
    const TICK: Duration = Duration::from_millis(25);

    /// Per-reactor socket read scratch. Reads accumulate into the
    /// connection's buffer, so the scratch is shared by every connection
    /// of the reactor.
    const SCRATCH: usize = 64 * 1024;

    /// Hard cap on a single inbound frame, matching the threaded path's
    /// `read_frame` guard.
    const MAX_FRAME: usize = 64 << 20;

    struct Slot {
        inbox: Mutex<VecDeque<TcpStream>>,
        waker: Waker,
    }

    struct PoolShared {
        slots: Vec<Slot>,
        next: AtomicUsize,
    }

    /// The accept loop's cheap handle into the pool: round-robins accepted
    /// connections onto reactor inboxes and wakes the chosen reactor.
    pub(crate) struct ReactorHandle {
        shared: Arc<PoolShared>,
    }

    impl ReactorHandle {
        pub(crate) fn dispatch(&self, stream: TcpStream) {
            let i = self.shared.next.fetch_add(1, Ordering::Relaxed) % self.shared.slots.len();
            let slot = &self.shared.slots[i];
            slot.inbox
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push_back(stream);
            safereg_obs::global().counter(names::REACTOR_HANDOFFS).inc();
            slot.waker.wake();
        }
    }

    /// A pool of readiness event loops serving every connection of one
    /// [`KvServerHost`](crate::tcp::KvServerHost).
    pub(crate) struct ReactorPool {
        shared: Arc<PoolShared>,
        threads: Vec<std::thread::JoinHandle<()>>,
    }

    impl ReactorPool {
        /// Creates `reactors` event loops on `backend`. Backend creation
        /// errors (e.g. forcing `epoll` off-Linux) surface here, before
        /// any thread is spawned.
        pub(crate) fn spawn(
            reactors: usize,
            backend: PollBackend,
            server: Arc<KvServer>,
            chain: KeyChain,
            me: ServerId,
            tconfig: TransportConfig,
            stop: Arc<AtomicBool>,
        ) -> std::io::Result<ReactorPool> {
            let n = reactors.max(1);
            let mut pollers = Vec::with_capacity(n);
            let mut slots = Vec::with_capacity(n);
            for _ in 0..n {
                let poller = Poller::with_backend(backend)?;
                slots.push(Slot {
                    inbox: Mutex::new(VecDeque::new()),
                    waker: poller.waker(),
                });
                pollers.push(poller);
            }
            let shared = Arc::new(PoolShared {
                slots,
                next: AtomicUsize::new(0),
            });
            let mut threads = Vec::with_capacity(n);
            for (i, poller) in pollers.into_iter().enumerate() {
                let shared = Arc::clone(&shared);
                let server = Arc::clone(&server);
                let chain = chain.clone();
                let stop = Arc::clone(&stop);
                let handle = std::thread::Builder::new()
                    .name(format!("safereg-kv-reactor-{i}"))
                    .spawn(move || {
                        let reg = safereg_obs::global();
                        reg.gauge(names::REACTOR_THREADS).add(1);
                        run_reactor(
                            poller,
                            &shared.slots[i],
                            &server,
                            &chain,
                            me,
                            tconfig,
                            &stop,
                        );
                        reg.gauge(names::REACTOR_THREADS).sub(1);
                    })?;
                threads.push(handle);
            }
            Ok(ReactorPool { shared, threads })
        }

        pub(crate) fn handle(&self) -> ReactorHandle {
            ReactorHandle {
                shared: Arc::clone(&self.shared),
            }
        }

        /// Wakes every reactor and joins it. The host's stop flag must
        /// already be set — the wake is what makes a parked `wait` observe
        /// it.
        pub(crate) fn shutdown(&mut self) {
            for slot in &self.shared.slots {
                slot.waker.wake();
            }
            for h in self.threads.drain(..) {
                let _ = h.join();
            }
        }
    }

    /// One connection's state inside a reactor.
    struct Conn {
        stream: TcpStream,
        /// Unparsed inbound bytes (partial frames survive here across
        /// readiness events; under `Block` backpressure, whole frames do).
        rbuf: Vec<u8>,
        /// Sealed replies awaiting the socket, bounded by the (possibly
        /// adaptive) outbox capacity.
        outbox: VecDeque<SealedKv>,
        /// Bytes of the front outbox frame already written — a vectored
        /// write that lands mid-frame must resume exactly there, never
        /// re-send the prefix.
        front_off: usize,
        /// Adaptive capacity controller; `None` runs the fixed
        /// `chan_capacity`.
        adaptive: Option<AdaptiveCap>,
        last_inbound: Instant,
        /// Set when a write hit `WouldBlock`; cleared on any write
        /// progress. The stall budget runs against it.
        stalled_since: Option<Instant>,
        interest: Interest,
    }

    impl Conn {
        fn capacity(&self, tconfig: &TransportConfig) -> usize {
            self.adaptive
                .as_ref()
                .map_or(tconfig.chan_capacity.max(1), AdaptiveCap::capacity)
        }
    }

    /// Queues one sealed reply on the connection's outbox under the shed
    /// policy, counting sheds and adaptive resizes. Never fails: under
    /// `Block` the reply is queued regardless (frame *parsing* is what the
    /// gate suspends, so the overshoot is bounded by one frame's replies),
    /// and the drop policies shed instead of failing.
    fn queue_outbox(
        outbox: &mut VecDeque<SealedKv>,
        front_off: usize,
        adaptive: &mut Option<AdaptiveCap>,
        tconfig: &TransportConfig,
        reply: SealedKv,
    ) {
        let capacity = adaptive
            .as_ref()
            .map_or(tconfig.chan_capacity.max(1), AdaptiveCap::capacity);
        let full = outbox.len() >= capacity;
        let shed = match tconfig.shed_policy {
            ShedPolicy::Block => {
                outbox.push_back(reply);
                false
            }
            ShedPolicy::DropNewest => {
                if full {
                    true // the new reply is dropped
                } else {
                    outbox.push_back(reply);
                    false
                }
            }
            ShedPolicy::DropOldest => {
                if full {
                    // Never drop the partially-written front frame: its
                    // length prefix is already on the wire and dropping it
                    // would desynchronise the stream. Shed the oldest
                    // *unsent* frame instead (or the new reply when the
                    // front is all there is).
                    if front_off == 0 {
                        outbox.pop_front();
                        outbox.push_back(reply);
                    } else if outbox.len() >= 2 {
                        outbox.remove(1);
                        outbox.push_back(reply);
                    }
                    true
                } else {
                    outbox.push_back(reply);
                    false
                }
            }
        };
        let reg = safereg_obs::global();
        if shed {
            reg.counter(names::CHAN_SHED).inc();
            reg.counter(&names::shed_counter(tconfig.shed_policy.label()))
                .inc();
        }
        if let Some(cap) = adaptive {
            match cap.record(shed, Instant::now()) {
                Some(CapChange::Grew(_)) => {
                    reg.counter(names::CHAN_ADAPTIVE_GROW).inc();
                }
                Some(CapChange::Shrank(_)) => {
                    reg.counter(names::CHAN_ADAPTIVE_SHRINK).inc();
                }
                None => {}
            }
        }
    }

    /// Drains the socket into the connection's read buffer. Returns `true`
    /// when the connection must close (EOF or a hard error).
    fn drain_socket(conn: &mut Conn, scratch: &mut [u8]) -> bool {
        loop {
            match conn.stream.read(scratch) {
                Ok(0) => return true,
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&scratch[..n]);
                    conn.last_inbound = Instant::now();
                    if n < scratch.len() {
                        // Level-triggered readiness re-reports anything the
                        // kernel still holds; a short read almost always
                        // means the buffer is dry, so skip the extra
                        // syscall.
                        return false;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return false,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return true,
            }
        }
    }

    /// Parses and serves every complete frame buffered on the connection,
    /// stopping early when `Block` backpressure gates the outbox. Returns
    /// `(close, frames_served)`.
    fn process_buffered(
        conn: &mut Conn,
        server: &KvServer,
        chain: &KeyChain,
        me: ServerId,
        tconfig: &TransportConfig,
        stop: &AtomicBool,
    ) -> (bool, usize) {
        let mut off = 0;
        let mut served = 0;
        let mut close = false;
        loop {
            if tconfig.shed_policy == ShedPolicy::Block
                && conn.outbox.len() >= conn.capacity(tconfig)
            {
                // Backpressure: leave the rest buffered, the interest
                // recomputation below parks the read side until the outbox
                // drains.
                break;
            }
            let avail = conn.rbuf.len() - off;
            if avail < 4 {
                break;
            }
            let len = u32::from_le_bytes(conn.rbuf[off..off + 4].try_into().unwrap()) as usize;
            if len > MAX_FRAME {
                close = true; // oversized frame: hard close, like read_frame
                break;
            }
            if avail - 4 < len {
                break;
            }
            let sealed = Bytes::copy_from_slice(&conn.rbuf[off + 4..off + 4 + len]);
            off += 4 + len;
            // A crashed host must never answer a request sent after the
            // crash — mirror the threaded path's recheck between reading
            // and responding.
            if stop.load(Ordering::SeqCst) {
                close = true;
                break;
            }
            served += 1;
            let Conn {
                outbox,
                front_off,
                adaptive,
                ..
            } = conn;
            let mut queue = |reply: SealedKv| {
                queue_outbox(outbox, *front_off, adaptive, tconfig, reply);
                true
            };
            if process_sealed_frame(server, chain, me, &sealed, &mut queue)
                == FrameDisposition::Close
            {
                close = true;
                break;
            }
        }
        conn.rbuf.drain(..off);
        (close, served)
    }

    /// Drains the outbox with vectored writes: up to `max_batch_frames`
    /// frames per syscall, four iovecs each, resuming mid-frame at
    /// `front_off` after a partial write. Returns `true` when the
    /// connection must close.
    fn flush_outbox(conn: &mut Conn, tconfig: &TransportConfig) -> bool {
        let max_batch = tconfig.max_batch_frames.max(1);
        while !conn.outbox.is_empty() {
            let lens: Vec<[u8; 4]> = conn
                .outbox
                .iter()
                .take(max_batch)
                .map(|s| (s.payload_len() as u32).to_le_bytes())
                .collect();
            let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(lens.len() * 4);
            for (i, (frame, len)) in conn.outbox.iter().take(max_batch).zip(&lens).enumerate() {
                let parts: [&[u8]; 4] = [len, &frame.head, frame.tail.as_ref(), &frame.mac];
                let mut skip = if i == 0 { conn.front_off } else { 0 };
                for part in parts {
                    if skip >= part.len() {
                        skip -= part.len();
                        continue;
                    }
                    slices.push(IoSlice::new(&part[skip..]));
                    skip = 0;
                }
            }
            match (&conn.stream).write_vectored(&slices) {
                Ok(0) => return true,
                Ok(mut n) => {
                    safereg_obs::global()
                        .histogram(names::TRANSPORT_BATCH_FRAMES)
                        .record(lens.len() as u64);
                    conn.stalled_since = None;
                    while n > 0 {
                        let total = 4 + conn
                            .outbox
                            .front()
                            .expect("bytes imply a frame")
                            .payload_len();
                        let left = total - conn.front_off;
                        if n >= left {
                            n -= left;
                            conn.outbox.pop_front();
                            conn.front_off = 0;
                        } else {
                            conn.front_off += n;
                            n = 0;
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if conn.stalled_since.is_none() {
                        conn.stalled_since = Some(Instant::now());
                    }
                    return false;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return true,
            }
        }
        conn.stalled_since = None;
        false
    }

    /// Serves one connection after its socket has been drained:
    /// alternate parse/flush until no further progress. Returns `true`
    /// when the connection must close.
    fn pump(
        conn: &mut Conn,
        server: &KvServer,
        chain: &KeyChain,
        me: ServerId,
        tconfig: &TransportConfig,
        stop: &AtomicBool,
    ) -> bool {
        loop {
            let (close, served) = process_buffered(conn, server, chain, me, tconfig, stop);
            if close {
                return true;
            }
            if flush_outbox(conn, tconfig) {
                return true;
            }
            if served == 0 {
                return false;
            }
            // Replies just left the outbox; under Block backpressure more
            // buffered frames may now fit — loop until the buffer or the
            // budget is exhausted.
        }
    }

    fn desired_interest(conn: &Conn, tconfig: &TransportConfig) -> Interest {
        let gated =
            tconfig.shed_policy == ShedPolicy::Block && conn.outbox.len() >= conn.capacity(tconfig);
        Interest {
            readable: !gated,
            writable: !conn.outbox.is_empty(),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn run_reactor(
        mut poller: Poller,
        slot: &Slot,
        server: &KvServer,
        chain: &KeyChain,
        me: ServerId,
        tconfig: TransportConfig,
        stop: &AtomicBool,
    ) {
        let reg = safereg_obs::global();
        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut next_token: u64 = 0;
        let mut events: Vec<PollEvent> = Vec::new();
        let mut scratch = vec![0u8; SCRATCH];
        loop {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let woken = match poller.wait(&mut events, Some(TICK)) {
                Ok(w) => w,
                Err(_) => break,
            };
            if woken {
                reg.counter(names::REACTOR_WAKEUPS).inc();
            }
            if stop.load(Ordering::SeqCst) {
                break;
            }
            // Adopt handed-off connections before touching events, so a
            // connection accepted and immediately written to is served on
            // this iteration's readiness pass or the next — never lost.
            loop {
                let stream = slot
                    .inbox
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .pop_front();
                let Some(stream) = stream else { break };
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let token = next_token;
                next_token += 1;
                let fd = stream.as_raw_fd();
                if poller.register(fd, token, Interest::READ).is_err() {
                    continue; // dropping the stream closes it
                }
                let adaptive = tconfig.adaptive_outbox.then(|| {
                    AdaptiveCap::new(
                        tconfig.chan_capacity,
                        tconfig.chan_capacity_max,
                        AdaptiveCap::DEFAULT_WINDOW,
                    )
                });
                conns.insert(
                    token,
                    Conn {
                        stream,
                        rbuf: Vec::new(),
                        outbox: VecDeque::new(),
                        front_off: 0,
                        adaptive,
                        last_inbound: Instant::now(),
                        stalled_since: None,
                        interest: Interest::READ,
                    },
                );
                reg.gauge(names::REACTOR_CONNS).add(1);
            }
            if !events.is_empty() {
                reg.counter(names::REACTOR_EVENTS).add(events.len() as u64);
            }
            for ev in &events {
                let Some(conn) = conns.get_mut(&ev.token) else {
                    continue;
                };
                let mut close = false;
                if ev.readable || ev.writable {
                    close = (ev.readable && drain_socket(conn, &mut scratch))
                        || pump(conn, server, chain, me, &tconfig, stop);
                }
                // A pure hangup (error/RST with nothing readable) has no
                // bytes to serve; a readable hangup was already drained to
                // EOF by the pump above.
                if ev.hangup && !ev.readable {
                    close = true;
                }
                if close {
                    let conn = conns.remove(&ev.token).expect("present above");
                    let _ = poller.deregister(conn.stream.as_raw_fd());
                    reg.gauge(names::REACTOR_CONNS).sub(1);
                } else {
                    let want = desired_interest(conn, &tconfig);
                    if want != conn.interest {
                        let fd = conn.stream.as_raw_fd();
                        let _ = poller.reregister(fd, ev.token, want);
                        conn.interest = want;
                    }
                }
            }
            // Deadline sweep: both budgets are enforced from the tick, so
            // a connection with no readiness events still ages out.
            let mut evict: Vec<(u64, &'static str)> = Vec::new();
            for (token, conn) in &conns {
                if conn
                    .stalled_since
                    .is_some_and(|s| s.elapsed() >= tconfig.stall_timeout)
                {
                    evict.push((*token, "stall"));
                } else if conn.last_inbound.elapsed() >= tconfig.idle_timeout {
                    evict.push((*token, "idle"));
                }
            }
            for (token, reason) in evict {
                if let Some(conn) = conns.remove(&token) {
                    let _ = poller.deregister(conn.stream.as_raw_fd());
                    reg.gauge(names::REACTOR_CONNS).sub(1);
                    count_eviction(reason);
                }
            }
        }
        // Shutdown: tear every connection down and zero the gauge's share.
        for (_, conn) in conns.drain() {
            let _ = poller.deregister(conn.stream.as_raw_fd());
            reg.gauge(names::REACTOR_CONNS).sub(1);
        }
    }
}

/// Non-unix stub: [`spawn`](ReactorPool::spawn) always fails and the host
/// falls back to the threaded runtime before ever calling it.
#[cfg(not(unix))]
pub(crate) struct ReactorPool;

#[cfg(not(unix))]
pub(crate) struct ReactorHandle;

#[cfg(not(unix))]
impl ReactorPool {
    pub(crate) fn spawn(
        _reactors: usize,
        _backend: safereg_transport::poll::PollBackend,
        _server: std::sync::Arc<crate::server::KvServer>,
        _chain: safereg_crypto::keychain::KeyChain,
        _me: safereg_common::ids::ServerId,
        _tconfig: safereg_common::config::TransportConfig,
        _stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    ) -> std::io::Result<ReactorPool> {
        Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "reactor runtime requires unix readiness APIs",
        ))
    }

    pub(crate) fn handle(&self) -> ReactorHandle {
        ReactorHandle
    }

    pub(crate) fn shutdown(&mut self) {}
}

#[cfg(not(unix))]
impl ReactorHandle {
    pub(crate) fn dispatch(&self, _stream: std::net::TcpStream) {}
}
