//! KV replica: a table of per-key register server states.
//!
//! A replica normally runs the honest protocol, but it can be constructed
//! with a Byzantine [`ByzRole`] from the shared bestiary — then every key
//! gets its own behavior instance (silent, stale-ack, fabricating,
//! equivocating) driven by a seeded [`DetRng`], so a live KV replica can
//! misbehave exactly like a simulated one, reproducibly.

use std::collections::BTreeMap;

use safereg_common::buf::Bytes;
use safereg_common::config::QuorumConfig;
use safereg_common::ids::{ClientId, NodeId, ServerId};
use safereg_common::msg::{ClientToServer, Envelope, Message, Payload, ServerToClient};
use safereg_common::rng::DetRng;
use safereg_common::value::Value;
use safereg_core::behavior::{ByzRole, ServerBehavior};
use safereg_core::server::ServerNode;
use safereg_mds::rs::ReedSolomon;
use safereg_mds::stripe::encode_value;
use safereg_obs::trace::wall_micros;

/// How a KV replica stores values: full copies (BSR registers) or coded
/// elements (BCSR registers, `n ≥ 5f + 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KvMode {
    /// One full replica of each value per server (default).
    #[default]
    Replicated,
    /// One `[n, n − 5f]` coded element of each value per server.
    Coded,
}

/// One replica of the key-value store.
///
/// Each key gets an independent [`ServerNode`] (its own list `L` and tag
/// space), created lazily on first access — reading a never-written key
/// behaves like a fresh register and returns `v_0`. A replica spawned with
/// a faulty [`ByzRole`] instead routes every key through a per-key
/// Byzantine behavior.
pub struct KvServer {
    id: ServerId,
    cfg: QuorumConfig,
    mode: KvMode,
    role: ByzRole,
    byz_seed: u64,
    objects: BTreeMap<Bytes, ServerNode>,
    byz: BTreeMap<Bytes, Box<dyn ServerBehavior>>,
    rng: DetRng,
}

impl std::fmt::Debug for KvServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvServer")
            .field("id", &self.id)
            .field("mode", &self.mode)
            .field("role", &self.role)
            .field("keys", &(self.objects.len() + self.byz.len()))
            .finish()
    }
}

/// Mixes a key into the replica seed so each key's behavior gets its own
/// deterministic fault stream (SplitMix-style avalanche over FNV bytes).
fn key_seed(seed: u64, key: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^ (h >> 33)
}

impl KvServer {
    /// Creates a replicated-mode replica.
    pub fn new(id: ServerId, cfg: QuorumConfig) -> Self {
        Self::with_role(id, cfg, KvMode::Replicated, ByzRole::Correct, 0)
    }

    /// Creates a coded-mode replica: fresh key registers start with this
    /// server's coded element of the initial value.
    ///
    /// # Panics
    ///
    /// Panics when the configuration admits no `[n, n − 5f]` code.
    pub fn new_coded(id: ServerId, cfg: QuorumConfig) -> Self {
        assert!(cfg.mds_k().is_some(), "coded KV needs n > 5f");
        Self::with_role(id, cfg, KvMode::Coded, ByzRole::Correct, 0)
    }

    /// Creates a replica playing `role`. Faulty roles build replicated-mode
    /// behaviors regardless of `mode` — a Byzantine replica's answers are
    /// untrusted either way, so the storage representation is moot.
    pub fn with_role(
        id: ServerId,
        cfg: QuorumConfig,
        mode: KvMode,
        role: ByzRole,
        byz_seed: u64,
    ) -> Self {
        KvServer {
            id,
            cfg,
            mode,
            role,
            byz_seed,
            objects: BTreeMap::new(),
            byz: BTreeMap::new(),
            rng: DetRng::seed_from(byz_seed ^ 0x5AFE_B12E),
        }
    }

    /// This replica's identifier.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// The role this replica plays.
    pub fn role(&self) -> ByzRole {
        self.role
    }

    /// Number of keys this replica has register state for.
    pub fn key_count(&self) -> usize {
        self.objects.len() + self.byz.len()
    }

    /// Total payload bytes stored across all keys.
    pub fn storage_bytes(&self) -> usize {
        let honest: usize = self.objects.values().map(ServerNode::storage_bytes).sum();
        let byz: usize = self.byz.values().map(|b| b.storage_bytes()).sum();
        honest + byz
    }

    /// Handles one register message addressed to `key`.
    pub fn handle(
        &mut self,
        from: ClientId,
        key: &[u8],
        msg: &ClientToServer,
    ) -> Vec<ServerToClient> {
        let id = self.id;
        let cfg = self.cfg;
        if self.role != ByzRole::Correct {
            let role = self.role;
            let seed = key_seed(self.byz_seed, key);
            let behavior = self
                .byz
                .entry(Bytes::copy_from_slice(key))
                .or_insert_with(|| role.build(id, cfg, seed));
            let env = Envelope::to_server(from, id, msg.clone());
            return behavior
                .on_envelope(wall_micros(), &env, &mut self.rng)
                .into_iter()
                .filter_map(|out| match (out.dst, out.msg) {
                    (NodeId::Client(c), Message::ToClient(m)) if c == from => Some(m),
                    _ => None,
                })
                .collect();
        }
        let mode = self.mode;
        let node = self
            .objects
            .entry(Bytes::copy_from_slice(key))
            .or_insert_with(|| match mode {
                KvMode::Replicated => ServerNode::new_replicated(id, cfg),
                KvMode::Coded => {
                    let k = cfg.mds_k().expect("checked at construction");
                    let code = ReedSolomon::new(cfg.n(), k).expect("valid code");
                    let initial = encode_value(&code, &Value::initial())
                        .into_iter()
                        .nth(id.0 as usize)
                        .expect("element per server");
                    ServerNode::with_initial(id, cfg, Payload::Coded(initial))
                }
            });
        node.handle(from, msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safereg_common::ids::{ReaderId, WriterId};
    use safereg_common::msg::{OpId, Payload};
    use safereg_common::tag::Tag;
    use safereg_common::value::Value;

    fn put(s: &mut KvServer, key: &[u8], num: u64, val: &str) {
        s.handle(
            ClientId::Writer(WriterId(0)),
            key,
            &ClientToServer::PutData {
                op: OpId::new(WriterId(0), num),
                tag: Tag::new(num, WriterId(0)),
                payload: Payload::Full(Value::from(val)),
            },
        );
    }

    fn get_tag(s: &mut KvServer, key: &[u8]) -> Tag {
        let resp = s.handle(
            ClientId::Reader(ReaderId(0)),
            key,
            &ClientToServer::QueryTag {
                op: OpId::new(ReaderId(0), 1),
            },
        );
        match &resp[0] {
            ServerToClient::TagResp { tag, .. } => *tag,
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn keys_have_independent_registers() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let mut s = KvServer::new(ServerId(0), cfg);
        put(&mut s, b"alpha", 5, "a");
        put(&mut s, b"beta", 2, "b");
        assert_eq!(get_tag(&mut s, b"alpha"), Tag::new(5, WriterId(0)));
        assert_eq!(get_tag(&mut s, b"beta"), Tag::new(2, WriterId(0)));
        assert_eq!(get_tag(&mut s, b"never-written"), Tag::ZERO);
        assert_eq!(s.key_count(), 3, "reading creates the fresh register");
    }

    #[test]
    fn storage_accounts_all_keys() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let mut s = KvServer::new(ServerId(0), cfg);
        put(&mut s, b"k1", 1, "12345");
        put(&mut s, b"k2", 1, "123");
        assert_eq!(s.storage_bytes(), 8);
    }

    #[test]
    fn silent_role_answers_nothing_on_any_key() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let mut s = KvServer::with_role(ServerId(1), cfg, KvMode::Replicated, ByzRole::Silent, 7);
        put(&mut s, b"k", 1, "v");
        let resp = s.handle(
            ClientId::Reader(ReaderId(0)),
            b"k",
            &ClientToServer::QueryTag {
                op: OpId::new(ReaderId(0), 1),
            },
        );
        assert!(resp.is_empty());
    }

    #[test]
    fn fabricator_role_forges_per_key_deterministically() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let mut a = KvServer::with_role(
            ServerId(2),
            cfg,
            KvMode::Replicated,
            ByzRole::Fabricator,
            42,
        );
        let mut b = KvServer::with_role(
            ServerId(2),
            cfg,
            KvMode::Replicated,
            ByzRole::Fabricator,
            42,
        );
        let ta = get_tag(&mut a, b"key-x");
        let tb = get_tag(&mut b, b"key-x");
        assert_eq!(ta, tb, "same seed, same forgery");
        assert!(ta.num >= 1_000_000, "forged tag");
        assert_ne!(
            get_tag(&mut a, b"key-y"),
            ta,
            "each key draws its own fault stream"
        );
    }

    #[test]
    fn stale_ack_role_acks_writes_but_serves_old_reads() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let mut s = KvServer::with_role(ServerId(3), cfg, KvMode::Replicated, ByzRole::StaleAck, 1);
        put(&mut s, b"k", 1, "v1");
        put(&mut s, b"k", 2, "v2");
        let resp = s.handle(
            ClientId::Reader(ReaderId(0)),
            b"k",
            &ClientToServer::QueryData {
                op: OpId::new(ReaderId(0), 1),
            },
        );
        match &resp[0] {
            ServerToClient::DataResp { tag, .. } => {
                assert_eq!(*tag, Tag::new(1, WriterId(0)), "one entry stale")
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
