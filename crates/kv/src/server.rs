//! KV replica: a table of per-key register server states.

use std::collections::BTreeMap;

use safereg_common::buf::Bytes;
use safereg_common::config::QuorumConfig;
use safereg_common::ids::{ClientId, ServerId};
use safereg_common::msg::{ClientToServer, Payload, ServerToClient};
use safereg_common::value::Value;
use safereg_core::server::ServerNode;
use safereg_mds::rs::ReedSolomon;
use safereg_mds::stripe::encode_value;

/// How a KV replica stores values: full copies (BSR registers) or coded
/// elements (BCSR registers, `n ≥ 5f + 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KvMode {
    /// One full replica of each value per server (default).
    #[default]
    Replicated,
    /// One `[n, n − 5f]` coded element of each value per server.
    Coded,
}

/// One replica of the key-value store.
///
/// Each key gets an independent [`ServerNode`] (its own list `L` and tag
/// space), created lazily on first access — reading a never-written key
/// behaves like a fresh register and returns `v_0`.
#[derive(Debug)]
pub struct KvServer {
    id: ServerId,
    cfg: QuorumConfig,
    mode: KvMode,
    objects: BTreeMap<Bytes, ServerNode>,
}

impl KvServer {
    /// Creates a replicated-mode replica.
    pub fn new(id: ServerId, cfg: QuorumConfig) -> Self {
        KvServer {
            id,
            cfg,
            mode: KvMode::Replicated,
            objects: BTreeMap::new(),
        }
    }

    /// Creates a coded-mode replica: fresh key registers start with this
    /// server's coded element of the initial value.
    ///
    /// # Panics
    ///
    /// Panics when the configuration admits no `[n, n − 5f]` code.
    pub fn new_coded(id: ServerId, cfg: QuorumConfig) -> Self {
        assert!(cfg.mds_k().is_some(), "coded KV needs n > 5f");
        KvServer {
            id,
            cfg,
            mode: KvMode::Coded,
            objects: BTreeMap::new(),
        }
    }

    /// This replica's identifier.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Number of keys this replica has register state for.
    pub fn key_count(&self) -> usize {
        self.objects.len()
    }

    /// Total payload bytes stored across all keys.
    pub fn storage_bytes(&self) -> usize {
        self.objects.values().map(ServerNode::storage_bytes).sum()
    }

    /// Handles one register message addressed to `key`.
    pub fn handle(
        &mut self,
        from: ClientId,
        key: &[u8],
        msg: &ClientToServer,
    ) -> Vec<ServerToClient> {
        let id = self.id;
        let cfg = self.cfg;
        let mode = self.mode;
        let node = self
            .objects
            .entry(Bytes::copy_from_slice(key))
            .or_insert_with(|| match mode {
                KvMode::Replicated => ServerNode::new_replicated(id, cfg),
                KvMode::Coded => {
                    let k = cfg.mds_k().expect("checked at construction");
                    let code = ReedSolomon::new(cfg.n(), k).expect("valid code");
                    let initial = encode_value(&code, &Value::initial())
                        .into_iter()
                        .nth(id.0 as usize)
                        .expect("element per server");
                    ServerNode::with_initial(id, cfg, Payload::Coded(initial))
                }
            });
        node.handle(from, msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safereg_common::ids::{ReaderId, WriterId};
    use safereg_common::msg::{OpId, Payload};
    use safereg_common::tag::Tag;
    use safereg_common::value::Value;

    fn put(s: &mut KvServer, key: &[u8], num: u64, val: &str) {
        s.handle(
            ClientId::Writer(WriterId(0)),
            key,
            &ClientToServer::PutData {
                op: OpId::new(WriterId(0), num),
                tag: Tag::new(num, WriterId(0)),
                payload: Payload::Full(Value::from(val)),
            },
        );
    }

    fn get_tag(s: &mut KvServer, key: &[u8]) -> Tag {
        let resp = s.handle(
            ClientId::Reader(ReaderId(0)),
            key,
            &ClientToServer::QueryTag {
                op: OpId::new(ReaderId(0), 1),
            },
        );
        match &resp[0] {
            ServerToClient::TagResp { tag, .. } => *tag,
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn keys_have_independent_registers() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let mut s = KvServer::new(ServerId(0), cfg);
        put(&mut s, b"alpha", 5, "a");
        put(&mut s, b"beta", 2, "b");
        assert_eq!(get_tag(&mut s, b"alpha"), Tag::new(5, WriterId(0)));
        assert_eq!(get_tag(&mut s, b"beta"), Tag::new(2, WriterId(0)));
        assert_eq!(get_tag(&mut s, b"never-written"), Tag::ZERO);
        assert_eq!(s.key_count(), 3, "reading creates the fresh register");
    }

    #[test]
    fn storage_accounts_all_keys() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let mut s = KvServer::new(ServerId(0), cfg);
        put(&mut s, b"k1", 1, "12345");
        put(&mut s, b"k2", 1, "123");
        assert_eq!(s.storage_bytes(), 8);
    }
}
