//! KV replica: register groups (one per shard) of per-key server states.
//!
//! A replica process hosts one [`ShardGroup`] per shard the
//! [`ShardMap`] places on it; each group is an independent table of
//! per-key register states guarded by its **own** lock, so concurrent
//! connection threads serving different shards never contend — this
//! per-shard locking is what lets throughput scale with the shard count
//! on one fleet.
//!
//! A group normally runs the honest protocol, but it can be put into a
//! Byzantine [`ByzRole`] from the shared bestiary — then every key gets
//! its own behavior instance (silent, stale-ack, fabricating,
//! equivocating) driven by a seeded [`DetRng`], so a live KV replica can
//! misbehave exactly like a simulated one, reproducibly, and a server can
//! be Byzantine in one shard while serving another honestly.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use safereg_common::buf::Bytes;
use safereg_common::codec::Wire;
use safereg_common::config::QuorumConfig;
use safereg_common::epoch::{ConfigStamp, EpochConfig};
use safereg_common::ids::{ClientId, NodeId, ServerId, WriterId};
use safereg_common::msg::{ClientToServer, Envelope, Message, OpId, Payload, ServerToClient};
use safereg_common::rng::DetRng;
use safereg_common::shard::{ShardId, ShardMap};
use safereg_common::sync::{Mutex, RwLock};
use safereg_common::tag::Tag;
use safereg_common::trace::{Phase, TraceCtx};
use safereg_common::value::Value;
use safereg_core::behavior::{ByzRole, ServerBehavior};
use safereg_core::server::ServerNode;
use safereg_crypto::chain::{ChainLink, LinkKind, ResponseChain};
use safereg_crypto::keychain::KeyChain;
use safereg_mds::rs::ReedSolomon;
use safereg_mds::stripe::encode_value;
use safereg_obs::span::{self, SpanKind};
use safereg_obs::trace::wall_micros;

/// How a KV replica stores values: full copies (BSR registers) or coded
/// elements (BCSR registers, `n ≥ 5f + 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KvMode {
    /// One full replica of each value per server (default).
    #[default]
    Replicated,
    /// One `[n, n − 5f]` coded element of each value per server.
    Coded,
}

/// One register group: the per-key server states of one shard on one
/// replica. Protocol state is keyed by the replica's **logical** index
/// within the shard (`0 .. m−1`), not its physical fleet id — the
/// protocol crates never learn about sharding.
struct ShardGroup {
    /// This replica's logical index within the shard's replica subset.
    logical: ServerId,
    cfg: QuorumConfig,
    mode: KvMode,
    role: ByzRole,
    byz_seed: u64,
    objects: BTreeMap<Bytes, ServerNode>,
    byz: BTreeMap<Bytes, Box<dyn ServerBehavior>>,
    rng: DetRng,
}

/// Mixes a key into the replica seed so each key's behavior gets its own
/// deterministic fault stream (SplitMix-style avalanche over FNV bytes).
fn key_seed(seed: u64, key: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^ (h >> 33)
}

impl ShardGroup {
    fn new(
        logical: ServerId,
        cfg: QuorumConfig,
        mode: KvMode,
        role: ByzRole,
        byz_seed: u64,
    ) -> Self {
        ShardGroup {
            logical,
            cfg,
            mode,
            role,
            byz_seed,
            objects: BTreeMap::new(),
            byz: BTreeMap::new(),
            rng: DetRng::seed_from(byz_seed ^ 0x5AFE_B12E),
        }
    }

    fn key_count(&self) -> usize {
        self.objects.len() + self.byz.len()
    }

    fn storage_bytes(&self) -> usize {
        let honest: usize = self.objects.values().map(ServerNode::storage_bytes).sum();
        let byz: usize = self.byz.values().map(|b| b.storage_bytes()).sum();
        honest + byz
    }

    /// Changes the role the group plays from now on. Byzantine state is
    /// discarded either way: old per-key behaviors belong to the old
    /// role's fault stream, and the honest register state a recovering
    /// group kept is exactly the crash-recover state the protocol absorbs
    /// for `≤ f` replicas.
    fn set_role(&mut self, role: ByzRole, byz_seed: u64) {
        self.role = role;
        self.byz_seed = byz_seed;
        self.byz.clear();
        self.rng = DetRng::seed_from(byz_seed ^ 0x5AFE_B12E);
    }

    fn handle(&mut self, from: ClientId, key: &[u8], msg: &ClientToServer) -> Vec<ServerToClient> {
        let id = self.logical;
        let cfg = self.cfg;
        if self.role != ByzRole::Correct {
            let role = self.role;
            let seed = key_seed(self.byz_seed, key);
            let behavior = self
                .byz
                .entry(Bytes::copy_from_slice(key))
                .or_insert_with(|| role.build(id, cfg, seed));
            let env = Envelope::to_server(from, id, msg.clone());
            return behavior
                .on_envelope(wall_micros(), &env, &mut self.rng)
                .into_iter()
                .filter_map(|out| match (out.dst, out.msg) {
                    (NodeId::Client(c), Message::ToClient(m)) if c == from => Some(m),
                    _ => None,
                })
                .collect();
        }
        let mode = self.mode;
        let node = self
            .objects
            .entry(Bytes::copy_from_slice(key))
            .or_insert_with(|| fresh_node(id, cfg, mode));
        node.handle(from, msg)
    }

    /// Installs a transferred `(tag, payload)` pair into this group's
    /// honest register state for `key`, bypassing any Byzantine behavior
    /// (transfer writes are cluster-internal, not client traffic). The
    /// install is a synthesized `PUT-DATA` through the ordinary
    /// [`ServerNode::handle`] path, so the protocol's own tag-monotonicity
    /// rule applies — a concurrent genuinely-newer write is never clobbered.
    fn install(&mut self, key: &[u8], tag: Tag, payload: Payload) {
        let id = self.logical;
        let cfg = self.cfg;
        let mode = self.mode;
        let node = self
            .objects
            .entry(Bytes::copy_from_slice(key))
            .or_insert_with(|| fresh_node(id, cfg, mode));
        let _ = node.handle(
            ClientId::Writer(TRANSFER_WRITER),
            &ClientToServer::PutData {
                op: OpId::new(TRANSFER_WRITER, tag.num),
                tag,
                payload,
            },
        );
    }

    /// The keys with honest register state (Byzantine per-key behaviors
    /// hold no transferable state).
    fn keys(&self) -> Vec<Bytes> {
        self.objects.keys().cloned().collect()
    }

    /// The highest-tag entry stored for `key`, if any.
    fn top_entry(&self, key: &[u8]) -> Option<(Tag, Payload)> {
        let node = self.objects.get(key)?;
        let tag = node.max_tag();
        let payload = node.stored(&tag)?.clone();
        Some((tag, payload))
    }
}

/// Writer id used for cluster-internal state-transfer installs; far above
/// any id the harnesses allocate, so transfer tags never collide with a
/// real writer's tag space (the tag itself is the *original* writer's).
pub(crate) const TRANSFER_WRITER: WriterId = WriterId(0xFFFE);

/// FNV-1a digest over the wire encoding of a `(tag, payload)` register
/// entry. Pinned here (next to [`KvServer::payload_digest`], which uses
/// it) so harnesses can compute the *expected* digest of a rebuilt coded
/// fragment independently and compare it against what a joiner stores.
pub fn entry_digest(tag: &Tag, payload: &Payload) -> u64 {
    let mut buf = Vec::new();
    tag.encode_to(&mut buf);
    payload.encode_to(&mut buf);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in buf {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// FNV-1a digest of a register key, the form a key takes inside audit
/// [`ChainLink`]s — evidence pins the key without shipping it.
pub fn key_digest(key: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Process-wide boot counter feeding [`ChainLink::incarnation`]: every
/// replica (re)start gets a fresh incarnation, so a legitimately restarted
/// chain restarting `seq` at 0 is distinguishable from a forked one.
static INCARNATIONS: AtomicU64 = AtomicU64::new(0);

/// A fresh per-key register in the representation `mode` dictates.
fn fresh_node(id: ServerId, cfg: QuorumConfig, mode: KvMode) -> ServerNode {
    match mode {
        KvMode::Replicated => ServerNode::new_replicated(id, cfg),
        KvMode::Coded => {
            let k = cfg.mds_k().expect("checked at construction");
            let code = ReedSolomon::new(cfg.n(), k).expect("valid code");
            let initial = encode_value(&code, &Value::initial())
                .into_iter()
                .nth(id.0 as usize)
                .expect("element per server");
            ServerNode::with_initial(id, cfg, Payload::Coded(initial))
        }
    }
}

/// One replica of the key-value store: a register group per shard the
/// [`ShardMap`] places on this server.
///
/// Within a group, each key gets an independent [`ServerNode`] (its own
/// list `L` and tag space), created lazily on first access — reading a
/// never-written key behaves like a fresh register and returns `v_0`.
///
/// All methods take `&self`: every group sits behind its own
/// [`Mutex`], so shared hosts (`Arc<KvServer>`) serve concurrent
/// connections with per-shard locking instead of one process-wide lock,
/// and roles can be rotated per shard while connections are live.
///
/// Membership is epoch-aware: the replica holds its current
/// [`EpochConfig`] plus the [`ShardMap`] resolved over that epoch's fleet
/// behind one [`RwLock`] (reads are the per-message dispatch path; writes
/// happen only on reconfiguration). [`KvServer::check_stamp`] is the
/// admission rule the TCP host applies to every authenticated frame, and
/// [`KvServer::apply_config`] is the epoch-change entry point — it keeps
/// the groups whose logical slot is unchanged and restarts (for state
/// transfer) the ones that are new or re-placed, since a coded group's
/// fragments are bound to its logical index.
pub struct KvServer {
    id: ServerId,
    mode: KvMode,
    state: RwLock<ServerState>,
    /// Response-attestation chain, armed by the TCP host (in-memory
    /// deployments exchange no frames and never arm it). One rolling chain
    /// per replica process; the mutex totally orders attested responses.
    audit: Mutex<Option<ResponseChain>>,
    /// Quarantine latch: a convicted replica is demoted to read-only —
    /// writes are dropped unacknowledged so it can no longer contribute to
    /// write quorums, while reads keep being served during eviction.
    quarantined: AtomicBool,
}

/// Epoch-scoped state: everything a reconfiguration swaps atomically.
struct ServerState {
    config: EpochConfig,
    map: ShardMap,
    shards: BTreeMap<ShardId, Mutex<ShardGroup>>,
}

impl std::fmt::Debug for KvServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.read();
        f.debug_struct("KvServer")
            .field("id", &self.id)
            .field("mode", &self.mode)
            .field("epoch", &st.config.epoch)
            .field("shards", &st.shards.len())
            .finish()
    }
}

impl KvServer {
    /// Creates a single-shard replicated-mode replica (the pre-sharding
    /// deployment shape: one register group over the whole fleet).
    pub fn new(id: ServerId, cfg: QuorumConfig) -> Self {
        Self::with_role(id, cfg, KvMode::Replicated, ByzRole::Correct, 0)
    }

    /// Creates a single-shard coded-mode replica: fresh key registers
    /// start with this server's coded element of the initial value.
    ///
    /// # Panics
    ///
    /// Panics when the configuration admits no `[n, n − 5f]` code.
    pub fn new_coded(id: ServerId, cfg: QuorumConfig) -> Self {
        assert!(cfg.mds_k().is_some(), "coded KV needs n > 5f");
        Self::with_role(id, cfg, KvMode::Coded, ByzRole::Correct, 0)
    }

    /// Creates a single-shard replica playing `role`.
    pub fn with_role(
        id: ServerId,
        cfg: QuorumConfig,
        mode: KvMode,
        role: ByzRole,
        byz_seed: u64,
    ) -> Self {
        Self::sharded_with_role(id, ShardMap::single(cfg), mode, role, byz_seed)
    }

    /// Creates a replica hosting one register group per shard the map
    /// places on `id` (all groups honest).
    ///
    /// # Panics
    ///
    /// Panics in coded mode when the per-shard configuration admits no
    /// `[m, m − 5f]` code.
    pub fn sharded(id: ServerId, map: ShardMap, mode: KvMode) -> Self {
        Self::sharded_with_role(id, map, mode, ByzRole::Correct, 0)
    }

    /// Creates a sharded replica with every hosted group playing `role`
    /// (per-shard roles can then be changed live via
    /// [`KvServer::set_shard_role`]). Faulty roles build replicated-mode
    /// behaviors regardless of `mode` — a Byzantine replica's answers are
    /// untrusted either way, so the storage representation is moot.
    pub fn sharded_with_role(
        id: ServerId,
        map: ShardMap,
        mode: KvMode,
        role: ByzRole,
        byz_seed: u64,
    ) -> Self {
        let cfg = map.shard_config();
        if mode == KvMode::Coded {
            assert!(cfg.mds_k().is_some(), "coded KV needs per-shard m > 5f");
        }
        let shards = map
            .shards_of_server(id)
            .into_iter()
            .map(|g| {
                let logical = map
                    .logical_of(g, id)
                    .expect("shards_of_server returns hosted shards");
                (
                    g,
                    Mutex::new(ShardGroup::new(logical, cfg, mode, role, byz_seed)),
                )
            })
            .collect();
        let config = EpochConfig::genesis(map.fleet().iter().copied());
        KvServer {
            id,
            mode,
            state: RwLock::new(ServerState {
                config,
                map,
                shards,
            }),
            audit: Mutex::new(None),
            quarantined: AtomicBool::new(false),
        }
    }

    /// Arms response attestation: from now on [`KvServer::attest`] mints a
    /// MAC-chained [`ChainLink`] for every attestable response. Called by
    /// the TCP host at spawn; each call starts a fresh incarnation, so a
    /// restarted replica's chain never forks its predecessor's.
    pub fn enable_audit(&self, chain: &KeyChain) {
        let incarnation = INCARNATIONS.fetch_add(1, Ordering::Relaxed);
        *self.audit.lock() = Some(ResponseChain::new(chain, self.id, incarnation));
    }

    /// Mints the chain link vouching for one response, or `None` when the
    /// response kind is not attestable (`WrongEpoch`, admin replies) or
    /// audit is not armed.
    ///
    /// This runs *after* the (possibly Byzantine) register dispatch, so a
    /// faulty role's fabricated or equivocating answers are signed like any
    /// other — which is exactly what makes them convictable later.
    pub fn attest(&self, key: &[u8], resp: &ServerToClient) -> Option<ChainLink> {
        let (op, kind, tag, value_digest) = match resp {
            ServerToClient::TagResp { op, tag } => (*op, LinkKind::TagResp, *tag, 0),
            ServerToClient::PutAck { op, tag } => (*op, LinkKind::PutAck, *tag, 0),
            ServerToClient::DataResp { op, tag, payload } => {
                (*op, LinkKind::DataResp, *tag, entry_digest(tag, payload))
            }
            _ => return None,
        };
        let mut guard = self.audit.lock();
        let chain = guard.as_mut()?;
        Some(chain.append(op, kind, key_digest(key), tag, value_digest))
    }

    /// Latches the quarantine: subsequent writes are dropped without an
    /// ack. Idempotent; there is deliberately no un-quarantine — the only
    /// way back in is eviction plus a fresh join.
    pub fn quarantine(&self) {
        self.quarantined.store(true, Ordering::Relaxed);
    }

    /// Whether this replica has been quarantined.
    pub fn is_quarantined(&self) -> bool {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// This replica's (physical) identifier.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// The storage representation this replica runs.
    pub fn mode(&self) -> KvMode {
        self.mode
    }

    /// The shard placement this replica currently serves (a snapshot —
    /// reconfiguration replaces it).
    pub fn map(&self) -> ShardMap {
        self.state.read().map.clone()
    }

    /// The membership configuration this replica currently serves (a
    /// snapshot).
    pub fn config(&self) -> EpochConfig {
        self.state.read().config.clone()
    }

    /// The current epoch number.
    pub fn epoch(&self) -> u32 {
        self.state.read().config.epoch
    }

    /// The wire fingerprint of the current configuration.
    pub fn stamp(&self) -> ConfigStamp {
        self.state.read().config.stamp()
    }

    /// Admission rule for authenticated frames: accepts a stamp iff it
    /// fingerprints this replica's current configuration. On mismatch the
    /// caller must answer `WrongEpoch` with the returned config — both a
    /// *stale* client (lower epoch) and a *newer* one (this replica has
    /// not switched yet) get redirected; the client's `f + 1`-vote rule
    /// sorts out which side is behind.
    ///
    /// # Errors
    ///
    /// The replica's current configuration, to be carried in the redirect.
    pub fn check_stamp(&self, stamp: ConfigStamp) -> Result<(), EpochConfig> {
        let st = self.state.read();
        if stamp.matches(&st.config) {
            Ok(())
        } else {
            Err(st.config.clone())
        }
    }

    /// Switches this replica to `config`, re-resolving its groups under
    /// `map` (which must be the placement over `config`'s fleet). Returns
    /// the shards whose group restarted **empty** and needs state
    /// transfer before this replica can usefully answer for them: for
    /// coded groups that is brand-new placements *and* re-placed ones (a
    /// fragment is bound to its logical index, so relabeled state is
    /// unusable); replicated groups hold the full value, so a relabel
    /// just renames the slot in place and the state — registers, role,
    /// fault streams — carries across the epoch. Configs older than the
    /// current epoch are ignored.
    pub fn apply_config(&self, config: EpochConfig, map: ShardMap) -> Vec<ShardId> {
        let mut st = self.state.write();
        if config.epoch < st.config.epoch {
            return Vec::new();
        }
        let cfg = map.shard_config();
        let mut needs = Vec::new();
        let mut shards = BTreeMap::new();
        let mut prev = std::mem::take(&mut st.shards);
        for g in map.shards_of_server(self.id) {
            let logical = map
                .logical_of(g, self.id)
                .expect("shards_of_server returns hosted shards");
            match prev.remove(&g) {
                Some(group)
                    if self.mode == KvMode::Replicated || group.lock().logical == logical =>
                {
                    group.lock().logical = logical;
                    shards.insert(g, group);
                }
                old => {
                    let (role, byz_seed) = old
                        .map(Mutex::into_inner)
                        .map_or((ByzRole::Correct, 0), |o| (o.role, o.byz_seed));
                    shards.insert(
                        g,
                        Mutex::new(ShardGroup::new(logical, cfg, self.mode, role, byz_seed)),
                    );
                    needs.push(g);
                }
            }
        }
        // Shards left in `prev` are no longer placed here; their state drops.
        st.shards = shards;
        st.map = map;
        st.config = config;
        needs
    }

    /// Installs one transferred `(tag, payload)` pair for `key` into the
    /// group serving `shard`. Returns `false` when this replica does not
    /// serve the shard.
    pub fn install_state(&self, shard: ShardId, key: &[u8], tag: Tag, payload: Payload) -> bool {
        let st = self.state.read();
        match st.shards.get(&shard) {
            Some(group) => {
                group.lock().install(key, tag, payload);
                true
            }
            None => false,
        }
    }

    /// The keys with honest register state in the group serving `shard`
    /// (empty when this replica does not serve the shard). Donor-side
    /// enumeration for state transfer.
    pub fn keys_of_shard(&self, shard: ShardId) -> Vec<Bytes> {
        let st = self.state.read();
        st.shards
            .get(&shard)
            .map(|g| g.lock().keys())
            .unwrap_or_default()
    }

    /// FNV-1a digest of the highest-tag `(tag, payload)` entry stored for
    /// `key` in `shard` — `None` when the shard is unserved or the key has
    /// no state. The churn harness compares a rebuilt coded fragment
    /// against an independently computed expectation through this.
    pub fn payload_digest(&self, shard: ShardId, key: &[u8]) -> Option<u64> {
        let st = self.state.read();
        let group = st.shards.get(&shard)?;
        let (tag, payload) = group.lock().top_entry(key)?;
        Some(entry_digest(&tag, &payload))
    }

    /// The shards this replica hosts a register group for.
    pub fn shards(&self) -> Vec<ShardId> {
        self.state.read().shards.keys().copied().collect()
    }

    /// The role the group for `shard` plays, or `None` when this replica
    /// does not serve the shard.
    pub fn shard_role(&self, shard: ShardId) -> Option<ByzRole> {
        self.state.read().shards.get(&shard).map(|g| g.lock().role)
    }

    /// The role of this replica's first group — the whole-replica role
    /// for single-shard deployments.
    pub fn role(&self) -> ByzRole {
        self.state
            .read()
            .shards
            .values()
            .next()
            .map_or(ByzRole::Correct, |g| g.lock().role)
    }

    /// Changes the role one shard's group plays, live (connections keep
    /// flowing; only that shard's lock is taken). Returns `false` when
    /// this replica does not serve the shard.
    pub fn set_shard_role(&self, shard: ShardId, role: ByzRole, byz_seed: u64) -> bool {
        match self.state.read().shards.get(&shard) {
            Some(group) => {
                group.lock().set_role(role, byz_seed);
                true
            }
            None => false,
        }
    }

    /// Number of keys this replica has register state for, over all
    /// groups.
    pub fn key_count(&self) -> usize {
        self.state
            .read()
            .shards
            .values()
            .map(|g| g.lock().key_count())
            .sum()
    }

    /// Total payload bytes stored across all groups.
    pub fn storage_bytes(&self) -> usize {
        self.state
            .read()
            .shards
            .values()
            .map(|g| g.lock().storage_bytes())
            .sum()
    }

    /// Handles one register message addressed to `key` within `shard`.
    /// A message for a shard this replica does not serve is dropped (the
    /// empty reply — indistinguishable from Byzantine silence, which is
    /// exactly how a misrouting client must treat it).
    pub fn handle(
        &self,
        from: ClientId,
        shard: ShardId,
        key: &[u8],
        msg: &ClientToServer,
    ) -> Vec<ServerToClient> {
        self.handle_traced(from, shard, key, msg, TraceCtx::NONE)
    }

    /// [`KvServer::handle`] with causal attribution: when `trace` is
    /// sampled, the time spent *waiting for the group lock* is recorded as
    /// a `mutex_wait` segment and the time spent *inside the register
    /// dispatch* as a `dispatch` segment (detail = number of responses),
    /// both stamped with wall-clock microseconds — the TCP side of the
    /// caller-stamped clock rule.
    pub fn handle_traced(
        &self,
        from: ClientId,
        shard: ShardId,
        key: &[u8],
        msg: &ClientToServer,
        trace: TraceCtx,
    ) -> Vec<ServerToClient> {
        // Read-only demotion: a quarantined replica drops writes silently
        // (no ack, so it counts toward no write quorum) but keeps serving
        // reads until the eviction reconfiguration retires it.
        if matches!(msg, ClientToServer::PutData { .. }) && self.is_quarantined() {
            return Vec::new();
        }
        let st = self.state.read();
        let Some(group) = st.shards.get(&shard) else {
            return Vec::new();
        };
        if !trace.is_sampled() {
            return group.lock().handle(from, key, msg);
        }
        let me = span::node::server(self.id.0);
        let queued = wall_micros();
        let mut guard = group.lock();
        let acquired = wall_micros();
        span::record_global(
            trace.with_phase(Phase::MutexWait),
            SpanKind::Segment,
            queued,
            acquired.saturating_sub(queued),
            me,
            0,
        );
        let responses = guard.handle(from, key, msg);
        let done = wall_micros();
        span::record_global(
            trace.with_phase(Phase::Dispatch),
            SpanKind::Segment,
            acquired,
            done.saturating_sub(acquired),
            me,
            responses.len() as u32,
        );
        responses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safereg_common::ids::{ReaderId, WriterId};
    use safereg_common::msg::{OpId, Payload};
    use safereg_common::tag::Tag;
    use safereg_common::value::Value;

    const G0: ShardId = ShardId(0);

    fn put(s: &KvServer, key: &[u8], num: u64, val: &str) {
        s.handle(
            ClientId::Writer(WriterId(0)),
            G0,
            key,
            &ClientToServer::PutData {
                op: OpId::new(WriterId(0), num),
                tag: Tag::new(num, WriterId(0)),
                payload: Payload::Full(Value::from(val)),
            },
        );
    }

    fn get_tag(s: &KvServer, key: &[u8]) -> Tag {
        let resp = s.handle(
            ClientId::Reader(ReaderId(0)),
            G0,
            key,
            &ClientToServer::QueryTag {
                op: OpId::new(ReaderId(0), 1),
            },
        );
        match &resp[0] {
            ServerToClient::TagResp { tag, .. } => *tag,
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn keys_have_independent_registers() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let s = KvServer::new(ServerId(0), cfg);
        put(&s, b"alpha", 5, "a");
        put(&s, b"beta", 2, "b");
        assert_eq!(get_tag(&s, b"alpha"), Tag::new(5, WriterId(0)));
        assert_eq!(get_tag(&s, b"beta"), Tag::new(2, WriterId(0)));
        assert_eq!(get_tag(&s, b"never-written"), Tag::ZERO);
        assert_eq!(s.key_count(), 3, "reading creates the fresh register");
    }

    #[test]
    fn storage_accounts_all_keys() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let s = KvServer::new(ServerId(0), cfg);
        put(&s, b"k1", 1, "12345");
        put(&s, b"k2", 1, "123");
        assert_eq!(s.storage_bytes(), 8);
    }

    #[test]
    fn silent_role_answers_nothing_on_any_key() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let s = KvServer::with_role(ServerId(1), cfg, KvMode::Replicated, ByzRole::Silent, 7);
        put(&s, b"k", 1, "v");
        let resp = s.handle(
            ClientId::Reader(ReaderId(0)),
            G0,
            b"k",
            &ClientToServer::QueryTag {
                op: OpId::new(ReaderId(0), 1),
            },
        );
        assert!(resp.is_empty());
    }

    #[test]
    fn fabricator_role_forges_per_key_deterministically() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let a = KvServer::with_role(
            ServerId(2),
            cfg,
            KvMode::Replicated,
            ByzRole::Fabricator,
            42,
        );
        let b = KvServer::with_role(
            ServerId(2),
            cfg,
            KvMode::Replicated,
            ByzRole::Fabricator,
            42,
        );
        let ta = get_tag(&a, b"key-x");
        let tb = get_tag(&b, b"key-x");
        assert_eq!(ta, tb, "same seed, same forgery");
        assert!(ta.num >= 1_000_000, "forged tag");
        assert_ne!(
            get_tag(&a, b"key-y"),
            ta,
            "each key draws its own fault stream"
        );
    }

    #[test]
    fn stale_ack_role_acks_writes_but_serves_old_reads() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let s = KvServer::with_role(ServerId(3), cfg, KvMode::Replicated, ByzRole::StaleAck, 1);
        put(&s, b"k", 1, "v1");
        put(&s, b"k", 2, "v2");
        let resp = s.handle(
            ClientId::Reader(ReaderId(0)),
            G0,
            b"k",
            &ClientToServer::QueryData {
                op: OpId::new(ReaderId(0), 1),
            },
        );
        match &resp[0] {
            ServerToClient::DataResp { tag, .. } => {
                assert_eq!(*tag, Tag::new(1, WriterId(0)), "one entry stale")
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unserved_shard_is_silence() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let s = KvServer::new(ServerId(0), cfg);
        let resp = s.handle(
            ClientId::Reader(ReaderId(0)),
            ShardId(7),
            b"k",
            &ClientToServer::QueryTag {
                op: OpId::new(ReaderId(0), 1),
            },
        );
        assert!(resp.is_empty(), "a shard this replica lacks gets nothing");
    }

    #[test]
    fn per_shard_roles_rotate_independently() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let fleet: Vec<ServerId> = (0..5).map(ServerId).collect();
        let map = ShardMap::new(3, 4, fleet, cfg).unwrap();
        // Every shard uses all 5 servers (m = n = 5), so server 0 hosts
        // all four groups.
        let s = KvServer::sharded(ServerId(0), map, KvMode::Replicated);
        assert_eq!(s.shards().len(), 4);
        assert!(s.set_shard_role(ShardId(1), ByzRole::Silent, 9));
        assert_eq!(s.shard_role(ShardId(1)), Some(ByzRole::Silent));
        assert_eq!(s.shard_role(ShardId(0)), Some(ByzRole::Correct));
        // The silent group answers nothing; the honest ones still serve.
        let q = ClientToServer::QueryTag {
            op: OpId::new(ReaderId(0), 1),
        };
        assert!(s
            .handle(ClientId::Reader(ReaderId(0)), ShardId(1), b"k", &q)
            .is_empty());
        assert!(!s
            .handle(ClientId::Reader(ReaderId(0)), ShardId(0), b"k", &q)
            .is_empty());
        // Rotating back to honest drops the Byzantine state.
        assert!(s.set_shard_role(ShardId(1), ByzRole::Correct, 0));
        assert!(!s
            .handle(ClientId::Reader(ReaderId(0)), ShardId(1), b"k", &q)
            .is_empty());
        assert!(!s.set_shard_role(ShardId(99), ByzRole::Silent, 0));
    }

    #[test]
    fn stamp_admission_follows_the_current_config() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let s = KvServer::new(ServerId(0), cfg);
        let genesis = s.config();
        assert_eq!(genesis.epoch, 0);
        assert!(s.check_stamp(genesis.stamp()).is_ok());

        let next = genesis.with_added(safereg_common::epoch::Member::unaddressed(ServerId(9)));
        let current = s.check_stamp(next.stamp()).unwrap_err();
        assert_eq!(current, genesis, "redirect carries the server's view");
    }

    #[test]
    fn apply_config_keeps_unmoved_groups_and_restarts_replaced_ones() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap(); // m = 5
        let fleet: Vec<ServerId> = (0..6).map(ServerId).collect();
        let map = ShardMap::new(11, 2, fleet, cfg).unwrap();
        let sid = map.replicas(G0).unwrap()[0];
        let s = KvServer::sharded(sid, map.clone(), KvMode::Replicated);
        s.handle(
            ClientId::Writer(WriterId(0)),
            G0,
            b"k",
            &ClientToServer::PutData {
                op: OpId::new(WriterId(0), 3),
                tag: Tag::new(3, WriterId(0)),
                payload: Payload::Full(Value::from("kept")),
            },
        );

        // Same placement at a bumped epoch: every logical slot unchanged,
        // state carries over, nothing needs transfer.
        let same = map.for_fleet(map.fleet().to_vec()).unwrap();
        let cfg1 = s
            .config()
            .with_added(safereg_common::epoch::Member::unaddressed(ServerId(99)));
        // (membership digest differs from the map's fleet here, which is
        // fine — apply_config trusts its caller, the cluster orchestrator)
        let needs = s.apply_config(cfg1.clone(), same);
        assert!(needs.is_empty(), "unmoved groups carry state: {needs:?}");
        assert_eq!(s.epoch(), 1);
        assert!(s.payload_digest(G0, b"k").is_some(), "state survived");

        // Stale configs are ignored.
        let stale = EpochConfig::genesis(map.fleet().iter().copied());
        assert!(s.apply_config(stale, map.clone()).is_empty());
        assert_eq!(s.epoch(), 1, "epoch never goes backwards");
    }

    #[test]
    fn install_state_feeds_tag_monotonic_registers() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let s = KvServer::new(ServerId(0), cfg);
        assert!(s.install_state(
            G0,
            b"k",
            Tag::new(7, WriterId(2)),
            Payload::Full(Value::from("transferred")),
        ));
        assert_eq!(get_tag(&s, b"k"), Tag::new(7, WriterId(2)));
        // An older transfer never clobbers newer state.
        assert!(s.install_state(
            G0,
            b"k",
            Tag::new(3, WriterId(2)),
            Payload::Full(Value::from("stale")),
        ));
        assert_eq!(get_tag(&s, b"k"), Tag::new(7, WriterId(2)));
        assert!(!s.install_state(ShardId(9), b"k", Tag::ZERO, Payload::Full(Value::initial())));
        assert_eq!(s.keys_of_shard(G0), vec![Bytes::copy_from_slice(b"k")]);
    }
}
